//! Property-based tests over the workspace's core invariants.

use ids::chaos::FaultPlan;
use ids::engine::kernels::{self, KernelOptions, KernelStats};
use ids::engine::ResultQuality;
use ids::engine::{Backend, MemBackend};
use ids::engine::{BinSpec, ColumnBuilder, Histogram, Predicate, Query, Table, TableBuilder};
use ids::metrics::lcv::{budget_violations, cascade_violations, supply_violations, QuerySpan};
use ids::metrics::qif::qif_windows;
use ids::metrics::stats::{Cdf, Summary};
use ids::opt::klfilter::kl_divergence;
use ids::simclock::rng::SimRng;
use ids::simclock::{EventQueue, SimDuration, SimTime};
use ids::study::assignment::{balanced_latin_square, is_latin_square, latin_square};
use ids::workload::adaptive::{BehaviorConfig, BehaviorPolicy, Feedback};
use ids::workload::crossfilter::CrossfilterUi;
use ids::workload::mining::{self, InterfaceSpec, WidgetSpec};
use ids::workload::trace::{ScrollRecord, SliderRecord, Trace, TraceRecord};
use proptest::prelude::*;

fn float_table(xs: Vec<f64>) -> Table {
    TableBuilder::new("t")
        .column("x", ColumnBuilder::float(xs.clone()))
        .column("y", ColumnBuilder::float(xs.into_iter().map(|v| v * 2.0)))
        .build()
        .expect("table")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LIMIT/OFFSET pagination partitions the table: concatenating pages
    /// yields every row exactly once, in order.
    #[test]
    fn pagination_partitions_table(
        rows in 1usize..200,
        page in 1usize..40,
    ) {
        let table = TableBuilder::new("t")
            .column("id", ColumnBuilder::int(0..rows as i64))
            .build()
            .expect("table");
        let backend = MemBackend::new();
        backend.database().register(table);
        let mut seen = Vec::new();
        let mut offset = 0;
        loop {
            let q = Query::select("t", vec![], Predicate::True, Some(page), offset);
            let out = backend.execute(&q).expect("select");
            let rows_out = out.result.rows().expect("rows").to_vec();
            if rows_out.is_empty() {
                break;
            }
            seen.extend(rows_out.iter().map(|r| r[0].as_i64().expect("int")));
            offset += page;
        }
        prop_assert_eq!(seen, (0..rows as i64).collect::<Vec<_>>());
    }

    /// A filtered count never exceeds the table size and agrees with a
    /// naive scan.
    #[test]
    fn filter_agrees_with_naive_scan(
        xs in prop::collection::vec(-100.0f64..100.0, 1..300),
        lo in -100.0f64..100.0,
        width in 0.0f64..100.0,
    ) {
        let hi = lo + width;
        let table = float_table(xs.clone());
        let backend = MemBackend::new();
        backend.database().register(table);
        let q = Query::count("t", Predicate::between("x", lo, hi));
        let count = backend.execute(&q).expect("count").scalar_count().expect("scalar");
        let naive = xs.iter().filter(|&&x| x >= lo && x <= hi).count() as u64;
        prop_assert_eq!(count, naive);
    }

    /// Histogram totals equal the number of filtered rows that fall in
    /// the bin domain.
    #[test]
    fn histogram_total_matches_in_domain_rows(
        xs in prop::collection::vec(0.0f64..100.0, 1..300),
        bins in 1usize..30,
    ) {
        let table = float_table(xs.clone());
        let backend = MemBackend::new();
        backend.database().register(table);
        let spec = BinSpec::new("y", 0.0, 200.0, bins);
        let q = Query::histogram("t", spec.clone(), Predicate::True);
        let out = backend.execute(&q).expect("histogram");
        let hist = out.result.histogram().expect("histogram");
        let expected = xs.iter().filter(|&&x| spec.bin_of(x * 2.0).is_some()).count() as u64;
        prop_assert_eq!(hist.total(), expected);
    }

    /// KL divergence is non-negative and zero iff shapes match.
    #[test]
    fn kl_nonnegative_and_identity(
        counts in prop::collection::vec(0u64..1000, 2..20),
        scale in 1u64..50,
    ) {
        let a = Histogram::from_counts(counts.clone());
        let b = Histogram::from_counts(counts.iter().map(|&c| c * scale).collect());
        prop_assert!(kl_divergence(&a, &b) < 1e-6, "scaled copy has zero divergence");
        let mut other = counts.clone();
        other.reverse();
        let c = Histogram::from_counts(other.clone());
        prop_assert!(kl_divergence(&a, &c) >= 0.0);
        if counts != other {
            // Different shapes diverge (unless palindromic).
            let d = kl_divergence(&a, &c);
            prop_assert!(d >= 0.0);
        }
    }

    /// The event queue dequeues in non-decreasing time order with FIFO
    /// ties, for any insertion order.
    #[test]
    fn event_queue_is_temporally_ordered(
        times in prop::collection::vec(0u64..1000, 1..100),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let drained = q.drain_ordered();
        for w in drained.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among ties");
            }
        }
        prop_assert_eq!(drained.len(), times.len());
    }

    /// Cascade LCV is monotone in execution time: slower backends can
    /// only violate more.
    #[test]
    fn lcv_monotone_in_latency(
        intervals in prop::collection::vec(1u64..100, 2..50),
        exec_fast in 1u64..50,
        extra in 1u64..200,
    ) {
        let spans = |exec: u64| {
            let mut t = 0u64;
            let mut out = Vec::new();
            let mut finish_prev = 0u64;
            for &dt in &intervals {
                t += dt;
                let start = t.max(finish_prev);
                let finish = start + exec;
                finish_prev = finish;
                out.push(QuerySpan {
                    issued_at: SimTime::from_millis(t),
                    finished_at: SimTime::from_millis(finish),
                });
            }
            out
        };
        let fast = cascade_violations(&spans(exec_fast));
        let slow = cascade_violations(&spans(exec_fast + extra));
        prop_assert!(slow.violations >= fast.violations);
    }

    /// Supply violations vanish when supply dominates demand everywhere.
    #[test]
    fn dominating_supply_never_violates(
        demands in prop::collection::vec((0u64..10_000, 0u64..1_000), 1..50),
    ) {
        let mut demand: Vec<(SimTime, u64)> = demands
            .iter()
            .map(|&(t, d)| (SimTime::from_millis(t), d))
            .collect();
        demand.sort_by_key(|&(t, _)| t);
        // Make cumulative demand monotone.
        let mut acc = 0;
        for d in demand.iter_mut() {
            acc = acc.max(d.1);
            d.1 = acc;
        }
        // Supply everything instantly at t=0.
        let supply = vec![(SimTime::ZERO, acc + 1)];
        prop_assert_eq!(supply_violations(&demand, &supply).violations, 0);
    }

    /// Latin squares of any size satisfy the row/column permutation
    /// property; balanced squares additionally balance ordered pairs.
    #[test]
    fn latin_square_properties(k in 1usize..10) {
        prop_assert!(is_latin_square(&latin_square(k)));
        if k >= 2 && k % 2 == 0 {
            prop_assert!(is_latin_square(&balanced_latin_square(k)));
        }
    }

    /// Trace records round-trip through TSV for arbitrary field values.
    #[test]
    fn scroll_record_tsv_round_trip(
        ts in 0u64..u64::MAX / 2,
        top in -1e9f64..1e9,
        num in 0u64..1_000_000,
        delta in -1e6f64..1e6,
    ) {
        let r = ScrollRecord {
            timestamp_ms: ts,
            scroll_top: top,
            scroll_num: num,
            delta,
        };
        let parsed = ScrollRecord::parse_line(&r.to_line()).expect("parse");
        prop_assert_eq!(parsed, r);
    }

    /// Whole slider traces round-trip.
    #[test]
    fn slider_trace_tsv_round_trip(
        recs in prop::collection::vec((0u64..1_000_000, -1e3f64..1e3, 0.0f64..1e3, 0u8..4), 0..50),
    ) {
        let trace = Trace::from_records(
            recs.into_iter()
                .map(|(ts, lo, w, idx)| SliderRecord {
                    timestamp_ms: ts,
                    min_val: lo,
                    max_val: lo + w,
                    slider_idx: idx,
                })
                .collect(),
        );
        let back: Trace<SliderRecord> = Trace::from_tsv(&trace.to_tsv()).expect("parse");
        prop_assert_eq!(back, trace);
    }

    /// Summary quantiles are order statistics: between min and max, and
    /// monotone in q.
    #[test]
    fn summary_quantiles_are_monotone(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let s = Summary::of(&xs);
        let qs: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&q| s.quantile(q).expect("non-empty"))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(qs[0], s.min().expect("non-empty"));
        prop_assert_eq!(qs[4], s.max().expect("non-empty"));
    }

    /// Budget LCV is monotone non-increasing as the budget grows: a more
    /// generous constraint can only forgive violations, never create
    /// them.
    #[test]
    fn lcv_shrinks_as_budget_grows(
        spans in prop::collection::vec((0u64..10_000, 0u64..2_000), 1..80),
        budget_a in 0u64..2_500,
        extra in 0u64..2_500,
    ) {
        let spans: Vec<QuerySpan> = spans
            .into_iter()
            .map(|(t, lat)| QuerySpan {
                issued_at: SimTime::from_millis(t),
                finished_at: SimTime::from_millis(t + lat),
            })
            .collect();
        let tight = budget_violations(&spans, SimDuration::from_millis(budget_a));
        let loose = budget_violations(&spans, SimDuration::from_millis(budget_a + extra));
        prop_assert!(loose.violations <= tight.violations);
        prop_assert_eq!(tight.total, spans.len());
        prop_assert_eq!(loose.total, spans.len());
        // The zero budget counts every positive-latency query.
        let zero = budget_violations(&spans, SimDuration::ZERO);
        let positive = spans
            .iter()
            .filter(|s| s.finished_at > s.issued_at)
            .count();
        prop_assert_eq!(zero.violations, positive);
    }

    /// QIF windows partition the issued stream: counts sum to the total
    /// number of queries, windows tile the time axis contiguously.
    #[test]
    fn qif_windows_conserve_queries(
        stamps in prop::collection::vec(0u64..100_000, 1..150),
        window_ms in 1u64..5_000,
    ) {
        let mut stamps: Vec<SimTime> =
            stamps.into_iter().map(SimTime::from_millis).collect();
        stamps.sort();
        let window = SimDuration::from_millis(window_ms);
        let windows = qif_windows(&stamps, window);
        let total: usize = windows.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total, stamps.len(), "no query lost or double-counted");
        for w in windows.windows(2) {
            prop_assert_eq!(w[0].0 + window, w[1].0, "windows tile contiguously");
        }
        prop_assert!(windows[0].0 <= stamps[0]);
    }

    /// Latency percentiles are order-insensitive: any permutation of the
    /// sample reports identical quantiles.
    #[test]
    fn latency_percentiles_ignore_arrival_order(
        xs in prop::collection::vec(0.0f64..1e6, 1..150),
        seed in 0u64..1_000,
    ) {
        // A deterministic shuffle driven by the sim RNG.
        let mut shuffled = xs.clone();
        SimRng::seed(seed)
            .split("properties/shuffle")
            .shuffle(&mut shuffled);
        let a = Summary::of(&xs);
        let b = Summary::of(&shuffled);
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(
                a.quantile(q).expect("non-empty"),
                b.quantile(q).expect("non-empty")
            );
        }
    }

    /// Storm fault plans are reproducible from their seed and pointwise
    /// monotone in intensity: a harsher storm never charges a query less.
    #[test]
    fn storm_plans_replay_and_dominate(
        seed in 0u64..10_000,
        lo in 0.05f64..0.5,
        extra in 0.0f64..0.5,
        probe_ms in 0u64..60_000,
    ) {
        let horizon = SimDuration::from_secs(60);
        let mild = FaultPlan::storm(seed, lo, horizon);
        prop_assert_eq!(&mild, &FaultPlan::storm(seed, lo, horizon));
        let harsh = FaultPlan::storm(seed, lo + extra, horizon);
        let t = SimTime::from_millis(probe_ms);
        prop_assert!(harsh.cost_multiplier_at(t) >= mild.cost_multiplier_at(t));
        prop_assert!(harsh.failure_rate() >= mild.failure_rate());
        match (mild.stall_until(t), harsh.stall_until(t)) {
            (Some(m), Some(h)) => prop_assert!(h >= m),
            (Some(_), None) => prop_assert!(false, "harsh storm lost a stall"),
            _ => {}
        }
    }

    /// CDF is a valid distribution function: monotone, 0 below min,
    /// 1 at max.
    #[test]
    fn cdf_is_monotone(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        probes in prop::collection::vec(-1e6f64..1e6, 1..20),
    ) {
        let cdf = Cdf::of(&xs);
        let mut sorted_probes = probes;
        sorted_probes.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for &p in &sorted_probes {
            let v = cdf.fraction_le(p);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev);
            prev = v;
        }
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(cdf.fraction_le(max), 1.0);
    }

    /// Zone-map pruning is invisible: the kernels return byte-identical
    /// selections with pruning enabled and disabled, on tables with and
    /// without NaN holes, across zone-block boundaries.
    #[test]
    fn zone_pruning_is_invisible(
        xs in prop::collection::vec(-100.0f64..100.0, 0..2200),
        nan_every in 0usize..5,
        lo in -120.0f64..120.0,
        width in 0.0f64..150.0,
        negate in 0usize..2,
    ) {
        let xs: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| if nan_every > 0 && i % nan_every == 0 { f64::NAN } else { x })
            .collect();
        let table = float_table(xs);
        let base = Predicate::between("x", lo, lo + width);
        let pred = if negate == 1 { Predicate::Not(Box::new(base)) } else { base };
        let on = KernelOptions { zone_prune: true };
        let off = KernelOptions { zone_prune: false };
        let mut s_on = KernelStats::default();
        let mut s_off = KernelStats::default();
        let a = kernels::select_vector_with(&table, &pred, &on, &mut s_on).expect("valid");
        let b = kernels::select_vector_with(&table, &pred, &off, &mut s_off).expect("valid");
        prop_assert_eq!(a.to_row_ids(), b.to_row_ids());
        prop_assert_eq!(s_off.blocks_pruned, 0);
    }

    /// The selection vector's popcount (and decoded row ids) equal the
    /// naive row-id-materializing `Predicate::select`.
    #[test]
    fn selection_count_matches_naive_select(
        xs in prop::collection::vec(-50.0f64..50.0, 0..1500),
        lo in -60.0f64..60.0,
        width in 0.0f64..80.0,
    ) {
        let table = float_table(xs);
        let pred = Predicate::and([
            Predicate::between("x", lo, lo + width),
            Predicate::le("y", 40.0),
        ]);
        let sel = pred.select_vector(&table).expect("valid");
        let naive = pred.select(&table).expect("valid");
        prop_assert_eq!(sel.count(), naive.len());
        prop_assert_eq!(sel.to_row_ids(), naive);
    }

    /// The fused filter+bin kernel equals filtering and binning as two
    /// separate passes, bucket for bucket.
    #[test]
    fn fused_filter_bin_matches_unfused(
        xs in prop::collection::vec(0.0f64..100.0, 0..2100),
        bins in 1usize..25,
        lo in 0.0f64..100.0,
        width in 0.0f64..100.0,
    ) {
        let table = float_table(xs);
        let pred = Predicate::between("x", lo, lo + width);
        let spec = BinSpec::new("x", 0.0, 100.0, bins);
        let col = table.column("x").expect("x exists");
        let mut unfused = vec![0u64; spec.bucket_count()];
        for row in pred.select(&table).expect("valid") {
            if let Some(b) = col.f64_at(row).and_then(|x| spec.bin_of(x)) {
                unfused[b] += 1;
            }
        }
        let (rs, _) = ids::engine::exec::run_histogram(&table, &spec, &pred).expect("valid");
        prop_assert_eq!(rs.histogram().expect("histogram").counts(), &unfused[..]);
    }

    /// Deadline-mode replay never violates a budget at least as large as
    /// the most expensive query: the deadline scheduler's LCV is 0 for
    /// any budget ≥ the exact execution cost (given no queueing).
    #[test]
    fn deadline_mode_lcv_is_zero_when_budget_covers_cost(
        rows in 1usize..5000,
        budget_slack_ms in 0u64..50,
    ) {
        let backend = MemBackend::new();
        backend.database().register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..rows).map(|i| i as f64)))
                .build()
                .expect("table"),
        );
        let query = Query::histogram(
            "t",
            BinSpec::new("x", 0.0, rows as f64, 8),
            Predicate::between("x", 0.2 * rows as f64, 0.9 * rows as f64),
        );
        let exact_cost = backend.execute(&query).expect("registered").cost;
        let budget = exact_cost + SimDuration::from_millis(budget_slack_ms);
        // Issue gaps ≥ budget so queueing never eats into it; the policy
        // then has the whole budget for every query.
        let stream: Vec<ids::engine::scheduler::IssuedQuery> = (0..4)
            .map(|i| ids::engine::scheduler::IssuedQuery::new(
                SimTime::ZERO + budget.mul_f64(i as f64 * 1.5),
                query.clone(),
                i as u64,
            ))
            .collect();
        let sched = ids::engine::scheduler::ReplayScheduler::new(1);
        let timings: Vec<QuerySpan> = sched
            .replay_resilient(
                &backend,
                &stream,
                &ids::engine::scheduler::ResiliencePolicy::deadline(budget),
            )
            .expect("replay succeeds")
            .iter()
            .map(|(t, _)| QuerySpan { issued_at: t.issued_at, finished_at: t.finished_at })
            .collect();
        prop_assert_eq!(budget_violations(&timings, budget).violations, 0);
    }

    /// The reported deadline error bound is monotone non-increasing in
    /// the budget: paying more latency never loosens the answer.
    #[test]
    fn deadline_error_bound_is_monotone_in_budget(
        rows in 1100usize..9000,
        budgets_pct in prop::collection::vec(1u64..100, 2..6),
    ) {
        let backend = MemBackend::new();
        backend.database().register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..rows).map(|i| (i % 97) as f64)))
                .build()
                .expect("table"),
        );
        let query = Query::count("t", Predicate::between("x", 10.0, 80.0));
        let exact_cost = backend.execute(&query).expect("registered").cost;
        let exec = ids::engine::progressive::ProgressiveExecutor::new(backend.database());
        let mut sorted = budgets_pct;
        sorted.sort_unstable();
        let mut last_bound = f64::INFINITY;
        for pct in sorted {
            let budget = exact_cost.mul_f64(pct as f64 / 100.0);
            let r = exec.run_bounded(&query, exact_cost, budget).expect("count is progressive");
            prop_assert!(r.error_bound.is_finite() && r.error_bound >= 0.0);
            prop_assert!(
                r.error_bound <= last_bound,
                "bound must not grow with budget: {} then {}",
                last_bound,
                r.error_bound
            );
            last_bound = r.error_bound;
        }
    }

    /// Mining inverts synthesis: for any composite interface (sliders,
    /// an optional brush, an optional dropdown) and any seed, mining
    /// the synthesized request trace recovers exactly the interface's
    /// signature set — no widget lost, none invented.
    #[test]
    fn mined_interface_round_trips(
        seed in 0u64..1_000_000,
        n_sliders in 1usize..4,
        slider_lo in -100.0f64..100.0,
        slider_width in 0.5f64..100.0,
        with_brush in 0usize..2,
        dropdown_options in 0usize..5,
        extra_steps in 0usize..6,
    ) {
        let mut widgets: Vec<WidgetSpec> = (0..n_sliders)
            .map(|i| WidgetSpec::Slider {
                param: format!("s{i}"),
                min: slider_lo,
                max: slider_lo + slider_width,
            })
            .collect();
        if with_brush == 1 {
            widgets.push(WidgetSpec::Brush {
                x: ("bx".into(), slider_lo, slider_lo + slider_width),
                y: ("by".into(), slider_lo, slider_lo + slider_width),
            });
        }
        if dropdown_options >= 2 {
            widgets.push(WidgetSpec::Dropdown {
                param: "s0_preset".into(),
                column: "s0".into(),
                options: (0..dropdown_options)
                    .map(|i| (format!("opt{i}"), slider_lo, slider_lo + slider_width))
                    .collect(),
            });
        }
        let spec = InterfaceSpec { table: "mined_t".into(), widgets };
        let steps = spec.widgets.len() + extra_steps;
        let trace = spec.synthesize(seed, steps);
        let mined = mining::mine(&trace);
        prop_assert_eq!(&mined.table, "mined_t");
        prop_assert_eq!(mined.states, steps + 1, "initial state plus one per step");
        prop_assert_eq!(mined.widgets, spec.signatures());
    }

    /// The behavior state machine is total: any feedback sequence —
    /// `Partial`/`Failed` answers, empty or foreign-width histograms,
    /// out-of-range `hist_dim` — yields actions with strictly advancing
    /// time until a terminal `None` within `max_actions`, and the ended
    /// session stays ended. No input can wedge a closed-loop session.
    #[test]
    fn behavior_transitions_are_total(
        seed in 0u64..1_000_000,
        max_actions in 1usize..32,
        feedbacks in prop::collection::vec(
            (
                0u64..10_000,                          // latency ms
                0usize..3,                             // quality selector
                prop::collection::vec(0u64..500, 0..12), // histogram counts
                0usize..10,                            // hist_dim (may be out of range)
            ),
            1..40,
        ),
    ) {
        let policy = BehaviorPolicy::adaptive(seed, CrossfilterUi::for_road()).with_config(
            BehaviorConfig { max_actions, ..BehaviorConfig::default() },
        );
        let mut session = policy.session();
        let mut emitted = 0usize;
        let mut last_at = SimTime::ZERO;
        for round in 0..max_actions + 2 {
            let (ms, q, counts, dim) = &feedbacks[round % feedbacks.len()];
            let feedback = Feedback {
                latency: SimDuration::from_millis(*ms),
                quality: match q {
                    0 => ResultQuality::Exact,
                    1 => ResultQuality::Partial { fraction: 0.5, error_bound: 3.0 },
                    _ => ResultQuality::Failed,
                },
                histogram: if counts.is_empty() {
                    None
                } else {
                    Some(Histogram::from_counts(counts.clone()))
                },
                hist_dim: *dim,
            };
            match session.next_action(&feedback) {
                Some(action) => {
                    prop_assert!(action.at > last_at, "time must strictly advance");
                    last_at = action.at;
                    prop_assert_eq!(action.step, emitted);
                    emitted += 1;
                }
                None => break,
            }
        }
        prop_assert!(emitted <= max_actions, "sessions are action-bounded");
        // Terminal is sticky: the ended session never resurrects.
        prop_assert!(session.next_action(&Feedback::initial()).is_none());
    }

    /// Closed-loop sessions are seed-sensitive pure functions: the same
    /// seed replays the same action digest under identical feedback,
    /// and distinct seeds diverge.
    #[test]
    fn behavior_digest_is_seeded(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        latency_ms in 0u64..300,
    ) {
        let digest = |seed: u64| {
            let policy = BehaviorPolicy::adaptive(seed, CrossfilterUi::for_road());
            let mut session = policy.session();
            let feedback = Feedback {
                latency: SimDuration::from_millis(latency_ms),
                quality: ResultQuality::Exact,
                histogram: Some(Histogram::from_counts(vec![40, 1, 3, 1])),
                hist_dim: 0,
            };
            let mut out = String::new();
            while let Some(action) = session.next_action(&feedback) {
                out.push_str(&action.digest_line());
                out.push('\n');
            }
            out
        };
        let a = digest(seed_a);
        prop_assert_eq!(&a, &digest(seed_a), "same seed replays byte-identically");
        if seed_a != seed_b {
            prop_assert_ne!(a, digest(seed_b), "distinct seeds diverge");
        }
    }

    /// The block-permutation seed changes intermediate estimates but
    /// never the final answer, which is byte-identical to the exact
    /// kernel result for every seed.
    #[test]
    fn progressive_seed_never_changes_final_answer(
        rows in 1usize..6000,
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
    ) {
        let backend = MemBackend::new();
        backend.database().register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..rows).map(|i| (i % 211) as f64)))
                .build()
                .expect("table"),
        );
        let query = Query::histogram(
            "t",
            BinSpec::new("x", 0.0, 211.0, 7),
            Predicate::between("x", 25.0, 190.0),
        );
        let exact = backend.execute(&query).expect("registered").result;
        let run = |seed: u64| {
            ids::engine::progressive::ProgressiveExecutor::new(backend.database())
                .with_seed(seed)
                .run(&query)
                .expect("histogram is progressive")
        };
        let a = run(seed_a);
        let b = run(seed_b);
        prop_assert_eq!(&a.last().expect("nonempty").estimate, &exact);
        prop_assert_eq!(&b.last().expect("nonempty").estimate, &exact);
        prop_assert!(ids::engine::progressive::is_anytime_consistent(&a, &exact));
        prop_assert!(ids::engine::progressive::is_anytime_consistent(&b, &exact));
    }
}
