//! Integration tests for the fleet-serving layer: byte-determinism,
//! host-thread invariance, admission invariants, and chaos composition.

use ids::chaos::FaultPlan;
use ids::engine::{Predicate, Query};
use ids::experiments::fleet::{run, FleetConfig};
use ids::serve::{simulate_service, AdmissionPolicy, Lane, OfferedQuery, ServeParams, TokenBucket};
use ids::simclock::{SimDuration, SimTime};
use proptest::prelude::*;

/// A trimmed config so the multi-run tests stay fast.
fn small_config() -> FleetConfig {
    let mut c = FleetConfig::smoke_test();
    c.session_counts = vec![6, 12];
    c.max_groups = 6;
    c
}

#[test]
fn fleet_table_is_deterministic_across_repeats() {
    let config = small_config();
    let first = run(&config).render();
    let second = run(&config).render();
    assert_eq!(first, second, "same config must render byte-identically");
    assert!(first.contains("fleet: concurrency scaling"));
}

#[test]
fn fleet_table_is_invariant_across_worker_threads() {
    let mut config = small_config();
    config.threads = 1;
    let reference = run(&config).render();
    for threads in [2, 4, 8] {
        config.threads = threads;
        assert_eq!(
            reference,
            run(&config).render(),
            "fleet table must not depend on synthesis thread count ({threads})"
        );
    }
}

#[test]
fn chaos_composed_fleet_terminates_and_degrades() {
    let calm = run(&small_config());
    let mut stormy_config = small_config();
    stormy_config.chaos_intensity = 0.8;
    // Node-loss windows mid-run shrink capacity; the run must still
    // complete with every offered query accounted for.
    let stormy = run(&stormy_config);
    for (c, s) in calm.points.iter().zip(&stormy.points) {
        assert_eq!(
            s.offered, c.offered,
            "chaos must not change the offered load"
        );
        assert_eq!(
            s.admission.admitted + s.admission.shed.total(),
            s.offered,
            "conservation under chaos at {} sessions",
            s.sessions
        );
        assert_eq!(s.baseline.admitted, s.offered);
        assert!(
            s.baseline.drained_at >= c.baseline.drained_at,
            "storms cannot drain the open queue earlier"
        );
        assert!(s.baseline.drained_at < SimTime::MAX, "no wedge");
    }
    // Even under the storm, admission keeps the tail below the open
    // queue's at the top concurrency.
    let top = stormy.points.last().unwrap();
    assert!(top.admission.p99 < top.baseline.p99);
}

fn count_query() -> Query {
    Query::count("t", Predicate::True)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A token bucket never admits more than its burst plus what its
    /// rate refills over the observed span.
    #[test]
    fn token_bucket_never_over_admits(
        rate in 0.5f64..50.0,
        burst in 1.0f64..20.0,
        gaps_ms in prop::collection::vec(0u64..2_000, 1..200),
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut now = SimTime::ZERO;
        let mut admitted = 0usize;
        for gap in &gaps_ms {
            now = now + SimDuration::from_millis(*gap);
            if bucket.try_take(now) {
                admitted += 1;
            }
        }
        let span_secs = now.saturating_since(SimTime::ZERO).as_secs_f64();
        let ceiling = burst + rate * span_secs;
        prop_assert!(
            (admitted as f64) <= ceiling + 1e-6,
            "admitted {} exceeds burst {} + rate {} over {}s",
            admitted, burst, rate, span_secs
        );
    }

    /// Conservation: every offered query is either admitted or shed —
    /// the queue always drains, nothing is lost or double-counted.
    #[test]
    fn service_conserves_offered_queries(
        gaps_ms in prop::collection::vec(0u64..500, 1..150),
        cost_ms in 1u64..400,
        rate in 0.5f64..100.0,
        queue_limit in 0usize..16,
        workers in 1usize..5,
    ) {
        let mut at = SimTime::ZERO;
        let offered: Vec<OfferedQuery> = gaps_ms
            .iter()
            .enumerate()
            .map(|(i, gap)| {
                at = at + SimDuration::from_millis(*gap);
                OfferedQuery {
                    session: i % 5,
                    tenant: i % 3,
                    seq: i,
                    at,
                    lane: if i % 4 == 3 { Lane::Prefetch } else { Lane::Interactive },
                    query: count_query(),
                }
            })
            .collect();
        let costs = vec![SimDuration::from_millis(cost_ms); offered.len()];
        let params = ServeParams {
            workers,
            latency_budget: SimDuration::from_millis(100),
            deadline: false,
            shards: 1,
        };
        for policy in [
            AdmissionPolicy::unlimited(),
            AdmissionPolicy::interactive(rate, queue_limit),
        ] {
            let out = simulate_service(
                &offered,
                &costs,
                &policy,
                &FaultPlan::calm(9),
                &params,
            );
            prop_assert_eq!(out.offered, offered.len());
            prop_assert_eq!(
                out.admitted + out.shed.total(),
                out.offered,
                "admitted + shed must equal offered"
            );
            if policy.is_unlimited() {
                prop_assert_eq!(out.shed.total(), 0);
            }
            // The queue drained: the last admitted query finished at a
            // finite instant no earlier than serial service could allow.
            prop_assert!(out.drained_at < SimTime::MAX);
        }
    }
}
