//! End-to-end SQL: the paper's literal query shapes, parsed and executed
//! against the case-study datasets.

use ids::engine::{sql, Backend, DiskBackend, MemBackend};
use ids::workload::datasets;

#[test]
fn paper_q1_select_runs_on_the_movie_table() {
    // Section 6's Q1, modulo the HISTOGRAM-less projection list.
    let q = sql::parse(
        "SELECT poster, title || '(' || year || ')', director, genre, plot, rating \
         FROM imdb LIMIT 100 OFFSET 100",
    )
    .expect("Q1 parses");
    let backend = DiskBackend::new();
    backend
        .database()
        .register(datasets::movies_sized(1, 1_000));
    let out = backend.execute(&q).expect("Q1 executes");
    let rows = out.result.rows().expect("row result");
    assert_eq!(rows.len(), 100);
    assert_eq!(rows[0].len(), 6);
    // The concat projection produced "Title (year)"-shaped strings.
    let title = rows[0][1].as_str().expect("string");
    assert!(title.contains('(') && title.ends_with(')'), "{title}");
}

#[test]
fn paper_crossfilter_histogram_runs_on_the_road_table() {
    // Section 7's histogram query, with the paper's exact constants,
    // written in this engine's HISTOGRAM(...) spelling.
    let q = sql::parse(
        "SELECT HISTOGRAM(y, 56.582, 57.774, 20), COUNT(*) FROM dataroad \
         WHERE x >= 8.146 AND x <= 11.2616367163 \
           AND y >= 56.582 AND y <= 57.774 \
           AND z >= -8.608 AND z <= 137.361 \
         GROUP BY 1 ORDER BY 1",
    )
    .expect("crossfilter SQL parses");
    let mem = MemBackend::new();
    mem.database()
        .register(datasets::road_network_sized(1, 50_000));
    let out = mem.execute(&q).expect("histogram executes");
    let hist = out.result.histogram().expect("histogram result");
    assert_eq!(hist.bins(), 21);
    // The paper's WHERE covers the full domains: every row lands somewhere.
    assert_eq!(hist.total(), 50_000);
}

#[test]
fn parsed_and_constructed_queries_agree() {
    use ids::engine::{BinSpec, Predicate, Query};
    let mem = MemBackend::new();
    mem.database()
        .register(datasets::road_network_sized(2, 20_000));

    let parsed = sql::parse(
        "SELECT HISTOGRAM(z, -8.608, 137.361, 20), COUNT(*) FROM dataroad \
         WHERE x BETWEEN 8.5 AND 10.0 GROUP BY 1 ORDER BY 1",
    )
    .expect("parses");
    let constructed = Query::histogram(
        "dataroad",
        BinSpec::new("z", -8.608, 137.361, 20),
        Predicate::between("x", 8.5, 10.0),
    );
    let a = mem.execute(&parsed).expect("parsed runs");
    let b = mem.execute(&constructed).expect("constructed runs");
    assert_eq!(a.result, b.result);
    assert_eq!(a.cost, b.cost, "same logical query, same virtual cost");
}

#[test]
fn sql_counts_match_listing_filters() {
    let mem = MemBackend::new();
    mem.database().register(datasets::listings(3, 20_000));
    let all = mem
        .execute(&sql::parse("SELECT COUNT(*) FROM listings").expect("parses"))
        .expect("runs")
        .scalar_count()
        .expect("count");
    assert_eq!(all, 20_000);
    let cheap = mem
        .execute(
            &sql::parse("SELECT COUNT(*) FROM listings WHERE price <= 100 AND guests >= 2")
                .expect("parses"),
        )
        .expect("runs")
        .scalar_count()
        .expect("count");
    assert!(cheap > 0 && cheap < all);
    // Categorical equality through SQL.
    let entire = mem
        .execute(
            &sql::parse("SELECT COUNT(*) FROM listings WHERE room_type = 'entire_home'")
                .expect("parses"),
        )
        .expect("runs")
        .scalar_count()
        .expect("count");
    assert!(entire > all / 3, "entire_home is the majority class");
}
