//! Integration tests for the `ids-obs` observability layer, through the
//! public facade: same-seed trace exports are byte-identical, telemetry
//! never changes query outcomes or timings, the disabled recorder is
//! nearly free, and buffer-pool stats feed the global registry without
//! losing their per-pool accessors.

use std::sync::Mutex;

use ids::engine::scheduler::{IssuedQuery, QueryTiming, ReplayScheduler};
use ids::engine::{
    Backend, BinSpec, BufferPool, ColumnBuilder, DiskBackend, EvictionPolicy, PageId, Predicate,
    Query, QueryOutcome, TableBuilder,
};
use ids::obs;
use ids::simclock::SimTime;

/// The recorder and registry are process-global; every test here takes
/// this lock and starts from `reset_all()` so they cannot interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small but non-trivial replay: a disk backend (buffer-pool traffic)
/// driven by a bursty stream of mixed query shapes on two workers.
fn run_replay() -> Vec<(QueryTiming, QueryOutcome)> {
    let backend = DiskBackend::new();
    backend.database().register(
        TableBuilder::new("t")
            .column(
                "x",
                ColumnBuilder::float((0..30_000).map(|i| (i % 997) as f64)),
            )
            .column(
                "y",
                ColumnBuilder::float((0..30_000).map(|i| (i % 101) as f64)),
            )
            .build()
            .unwrap(),
    );
    let stream: Vec<IssuedQuery> = (0..12)
        .map(|i| {
            let q = match i % 3 {
                0 => Query::count("t", Predicate::between("x", 0.0, 100.0 + i as f64)),
                1 => Query::histogram(
                    "t",
                    BinSpec::new("y", 0.0, 101.0, 10),
                    Predicate::between("x", 50.0, 500.0),
                ),
                _ => Query::select("t", vec![], Predicate::True, Some(64), 32 * i),
            };
            IssuedQuery::new(SimTime::from_millis(5 * (i as u64 + 1)), q, i as u64)
        })
        .collect();
    ReplayScheduler::new(2)
        .replay_with_outcomes(&backend, &stream)
        .unwrap()
}

fn export_trace() -> String {
    let rec = obs::recorder();
    obs::chrome_trace_json(&rec.events(), &rec.tracks())
}

#[test]
fn same_seed_trace_exports_are_byte_identical() {
    let _guard = lock();
    obs::reset_all();
    obs::enable();
    run_replay();
    let first = export_trace();
    obs::reset_all();
    obs::enable();
    run_replay();
    let second = export_trace();
    obs::disable();
    obs::reset_all();

    assert!(!first.is_empty());
    assert_eq!(first, second, "same-seed traces must be byte-identical");
    // The trace has the shapes the acceptance criteria name: query
    // execution spans and buffer-pool counter samples.
    assert!(first.starts_with("{\"traceEvents\":["));
    assert!(first.contains("\"ph\":\"X\""), "execution spans present");
    assert!(
        first.contains("\"name\":\"engine.buffer.hit_rate\""),
        "buffer-pool counter samples present"
    );
    assert!(first.contains("disk/worker-0"), "per-worker tracks named");
}

#[test]
fn telemetry_is_observation_only() {
    let _guard = lock();
    obs::reset_all();
    obs::disable();
    let dark = run_replay();
    obs::reset_all();
    obs::enable();
    let lit = run_replay();
    obs::disable();
    obs::reset_all();

    assert_eq!(dark.len(), lit.len());
    for ((t0, o0), (t1, o1)) in dark.iter().zip(lit.iter()) {
        assert_eq!(t0, t1, "timings must not depend on the recorder");
        assert_eq!(o0.cost, o1.cost);
        assert_eq!(o0.result, o1.result);
        assert_eq!(
            format!("{:?}", o0.footprint),
            format!("{:?}", o1.footprint),
            "footprints must not depend on the recorder"
        );
    }
}

#[test]
fn disabled_recorder_is_nearly_free() {
    let _guard = lock();
    obs::reset_all();
    obs::disable();
    const N: u64 = 300_000;

    let start = std::time::Instant::now();
    for i in 0..N {
        obs::recorder().record_counter("bench.disabled", SimTime::from_micros(i), i as f64);
    }
    let disabled = start.elapsed();
    assert_eq!(
        obs::recorder().event_count(),
        0,
        "disabled path records nothing"
    );

    obs::enable();
    let start = std::time::Instant::now();
    for i in 0..N {
        obs::recorder().record_counter("bench.enabled", SimTime::from_micros(i), i as f64);
    }
    let enabled = start.elapsed();
    obs::disable();
    obs::reset_all();

    // The disabled path is one relaxed load + branch; the enabled path
    // locks and pushes. The former must not cost more than the latter —
    // a generous bound that holds under any scheduler noise.
    assert!(
        disabled <= enabled,
        "disabled path ({disabled:?}) should be cheaper than enabled ({enabled:?})"
    );
}

#[test]
fn buffer_pools_feed_the_registry_and_keep_their_own_stats() {
    let _guard = lock();
    obs::reset_all();

    let a = BufferPool::new(4, EvictionPolicy::Lru);
    let b = BufferPool::new(2, EvictionPolicy::Fifo);
    for n in 0..6 {
        a.touch(PageId {
            table: 0,
            page_no: n,
        });
    }
    a.touch(PageId {
        table: 0,
        page_no: 5,
    }); // hit
    b.touch(PageId {
        table: 1,
        page_no: 0,
    });
    b.touch(PageId {
        table: 1,
        page_no: 0,
    }); // hit

    // Per-pool accessors unchanged.
    assert_eq!(a.stats().hits, 1);
    assert_eq!(a.stats().misses, 6);
    assert_eq!(b.stats().hits, 1);
    assert_eq!(b.stats().misses, 1);

    // Global totals sum the live pools.
    let snap = obs::metrics().snapshot();
    let get = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(get("engine.buffer.hits"), 2);
    assert_eq!(get("engine.buffer.misses"), 7);
    assert_eq!(
        get("engine.buffer.evictions"),
        a.stats().evictions + b.stats().evictions
    );

    // Dropping the pools folds their counts into the registry's owned
    // counters: totals survive.
    drop(a);
    drop(b);
    let snap = obs::metrics().snapshot();
    let hits = snap
        .counters
        .iter()
        .find(|(n, _)| n == "engine.buffer.hits")
        .map(|&(_, v)| v)
        .unwrap();
    assert_eq!(hits, 2);
    obs::reset_all();
}

#[test]
fn histograms_bucket_merge_and_quantile_through_facade() {
    // Pure data-structure test: no global state, no lock needed.
    let h = obs::Histogram::new();
    let g = obs::Histogram::new();
    for v in 0..1000u64 {
        h.record(v);
    }
    for v in 1000..2000u64 {
        g.record(v);
    }
    h.merge(&g);
    assert_eq!(h.count(), 2000);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 1999);
    let p50 = h.quantile(0.5);
    // Bucket lower bounds undershoot by at most one sub-bucket (6.25%).
    assert!(
        p50 <= 1000 && p50 as f64 >= 1000.0 * (1.0 - 1.0 / 16.0),
        "p50={p50}"
    );
    let p99 = h.quantile(0.99);
    assert!(
        p99 <= 1980 && p99 as f64 >= 1980.0 * (1.0 - 1.0 / 16.0),
        "p99={p99}"
    );
}

/// Chunked parity on a real capture: the streaming exporter must emit
/// exactly the monolithic bytes at every worker count, through both a
/// `String` sink and an I/O sink.
#[test]
fn chunked_trace_export_is_byte_identical_at_any_thread_count() {
    let _guard = lock();
    obs::reset_all();
    obs::enable();
    run_replay();
    let rec = obs::recorder();
    let events = rec.events();
    let tracks = rec.tracks();
    obs::disable();
    obs::reset_all();

    let monolithic = obs::chrome_trace_json(&events, &tracks);
    assert!(!monolithic.is_empty());
    for threads in [1usize, 2, 4, 8] {
        let mut chunked = String::new();
        obs::chrome_trace_chunked(&events, &tracks, threads, &mut chunked)
            .expect("string sink cannot fail");
        assert_eq!(
            monolithic, chunked,
            "chunked export at {threads} threads must reproduce the monolithic bytes"
        );
        let mut sink = obs::IoSink::new(Vec::new());
        obs::chrome_trace_chunked(&events, &tracks, threads, &mut sink)
            .expect("vec sink cannot fail");
        assert_eq!(
            monolithic.as_bytes(),
            &sink.into_inner()[..],
            "io-sink export at {threads} threads must reproduce the monolithic bytes"
        );
    }
}

/// Golden edges: the chunked exporter reproduces the exact framing for
/// an empty capture and a single event (no stray separators).
#[test]
fn chunked_trace_golden_edges() {
    let empty_golden = "{\"traceEvents\":[\n\
        {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
        \"args\":{\"name\":\"ids-sim\"}},\n\
        {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\
        \"args\":{\"name\":\"counters\"}}\n\
        ],\"displayTimeUnit\":\"ms\"}\n";
    let mut out = String::new();
    obs::chrome_trace_chunked(&[], &[], 4, &mut out).expect("string sink");
    assert_eq!(out, empty_golden, "empty trace framing drifted");
    assert_eq!(out, obs::chrome_trace_json(&[], &[]));

    let one = vec![ids::obs::TraceEvent::Counter {
        name: "c",
        ts: SimTime::from_micros(7),
        value: 1.5,
    }];
    let mut chunked = String::new();
    obs::chrome_trace_chunked(&one, &[], 4, &mut chunked).expect("string sink");
    assert_eq!(chunked, obs::chrome_trace_json(&one, &[]));
    assert!(chunked.contains("\"ts\":7"));
}

/// Fleet telemetry is served out of the lakehouse and must be
/// byte-identical across runs of the same config.
#[test]
fn fleet_telemetry_tables_are_deterministic_across_runs() {
    let _guard = lock();
    let config = ids::experiments::fleet::FleetConfig {
        seed: 9,
        session_counts: vec![4, 8],
        ..ids::experiments::fleet::FleetConfig::smoke_test()
    };
    let capture = || {
        obs::reset_all();
        obs::enable();
        let report = ids::experiments::fleet::run(&config);
        obs::disable();
        obs::reset_all();
        report
    };
    let a = capture();
    let b = capture();
    assert!(
        a.telemetry.span_rows > 0,
        "fleet run with recorder enabled must capture serve spans"
    );
    assert_eq!(
        a.render_telemetry(),
        b.render_telemetry(),
        "lakehouse telemetry must be byte-identical across runs"
    );
    assert_eq!(a.telemetry.p99, b.telemetry.p99);
    assert_eq!(a.telemetry.lcv, b.telemetry.lcv);
    assert_eq!(a.telemetry.slowest, b.telemetry.slowest);
}

#[test]
fn metrics_summary_and_phase_table_render_from_a_run() {
    let _guard = lock();
    obs::reset_all();
    obs::enable();
    {
        let _p = obs::phase("test.replay");
        run_replay();
    }
    let phases = obs::recorder().phases();
    let snap = obs::metrics().snapshot();
    obs::disable();
    obs::reset_all();

    let phase_table = ids::report::phase_summary(&phases);
    assert!(phase_table.contains("test.replay"));
    let summary = ids::report::metrics_summary(&snap);
    assert!(summary.contains("engine.buffer.hits"));
    assert!(summary.contains("sched.latency_us"));
    let tsv = obs::metrics_tsv(&snap);
    assert!(tsv.contains("sched.queries\t12"));
}
