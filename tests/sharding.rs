//! Integration tests for the sharded scatter-gather layer through the
//! `ids::` facade: every partition scheme agrees with single-node
//! execution, outcomes are invariant across worker-thread counts,
//! replica routing degrades to a typed error (never an estimate), and
//! per-shard spans flow into the telemetry lakehouse's canned queries.

use std::sync::Mutex;

use ids::engine::exec::run_query;
use ids::engine::{
    BinSpec, ColumnBuilder, CostParams, Database, EngineError, Predicate, Query, TableBuilder,
};
use ids::lakehouse::{Lakehouse, TimeWindow};
use ids::obs;
use ids::shard::{partition_database, PartitionScheme, ScatterGather, ShardedCluster};

/// The obs recorder is process-global; the telemetry test takes this
/// lock and starts from `reset_all()` so parallel tests cannot
/// interleave spans into its capture.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A session-log-shaped dataset: a clustered virtual-time axis `t`, a
/// uniform measure `v`, and a low-cardinality key `k` with duplicates.
fn dataset(rows: usize) -> Database {
    let db = Database::new();
    db.register(
        TableBuilder::new("sessions")
            .column("t", ColumnBuilder::float((0..rows).map(|i| i as f64)))
            .column(
                "v",
                ColumnBuilder::float((0..rows).map(|i| (i * 37 % 101) as f64)),
            )
            .column("k", ColumnBuilder::int((0..rows).map(|i| (i % 13) as i64)))
            .build()
            .expect("dataset table"),
    );
    db
}

fn schemes() -> Vec<PartitionScheme> {
    vec![
        PartitionScheme::HashRows,
        PartitionScheme::hash_key("k"),
        PartitionScheme::range("t"),
    ]
}

/// Mergeable query shapes covering brushes on the clustered axis, full
/// scans, and a count over the uniform measure.
fn mergeable_queries() -> Vec<Query> {
    vec![
        Query::count("sessions", Predicate::between("v", 10.0, 90.0)),
        Query::histogram(
            "sessions",
            BinSpec::new("v", 0.0, 101.0, 16),
            Predicate::between("t", 100.0, 900.0),
        ),
        Query::histogram(
            "sessions",
            BinSpec::new("v", 0.0, 101.0, 8),
            Predicate::True,
        ),
    ]
}

#[test]
fn every_scheme_matches_single_node_execution() {
    let db = dataset(2_000);
    for scheme in schemes() {
        for shards in [1usize, 3, 8] {
            let parts = partition_database(&db, &scheme, 11, shards).expect("partition");
            let sg = ScatterGather::over(parts);
            for query in mergeable_queries() {
                let (reference, _) = run_query(&db, &query).expect("single-node");
                let out = sg.execute(&query).expect("scatter-gather");
                assert_eq!(
                    out.result, reference,
                    "merged result drifted from single-node under {scheme:?} at {shards} shards"
                );
                assert_eq!(out.per_shard.len(), shards);
            }
        }
    }
}

#[test]
fn outcome_is_invariant_across_worker_threads() {
    let db = dataset(3_000);
    let query = &mergeable_queries()[1];
    let parts = partition_database(&db, &PartitionScheme::range("t"), 11, 8).expect("partition");
    let reference = ScatterGather::over(parts.clone())
        .with_threads(1)
        .execute(query)
        .expect("reference");
    for threads in [2usize, 4, 8, 16] {
        let out = ScatterGather::over(parts.clone())
            .with_threads(threads)
            .execute(query)
            .expect("threaded");
        assert_eq!(
            out.result, reference.result,
            "result drifted at {threads} threads"
        );
        assert_eq!(
            out.elapsed, reference.elapsed,
            "cost drifted at {threads} threads"
        );
        assert_eq!(out.total_work, reference.total_work);
        assert_eq!(
            out.per_shard, reference.per_shard,
            "telemetry drifted at {threads} threads"
        );
    }
}

#[test]
fn losing_every_replica_is_a_typed_error_not_an_estimate() {
    let db = dataset(1_000);
    let cluster = ShardedCluster::partition(&db, PartitionScheme::hash_key("k"), 11, 4)
        .expect("cluster")
        .with_replicas(2);
    let query = &mergeable_queries()[0];
    let healthy = cluster.execute(query).expect("healthy");

    // Losing one full replica stripe leaves every shard a survivor:
    // still exact, byte-identical to the healthy run.
    let degraded = cluster
        .execute_excluding(query, &[0, 1, 2, 3])
        .expect("one survivor per shard");
    assert_eq!(degraded.result, healthy.result);

    // Losing both replicas of shard 2 (nodes 2 and 6 in the striped
    // layout) must surface the typed transient error, never a partial
    // answer extrapolated from the survivors.
    let lost: Vec<usize> = cluster.nodes_of_shard(2);
    match cluster.execute_excluding(query, &lost) {
        Err(EngineError::ShardUnavailable { shard, replicas }) => {
            assert_eq!(shard, 2);
            assert_eq!(replicas, 2);
            assert!(
                EngineError::ShardUnavailable { shard, replicas }.is_transient(),
                "shard loss recovers with the fault window"
            );
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
}

/// Per-shard `shard` spans — one per shard per query, tagged
/// `tenant = shard/N` — land in the lakehouse spans table, so the canned
/// `p99_by_tenant` query answers "p99 by shard" directly.
#[test]
fn shard_spans_feed_the_lakehouse_p99_by_shard() {
    let _guard = lock();
    obs::reset_all();
    obs::enable();

    let db = dataset(4_000);
    let parts = partition_database(&db, &PartitionScheme::range("t"), 11, 4).expect("partition");
    let sg = ScatterGather::over(parts).with_costs(CostParams::mem_default());
    let out = sg.execute(&mergeable_queries()[2]).expect("scatter-gather");

    let rec = obs::recorder();
    let events: Vec<_> = rec
        .events()
        .iter()
        .filter(|e| matches!(e, obs::TraceEvent::Span { cat, .. } if *cat == "shard"))
        .cloned()
        .collect();
    let tracks = rec.tracks();
    obs::disable();
    obs::reset_all();

    assert_eq!(events.len(), 4, "one shard span per shard");
    let mut lake = Lakehouse::new();
    let stats = lake.ingest_events(&events, &tracks);
    assert_eq!(stats.spans, 4);
    let mut queries = lake.queries().expect("spans table");
    let p99 = queries
        .p99_by_tenant(TimeWindow::all())
        .expect("p99 by shard");
    assert_eq!(p99.len(), 4, "one tenant row per shard");
    for (shard, row) in p99.iter().enumerate() {
        assert_eq!(row.tenant, format!("shard/{shard}"));
        assert_eq!(row.spans, 1);
        assert_eq!(
            row.p99_us,
            out.per_shard[shard].cost.as_micros() as i64,
            "lakehouse p99 must equal the shard's priced cost"
        );
    }
}
