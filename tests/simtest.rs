//! Simulation-testing integration suite.
//!
//! Two halves:
//!
//! 1. **Corpus replay** — every checked-in scenario under `tests/corpus/`
//!    (minimized repros of past failures plus hand-picked edge cases)
//!    must parse, round-trip, and pass every oracle. This is the
//!    regression guard: a fixed bug stays fixed.
//! 2. **Differential properties** — the naive reference interpreter and
//!    `engine::exec` must agree on random small tables, including the
//!    edges that found real bugs (empty tables, all-NaN columns,
//!    duplicate join keys).

use std::path::PathBuf;

use ids::simtest::scenario::{FilterSpec, QuerySpec};
use ids::simtest::{
    check_scenario, derive_seed, differential_check, explore, from_toml, to_toml, Scenario,
    TableSpec,
};
use proptest::prelude::*;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// The checked-in corpus, sorted by file name for a stable replay order.
fn corpus_files() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let path = e.expect("read_dir entry").path();
            if path.extension().is_some_and(|x| x == "toml") {
                let name = path
                    .file_name()
                    .expect("file name")
                    .to_string_lossy()
                    .into_owned();
                let body = std::fs::read_to_string(&path).expect("read corpus file");
                Some((name, body))
            } else {
                None
            }
        })
        .collect();
    out.sort();
    out
}

/// Every corpus scenario passes every oracle. The whole corpus is meant
/// to replay in well under 30 seconds.
#[test]
fn corpus_replays_clean() {
    let files = corpus_files();
    assert!(
        files.len() >= 5,
        "corpus holds at least five scenarios, found {}",
        files.len()
    );
    for (name, body) in &files {
        let scenario = from_toml(body).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        let verdict = check_scenario(&scenario);
        assert!(
            verdict.all_passed(),
            "{name}: corpus replay failed — {}",
            verdict.summary()
        );
    }
}

/// The two planner corpus scenarios exercise the plan shapes they are
/// named for: `planner-predicate-reorder` actually reorders a
/// conjunction, and `planner-fused-vs-unfused` plans both histogram
/// paths. (Oracle 13 already pins their execution to the unplanned
/// path; this pins their *coverage*.)
#[test]
fn planner_corpus_scenarios_cover_their_plan_shapes() {
    use ids::engine::planner::{HistogramPath, PlanNode};
    use ids::engine::Backend;
    use ids::simtest::reference::{diff_backend, raw_tables};

    let load = |name: &str| {
        let body = std::fs::read_to_string(corpus_dir().join(name)).expect("corpus file");
        from_toml(&body).unwrap_or_else(|e| panic!("{name}: parse error: {e}"))
    };
    let plan_of = |s: &Scenario, i: usize| {
        let backend = diff_backend(&raw_tables(s.seed, &s.table));
        ids::engine::plan(&backend.database(), &s.queries[i].query()).expect("plans")
    };

    let reorder = load("planner-predicate-reorder.toml");
    match plan_of(&reorder, 0).node() {
        PlanNode::Count { pred } => {
            assert!(pred.reordered, "query 0 must reorder its conjuncts");
            assert!(
                pred.conjuncts[0].0.starts_with("k "),
                "selective k-conjunct must come first, got {:?}",
                pred.conjuncts
            );
        }
        other => panic!("expected a count plan, got {other:?}"),
    }
    match plan_of(&reorder, 2).node() {
        PlanNode::Count { pred } => {
            assert!(!pred.reordered, "query 2 is already best-ordered");
        }
        other => panic!("expected a count plan, got {other:?}"),
    }

    let fused = load("planner-fused-vs-unfused.toml");
    for (i, want) in [(0, HistogramPath::Unfused), (1, HistogramPath::Fused)] {
        match plan_of(&fused, i).node() {
            PlanNode::Histogram { path, .. } => {
                assert_eq!(*path, want, "query {i} must plan the {want:?} bin path");
            }
            other => panic!("expected a histogram plan, got {other:?}"),
        }
    }
}

/// The three adaptive corpus scenarios exercise the closed-loop
/// transitions they are named for: the zoom loop actually zooms and
/// runs to its action bound, the chaos scenario actually abandons, and
/// the mined replay actually synthesizes a multi-kind composite
/// interface. (Oracle 14 already pins their determinism; this pins
/// their *coverage* — a behavior-model change that stops the named
/// transitions from firing fails here, not silently.)
#[test]
fn adaptive_corpus_scenarios_cover_their_transitions() {
    use ids::simtest::{adaptive_run, gate};
    use ids::workload::crossfilter::{self, CrossfilterUi};
    use ids::workload::mining;

    let load = |name: &str| {
        let body = std::fs::read_to_string(corpus_dir().join(name)).expect("corpus file");
        from_toml(&body).unwrap_or_else(|e| panic!("{name}: parse error: {e}"))
    };

    {
        let _g = gate();
        let zoom = load("adaptive-zoom-loop.toml");
        let digest = adaptive_run(&zoom, zoom.threads, 4);
        assert!(
            digest.contains("\tzoom\t"),
            "the patient user must hit the zoom transition"
        );
        assert!(
            digest.contains("abandoned\tfalse"),
            "a calm backend never loses the patient user"
        );
        let actions = digest.lines().filter(|l| l.starts_with("action\t")).count();
        assert_eq!(
            actions, zoom.adaptive_steps,
            "the un-abandoned loop runs to its action bound"
        );

        let storm = load("adaptive-abandon-under-chaos.toml");
        let digest = adaptive_run(&storm, storm.threads, 4);
        assert!(
            digest.contains("abandoned\ttrue"),
            "the hair-trigger user must abandon under the storm"
        );
        let actions = digest.lines().filter(|l| l.starts_with("action\t")).count();
        assert!(
            actions < storm.adaptive_steps,
            "abandonment must end the session early ({actions} actions)"
        );
    }

    // The mined scenario replays the composite interface the pipeline
    // synthesizes from its open-loop trace: it must mine back at least
    // two distinct widget kinds (a pure-slider interface would make the
    // "novel composite" claim vacuous).
    let mined_sc = load("mined-interface-replay.toml");
    let ui = CrossfilterUi::for_table("simtest_mined");
    let session = crossfilter::simulate_session(mined_sc.device, 0, mined_sc.seed, &ui);
    let mined = mining::mine(&mining::crossfilter_request_trace(&ui, &session.trace));
    let novel = mining::compose_novel(&mined, &ui);
    let kinds: std::collections::BTreeSet<_> = novel.signatures().iter().map(|s| s.kind).collect();
    assert!(
        kinds.len() >= 2,
        "the composite interface mixes widget kinds, got {:?}",
        kinds
    );
}

/// Corpus files survive a parse → serialize → parse loop unchanged, so
/// repro files pasted from simtest output stay canonical.
#[test]
fn corpus_files_round_trip() {
    for (name, body) in &corpus_files() {
        let parsed = from_toml(body).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        let reparsed =
            from_toml(&to_toml(&parsed)).unwrap_or_else(|e| panic!("{name}: reparse error: {e}"));
        assert_eq!(parsed, reparsed, "{name}: round-trip identity");
    }
}

/// Exploration is a pure function of `(master seed, count)`: two runs
/// produce byte-identical reports, and the default stream is clean.
#[test]
fn exploration_is_deterministic_and_clean() {
    let a = explore(0xBEEF, 2, None);
    let b = explore(0xBEEF, 2, None);
    assert_eq!(a.render(), b.render(), "byte-identical reports");
    assert!(a.all_passed(), "default stream is clean:\n{}", a.render());
}

/// A generous deadline never changes the outcome — time-boxed runs are
/// prefixes of unlimited runs, so CI time budgets cannot mask failures.
#[test]
fn time_boxed_runs_are_prefixes() {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(600);
    let boxed = explore(0x5EED, 2, Some(deadline));
    let unboxed = explore(0x5EED, 2, None);
    assert_eq!(boxed.completed, unboxed.completed);
    assert_eq!(boxed.render(), unboxed.render());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine agrees with the row-at-a-time reference interpreter on
    /// random table shapes crossed with random query programs.
    #[test]
    fn engine_matches_reference_on_random_tables(
        seed in 0u64..1_000_000,
        rows in 0usize..80,
        key_mod in 1usize..8,
        nan_every in 0usize..4,
        dim_rows in 0usize..30,
    ) {
        let table = TableSpec { rows, key_mod, nan_every, dim_rows };
        let queries = Scenario::generate(derive_seed(seed, 0xD1FF)).queries;
        if let Err(divergence) = differential_check(seed, &table, &queries) {
            return Err(TestCaseError::fail(divergence));
        }
    }

    /// Empty fact and dim tables: every query family returns its empty
    /// shape instead of panicking (regression: the histogram type probe
    /// used to index row 0 of an empty column).
    #[test]
    fn empty_tables_agree(seed in 0u64..10_000) {
        let table = TableSpec { rows: 0, key_mod: 1, nan_every: 0, dim_rows: 0 };
        let queries = [
            QuerySpec::Count { filter: FilterSpec::True },
            QuerySpec::Select { filter: FilterSpec::True, limit: 4, offset: 0 },
            QuerySpec::Histogram { bins: 5, lo: 0.0, hi: 50.0, filter: FilterSpec::True },
            QuerySpec::Join { limit: 0, offset: 0 },
        ];
        if let Err(divergence) = differential_check(seed, &table, &queries) {
            return Err(TestCaseError::fail(divergence));
        }
    }

    /// All-NaN measure column (the engine's stand-in for all-null): NaN
    /// lands in no histogram bin and fails every range predicate.
    #[test]
    fn all_nan_columns_agree(
        seed in 0u64..10_000,
        rows in 1usize..60,
        bins in 1usize..12,
    ) {
        let table = TableSpec { rows, key_mod: 3, nan_every: 1, dim_rows: 5 };
        let queries = [
            QuerySpec::Histogram {
                bins,
                lo: 0.0,
                hi: 80.0,
                filter: FilterSpec::True,
            },
            QuerySpec::Count { filter: FilterSpec::VBetween { lo: 0.0, hi: 100.0 } },
            QuerySpec::Count { filter: FilterSpec::NotV { lo: 0.0, hi: 100.0 } },
        ];
        if let Err(divergence) = differential_check(seed, &table, &queries) {
            return Err(TestCaseError::fail(divergence));
        }
    }

    /// Duplicate join keys (`key_mod = 1` collapses every fact key to 0)
    /// expand to cross products, and pagination over left rows stays
    /// consistent with the reference.
    #[test]
    fn duplicate_join_keys_agree(
        seed in 0u64..10_000,
        rows in 1usize..40,
        dim_rows in 1usize..25,
        limit in 0usize..12,
        offset in 0usize..45,
    ) {
        let table = TableSpec { rows, key_mod: 1, nan_every: 0, dim_rows };
        let queries = [
            QuerySpec::Join { limit, offset },
            QuerySpec::Join { limit: 0, offset: 0 },
        ];
        if let Err(divergence) = differential_check(seed, &table, &queries) {
            return Err(TestCaseError::fail(divergence));
        }
    }
}
