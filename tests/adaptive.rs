//! Closed-loop adaptive-workload integration suite.
//!
//! Three contracts around the feedback loop:
//!
//! 1. **Byte-determinism** — a closed-loop session fleet is a pure
//!    function of its scenario seed, invariant across reruns, gather
//!    threads, and shard counts (oracle 14's property, driven here over
//!    a seeded fleet plus the full oracle battery on mined scenarios).
//! 2. **Open-loop equivalence** — with feedback disabled,
//!    `BehaviorPolicy::static_replay` reproduces the existing
//!    crossfilter trace bit for bit, no matter how hostile the serving
//!    policy is.
//! 3. **Abandonment monotonicity** — injected latency is the *only*
//!    signal that ends sessions early, so the fleet's abandon count is
//!    monotone in the injected delay.

use ids::devices::DeviceKind;
use ids::engine::{Backend, MemBackend};
use ids::serve::{drive_session, ClosedLoopParams};
use ids::simclock::SimDuration;
use ids::simtest::{adaptive_run, check_scenario, derive_seed, gate, Scenario, SessionShape};
use ids::workload::adaptive::BehaviorPolicy;
use ids::workload::trace::Trace;
use ids::workload::{crossfilter, datasets};

/// A fleet of generated closed-loop scenarios replays byte-identically
/// across reruns, 1/2/4/8 gather threads, and 1/4/16 shards. The digest
/// covers the action stream (kind, slider, full range state), every
/// query result, shed counters, and the interface mined back out of the
/// session's own request trace.
#[test]
fn closed_loop_fleet_is_byte_deterministic() {
    let _g = gate();
    for i in 0..4u64 {
        let mut s = Scenario::generate(derive_seed(0xADA7, i));
        s.shape = SessionShape::Adaptive;
        let base = adaptive_run(&s, s.threads, 4);
        assert_eq!(
            base,
            adaptive_run(&s, s.threads, 4),
            "seed {i}: rerun diverged"
        );
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                base,
                adaptive_run(&s, threads, 4),
                "seed {i}: digest changed at {threads} gather threads"
            );
        }
        for shards in [1usize, 16] {
            assert_eq!(
                base,
                adaptive_run(&s, s.threads, shards),
                "seed {i}: digest changed at {shards} shards"
            );
        }
    }
}

/// Mined-interface scenarios — the full grammar, not a special case —
/// pass the entire 14-oracle battery.
#[test]
fn mined_scenarios_pass_every_oracle() {
    for i in 0..3u64 {
        let mut s = Scenario::generate(derive_seed(0x51ED, i));
        s.shape = SessionShape::Mined;
        let v = check_scenario(&s);
        assert_eq!(v.reports.len(), 14, "every oracle runs on mined scenarios");
        assert!(v.all_passed(), "mined scenario {i}: {}", v.summary());
    }
}

/// Feedback disabled ⇒ the closed-loop machinery degenerates to the
/// open-loop simulator: the driven session's slider trace equals the
/// crossfilter trace bit for bit, under a friendly and a hostile
/// serving policy alike, and a replay user never abandons.
#[test]
fn static_replay_reproduces_the_open_loop_trace() {
    let seed = 0xC0FFEE;
    let backend = MemBackend::new();
    backend
        .database()
        .register(datasets::road_network_sized(seed, 400));
    let ui = crossfilter::CrossfilterUi::for_road();
    let expected = crossfilter::simulate_session(DeviceKind::Mouse, 0, seed, &ui).trace;
    let policy = BehaviorPolicy::static_replay(DeviceKind::Mouse, 0, seed, ui);

    for extra_ms in [0u64, 5_000] {
        let params = ClosedLoopParams {
            extra_latency: SimDuration::from_millis(extra_ms),
            ..ClosedLoopParams::default()
        };
        let outcome = drive_session(&backend, &policy, &params);
        let replayed =
            Trace::from_records(outcome.actions.iter().map(|a| a.slider_record()).collect());
        assert_eq!(
            replayed.to_tsv(),
            expected.to_tsv(),
            "open-loop trace must survive replay with {extra_ms} ms of injected latency"
        );
        assert!(
            !outcome.abandoned,
            "a feedback-blind user cannot abandon ({extra_ms} ms injected)"
        );
    }
}

/// Injected latency only ever *increases* abandonment: content drives
/// zoom/drill/backtrack, latency drives nothing but the walk-away
/// decision, so each session abandons no later under a larger delay and
/// the fleet count is monotone. A five-second stall (vs the 400 ms
/// default tolerance) abandons everyone; an instant backend nobody.
#[test]
fn abandon_rate_is_monotone_in_injected_latency() {
    let backend = MemBackend::new();
    backend
        .database()
        .register(datasets::road_network_sized(7, 300));
    let ui = crossfilter::CrossfilterUi::for_road();
    let fleet = 12u64;

    let abandoned_at = |extra_ms: u64| -> usize {
        let params = ClosedLoopParams {
            extra_latency: SimDuration::from_millis(extra_ms),
            ..ClosedLoopParams::default()
        };
        (0..fleet)
            .filter(|&s| {
                let policy = BehaviorPolicy::adaptive(derive_seed(0xABA2, s), ui.clone());
                drive_session(&backend, &policy, &params).abandoned
            })
            .count()
    };

    let mut last = abandoned_at(0);
    assert_eq!(last, 0, "an instant backend never loses a session");
    for extra_ms in [150u64, 600, 5_000] {
        let now = abandoned_at(extra_ms);
        assert!(
            now >= last,
            "abandon count dropped from {last} to {now} at {extra_ms} ms"
        );
        last = now;
    }
    assert_eq!(
        last as u64, fleet,
        "a five-second stall abandons the whole fleet"
    );
}
