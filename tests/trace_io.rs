//! Trace persistence: captured sessions round-trip through files, the
//! workflow behind sharing user traces as a community benchmark
//! (Section 4.1.3 / the Battle et al. position the paper cites).

use ids::devices::DeviceKind;
use ids::simclock::SimDuration;
use ids::workload::composite::{simulate_session as composite_session, CompositeConfig};
use ids::workload::crossfilter::{simulate_session as xf_session, CrossfilterUi};
use ids::workload::scrolling::simulate_session as scroll_session;
use ids::workload::trace::{RequestRecord, ScrollRecord, SliderRecord, Trace};

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ids-trace-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn scroll_trace_survives_disk_round_trip() {
    let session = scroll_session(0, 99, 400);
    let path = tmp_path("scroll.tsv");
    std::fs::write(&path, session.trace.to_tsv()).expect("write trace");
    let text = std::fs::read_to_string(&path).expect("read trace");
    let restored: Trace<ScrollRecord> = Trace::from_tsv(&text).expect("parse trace");
    assert_eq!(restored, session.trace);
    std::fs::remove_file(&path).ok();
}

#[test]
fn slider_trace_survives_disk_round_trip() {
    let ui = CrossfilterUi::for_road();
    let session = xf_session(DeviceKind::Touch, 0, 99, &ui);
    let path = tmp_path("slider.tsv");
    std::fs::write(&path, session.trace.to_tsv()).expect("write trace");
    let restored: Trace<SliderRecord> =
        Trace::from_tsv(&std::fs::read_to_string(&path).expect("read")).expect("parse");
    assert_eq!(restored, session.trace);
    std::fs::remove_file(&path).ok();
}

#[test]
fn request_trace_survives_disk_round_trip_and_replays() {
    let session = composite_session(
        0,
        99,
        &CompositeConfig {
            min_duration: SimDuration::from_secs(90),
            request_model: None,
        },
    );
    let path = tmp_path("requests.tsv");
    std::fs::write(&path, session.trace.to_tsv()).expect("write trace");
    let restored: Trace<RequestRecord> =
        Trace::from_tsv(&std::fs::read_to_string(&path).expect("read")).expect("parse");
    assert_eq!(restored, session.trace);

    // A restored trace supports the same analysis: request durations from
    // start/end pairs.
    use ids::workload::trace::RequestEvent;
    use std::collections::HashMap;
    let mut starts: HashMap<u64, u64> = HashMap::new();
    let mut durations = Vec::new();
    for r in restored.records() {
        match r.event {
            RequestEvent::RequestStart => {
                starts.insert(r.request_id, r.timestamp_ms);
            }
            RequestEvent::RequestEnd => {
                let t0 = starts[&r.request_id];
                durations.push(r.timestamp_ms - t0);
            }
            _ => {}
        }
    }
    assert!(!durations.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_trace_files_fail_loudly() {
    let path = tmp_path("corrupt.tsv");
    let mut text = ScrollRecord::header_line();
    text.push_str("\n1\t2\tnot_a_number\t4\n");
    std::fs::write(&path, &text).expect("write");
    let result: Result<Trace<ScrollRecord>, _> =
        Trace::from_tsv(&std::fs::read_to_string(&path).expect("read"));
    assert!(result.is_err());
    std::fs::remove_file(&path).ok();
}

trait HeaderLine {
    fn header_line() -> String;
}

impl HeaderLine for ScrollRecord {
    fn header_line() -> String {
        use ids::workload::trace::TraceRecord;
        <ScrollRecord as TraceRecord>::header().to_string()
    }
}
