//! Integration tests for progressive online aggregation and the
//! deadline-mode scheduler, end to end.
//!
//! Two contracts are checked here rather than in any one crate:
//!
//! - **bit determinism** — the `repro --progressive` tradeoff table
//!   renders byte-identically across runs, and across concurrent runs
//!   from 1/2/4/8 threads (no process-global state leaks into the
//!   numbers; the golden snapshot itself lives with the other fixtures
//!   in `crates/bench/tests/golden/`, regenerable via `IDS_BLESS=1`);
//! - **zero cost when disabled** — a replay under a non-deadline policy
//!   never touches the progressive machinery: the rigid resilient
//!   replay is byte-identical to the plain replay, timing for timing
//!   and outcome for outcome.

use ids::engine::scheduler::{IssuedQuery, ReplayScheduler, ResiliencePolicy};
use ids::engine::{Backend, ColumnBuilder, MemBackend, Predicate, Query, TableBuilder};
use ids::experiments::robustness::{self, ProgressiveConfig};
use ids::simclock::SimTime;

fn config() -> ProgressiveConfig {
    ProgressiveConfig::smoke_test()
}

#[test]
fn tradeoff_table_is_byte_deterministic_across_runs() {
    let a = robustness::run_progressive(&config()).render();
    let b = robustness::run_progressive(&config()).render();
    assert_eq!(a, b, "same config, same bytes");
    assert!(a.contains("Progressive deadline tradeoff"));
}

#[test]
fn tradeoff_table_is_identical_across_thread_counts() {
    // The sweep itself is sequential; what concurrency could perturb is
    // the process-global state it leans on (metrics registry, phase
    // tracking). Render the table from 1/2/4/8 threads racing each
    // other and require every copy to match the sequential reference.
    let small = ProgressiveConfig {
        max_groups: 60,
        ..config()
    };
    let reference = robustness::run_progressive(&small).render();
    for threads in [1usize, 2, 4, 8] {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = small;
                std::thread::spawn(move || robustness::run_progressive(&c).render())
            })
            .collect();
        for h in handles {
            let rendered = h.join().expect("sweep thread must not panic");
            assert_eq!(rendered, reference, "at {threads} threads");
        }
    }
}

#[test]
fn deadline_mode_reaches_zero_lcv_in_the_sweep() {
    let report = robustness::run_progressive(&config());
    let fractions = report.deadline_lcv_fractions();
    assert_eq!(
        *fractions.last().unwrap(),
        0.0,
        "the widest budget must be met: {fractions:?}"
    );
    // And the tradeoff is real: some tighter budget produced bounded
    // partial answers rather than violations.
    assert!(report.points.iter().any(|p| p.deadline_partial > 0));
    for p in &report.points {
        assert_eq!(p.bound_violations, 0, "reported bounds must hold");
    }
}

#[test]
fn progressive_machinery_costs_nothing_when_disabled() {
    // A rigid (non-deadline) resilient replay must be byte-identical to
    // the plain replay: same virtual timings, same outcomes, proving the
    // progressive path adds no cost — virtual or otherwise — unless a
    // deadline policy explicitly invokes it.
    let backend = MemBackend::new();
    backend.database().register(
        TableBuilder::new("t")
            .column(
                "x",
                ColumnBuilder::float((0..5_000).map(|i| (i % 173) as f64)),
            )
            .build()
            .unwrap(),
    );
    let stream: Vec<IssuedQuery> = (0..40)
        .map(|i| {
            IssuedQuery::new(
                SimTime::from_millis(5 * i as u64),
                Query::count("t", Predicate::between("x", 10.0, 20.0 + i as f64)),
                i as u64,
            )
        })
        .collect();
    let sched = ReplayScheduler::new(2);
    let plain = sched.replay_with_outcomes(&backend, &stream).unwrap();
    let rigid = sched
        .replay_resilient(&backend, &stream, &ResiliencePolicy::rigid())
        .unwrap();
    assert_eq!(plain.len(), rigid.len());
    for ((ta, oa), (tb, ob)) in plain.iter().zip(&rigid) {
        assert_eq!(ta, tb, "timings identical");
        assert_eq!(oa.result, ob.result, "results identical");
        assert_eq!(oa.cost, ob.cost, "virtual costs identical");
        assert_eq!(oa.quality, ob.quality, "qualities identical");
    }
}
