//! Planner-differential tests: generated `(table, SQL)` pairs where the
//! cost-based planner's execution must match both the unplanned kernel
//! path (`exec::run_query`) — results *and* every footprint counter —
//! and an independent row-at-a-time reference interpreter, including
//! empty, all-NaN, and 1023/1024/1025-row block-boundary tables.

use ids::engine::exec::run_query;
use ids::engine::{
    plan, sql, BinSpec, ColumnBuilder, Database, Predicate, Query, ResultSet, TableBuilder,
};
use proptest::prelude::*;

const WORDS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Raw generated data (the reference interpreter reads this, never the
/// engine's columns).
#[derive(Debug, Clone)]
struct Raw {
    x: Vec<f64>,
    k: Vec<i64>,
    s: Vec<usize>,
}

fn register(db: &Database, raw: &Raw) {
    db.register(
        TableBuilder::new("t")
            .column("x", ColumnBuilder::float(raw.x.iter().copied()))
            .column("k", ColumnBuilder::int(raw.k.iter().copied()))
            .column("s", ColumnBuilder::str(raw.s.iter().map(|&w| WORDS[w])))
            .build()
            .expect("static schema"),
    );
}

/// One generated conjunct: its SQL spelling and its row-at-a-time
/// meaning over `(x, k, s)`.
#[derive(Debug, Clone)]
enum Conjunct {
    XCmp(usize, f64),
    XBetween(f64, f64),
    KCmp(usize, i64),
    SEq(usize),
}

const OPS: [&str; 6] = [">=", "<=", ">", "<", "=", "<>"];

impl Conjunct {
    fn sql(&self) -> String {
        match self {
            Conjunct::XCmp(op, v) => format!("x {} {}", OPS[*op], v),
            Conjunct::XBetween(lo, hi) => format!("x BETWEEN {lo} AND {hi}"),
            Conjunct::KCmp(op, v) => format!("k {} {}", OPS[*op], v),
            Conjunct::SEq(w) => format!("s = '{}'", WORDS[*w]),
        }
    }

    fn eval(&self, x: f64, k: i64, s: usize) -> bool {
        fn cmp(a: f64, op: usize, b: f64) -> bool {
            match op {
                0 => a >= b,
                1 => a <= b,
                2 => a > b,
                3 => a < b,
                4 => a == b,
                _ => a != b,
            }
        }
        match self {
            Conjunct::XCmp(op, v) => cmp(x, *op, *v),
            Conjunct::XBetween(lo, hi) => x >= *lo && x <= *hi,
            Conjunct::KCmp(op, v) => cmp(k as f64, *op, *v as f64),
            Conjunct::SEq(w) => s == *w,
        }
    }
}

fn where_clause(conjuncts: &[Conjunct]) -> String {
    if conjuncts.is_empty() {
        String::new()
    } else {
        format!(
            " WHERE {}",
            conjuncts
                .iter()
                .map(Conjunct::sql)
                .collect::<Vec<_>>()
                .join(" AND ")
        )
    }
}

fn matching(raw: &Raw, conjuncts: &[Conjunct]) -> Vec<usize> {
    (0..raw.x.len())
        .filter(|&i| {
            conjuncts
                .iter()
                .all(|c| c.eval(raw.x[i], raw.k[i], raw.s[i]))
        })
        .collect()
}

/// Reference histogram: ROUND binning with the top-bin clamp, NaN and
/// out-of-domain rows skipped — mirroring `BinSpec::bin_of`.
fn reference_histogram(raw: &Raw, keep: &[usize], lo: f64, hi: f64, bins: usize) -> Vec<u64> {
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0u64; bins + 1];
    for &i in keep {
        let x = raw.x[i];
        if x.is_nan() || x < lo || x > hi {
            continue;
        }
        counts[(((x - lo) / width).round() as usize).min(bins)] += 1;
    }
    counts
}

/// Runs one SQL statement three ways — planned, unplanned, and against
/// a supplied reference result — and demands exact agreement plus plan
/// replay-stability.
fn check(raw: &Raw, statement: &str, reference: ResultSet) -> Result<(), TestCaseError> {
    let db = Database::new();
    register(&db, raw);
    let query = sql::parse(statement)
        .map_err(|e| TestCaseError::fail(format!("`{statement}` failed to parse: {e}")))?;
    let p = plan(&db, &query)
        .map_err(|e| TestCaseError::fail(format!("`{statement}` failed to plan: {e}")))?;
    let planned = p
        .execute(&db)
        .map_err(|e| TestCaseError::fail(format!("`{statement}` failed planned: {e}")))?;
    let (result, footprint) = run_query(&db, &query)
        .map_err(|e| TestCaseError::fail(format!("`{statement}` failed unplanned: {e}")))?;
    prop_assert_eq!(
        &planned.result,
        &result,
        "planned != unplanned: {}",
        statement
    );
    prop_assert_eq!(
        &planned.footprint,
        &footprint,
        "footprint drift: {}",
        statement
    );
    prop_assert_eq!(
        &planned.result,
        &reference,
        "planned != reference: {}",
        statement
    );
    prop_assert_eq!(p.explain(), plan(&db, &query).unwrap().explain());
    Ok(())
}

/// Raw-row sample: `(nan_die, x, k, word)` — `nan_die == 0` makes the
/// float NaN (a 1-in-5 chance), exercising NaN comparison semantics.
type RawTuple = (usize, f64, i64, usize);

type RawTupleStrategy = prop::collection::VecStrategy<(
    std::ops::Range<usize>,
    std::ops::Range<f64>,
    std::ops::Range<i64>,
    std::ops::Range<usize>,
)>;

fn raw_strategy(max_rows: usize) -> RawTupleStrategy {
    prop::collection::vec(
        (0usize..5, -100.0f64..100.0, 0i64..12, 0usize..WORDS.len()),
        0..max_rows,
    )
}

fn build_raw(rows: &[RawTuple]) -> Raw {
    Raw {
        x: rows
            .iter()
            .map(|r| if r.0 == 0 { f64::NAN } else { r.1 })
            .collect(),
        k: rows.iter().map(|r| r.2).collect(),
        s: rows.iter().map(|r| r.3).collect(),
    }
}

/// Conjunct sample: `(kind, op, f1, f2, int_lit, word)`.
type ConjTuple = (usize, usize, f64, f64, i64, usize);

type ConjTupleStrategy = prop::collection::VecStrategy<(
    std::ops::Range<usize>,
    std::ops::Range<usize>,
    std::ops::Range<f64>,
    std::ops::Range<f64>,
    std::ops::Range<i64>,
    std::ops::Range<usize>,
)>;

fn conjunct_strategy() -> ConjTupleStrategy {
    prop::collection::vec(
        (
            0usize..4,
            0usize..OPS.len(),
            -60.0f64..60.0,
            -60.0f64..60.0,
            -2i64..14,
            0usize..WORDS.len(),
        ),
        0..4,
    )
}

fn build_conjuncts(samples: &[ConjTuple]) -> Vec<Conjunct> {
    samples
        .iter()
        .map(|&(kind, op, f1, f2, ki, w)| match kind {
            0 => Conjunct::XCmp(op, f1),
            1 => Conjunct::XBetween(f1, f2),
            2 => Conjunct::KCmp(op, ki),
            _ => Conjunct::SEq(w),
        })
        .collect()
}

proptest! {
    /// COUNT(*) with a generated WHERE: planned == unplanned ==
    /// row-at-a-time reference.
    #[test]
    fn planned_count_matches_reference(
        raw_rows in raw_strategy(600),
        conj_rows in conjunct_strategy(),
    ) {
        let raw = build_raw(&raw_rows);
        let conjuncts = build_conjuncts(&conj_rows);
        let statement = format!("SELECT COUNT(*) FROM t{}", where_clause(&conjuncts));
        let expected = ResultSet::Count(matching(&raw, &conjuncts).len() as u64);
        check(&raw, &statement, expected)?;
    }

    /// Paginated SELECT * with a generated WHERE: planned row ids equal
    /// the reference's page of matching rows, in order.
    #[test]
    fn planned_select_matches_reference(
        raw_rows in raw_strategy(400),
        conj_rows in conjunct_strategy(),
        limit in 1usize..50,
        offset in 0usize..60,
    ) {
        let raw = build_raw(&raw_rows);
        let conjuncts = build_conjuncts(&conj_rows);
        let statement = format!(
            "SELECT k FROM t{} LIMIT {limit} OFFSET {offset}",
            where_clause(&conjuncts)
        );
        let keep = matching(&raw, &conjuncts);
        let end = (offset + limit).min(keep.len());
        let rows = keep[offset.min(end)..end]
            .iter()
            .map(|&i| vec![ids::engine::Value::Int(raw.k[i])])
            .collect();
        check(&raw, &statement, ResultSet::Rows(rows))?;
    }

    /// Filtered HISTOGRAM with generated bins: planned counts equal the
    /// reference binning (ROUND semantics, NaN skipped).
    #[test]
    fn planned_histogram_matches_reference(
        raw_rows in raw_strategy(1400),
        conj_rows in conjunct_strategy(),
        bins in 1usize..24,
        lo in -80.0f64..0.0,
        width in 1.0f64..160.0,
    ) {
        let raw = build_raw(&raw_rows);
        let conjuncts = build_conjuncts(&conj_rows);
        let hi = lo + width;
        let statement = format!(
            "SELECT HISTOGRAM(x, {lo}, {hi}, {bins}), COUNT(*) FROM t{} GROUP BY 1 ORDER BY 1",
            where_clause(&conjuncts)
        );
        let keep = matching(&raw, &conjuncts);
        let expected = ResultSet::Histogram(ids::engine::Histogram::from_counts(
            reference_histogram(&raw, &keep, lo, hi, bins),
        ));
        check(&raw, &statement, expected)?;
    }
}

/// Deterministic block-boundary battery: 0, 1, 1023, 1024, 1025 rows and
/// an all-NaN table, across every query shape the planner handles.
#[test]
fn block_boundary_and_all_nan_tables() {
    for rows in [0usize, 1, 1023, 1024, 1025] {
        for nan in [false, true] {
            let raw = Raw {
                x: (0..rows)
                    .map(|i| if nan { f64::NAN } else { (i % 700) as f64 })
                    .collect(),
                k: (0..rows).map(|i| (i % 9) as i64).collect(),
                s: (0..rows).map(|i| i % WORDS.len()).collect(),
            };
            let db = Database::new();
            register(&db, &raw);
            let queries = [
                Query::count("t", Predicate::between("x", 100.0, 500.0)),
                Query::count("t", Predicate::True),
                Query::select("t", vec![], Predicate::ge("x", 650.0), Some(7), 3),
                Query::histogram(
                    "t",
                    BinSpec::new("x", 0.0, 700.0, 14),
                    Predicate::and([Predicate::le("k", 5.0), Predicate::ge("x", 50.0)]),
                ),
            ];
            for q in &queries {
                let planned = plan(&db, q).unwrap().execute(&db).unwrap();
                let (result, footprint) = run_query(&db, q).unwrap();
                assert_eq!(planned.result, result, "rows={rows} nan={nan} {q}");
                assert_eq!(planned.footprint, footprint, "rows={rows} nan={nan} {q}");
            }
        }
    }
}

/// The paper's case-study SQL plans identically and executes
/// byte-identically at 1, 2, 4, and 8 threads, with thread-invariant
/// EXPLAIN text.
#[test]
fn case_study_sql_is_thread_stable() {
    use ids::workload::datasets;
    let db = Database::new();
    db.register(datasets::road_network_sized(1, 50_000));
    let q = sql::parse(
        "SELECT HISTOGRAM(y, 56.582, 57.774, 20), COUNT(*) FROM dataroad \
         WHERE x >= 8.146 AND x <= 11.2616367163 \
           AND y >= 56.582 AND y <= 57.774 \
           AND z >= -8.608 AND z <= 137.361 \
         GROUP BY 1 ORDER BY 1",
    )
    .expect("case-study SQL parses");
    let p = plan(&db, &q).expect("plans");
    let text = p.explain();
    let base = p.execute_with_threads(&db, 1).expect("executes");
    for threads in [2usize, 4, 8] {
        let out = p.execute_with_threads(&db, threads).expect("executes");
        assert_eq!(out.result, base.result, "{threads} threads");
        assert_eq!(out.footprint, base.footprint, "{threads} threads");
        assert_eq!(p.explain(), text, "plan text after {threads}-thread run");
    }
    let (result, footprint) = run_query(&db, &q).expect("unplanned");
    assert_eq!(base.result, result);
    assert_eq!(base.footprint, footprint);
}
