//! Fault-matrix integration tests: the determinism contract of the
//! chaos layer, end to end.
//!
//! Two guarantees are checked here rather than in any one crate's unit
//! tests because they span the whole pipeline:
//!
//! - **thread-count invariance** — `execute_batch` over a fault-injected
//!   backend returns identical outcome vectors at 1/2/4/8 threads (the
//!   plan decides faults from `(virtual time, query fingerprint,
//!   attempt)`, never from scheduling order);
//! - **bit determinism** — a seeded robustness sweep replays
//!   byte-identically: same rendered table, same metrics snapshot, same
//!   exported trace.

use ids::chaos::{ChaosBackend, FaultPlan};
use ids::engine::distributed::Cluster;
use ids::engine::parallel::execute_batch;
use ids::engine::scheduler::{IssuedQuery, ReplayScheduler, ResiliencePolicy};
use ids::engine::{
    Backend, ColumnBuilder, Database, MemBackend, Predicate, Query, ResultQuality, RetryPolicy,
    RetryingBackend, TableBuilder,
};
use ids::experiments::robustness::{self, RobustnessConfig};
use ids::simclock::{SimDuration, SimTime};

/// The chaos clock (`ids::obs::set_vnow`) and the metrics/trace
/// registries are process-global; tests touching them must not
/// interleave.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn backend(rows: usize) -> MemBackend {
    let b = MemBackend::new();
    b.database().register(
        TableBuilder::new("t")
            .column("x", ColumnBuilder::float((0..rows).map(|i| i as f64)))
            .build()
            .unwrap(),
    );
    b
}

/// Distinct queries (distinct fingerprints), so per-query attempt
/// counters stay independent of execution order.
fn distinct_queries(n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| Query::count("t", Predicate::between("x", 0.0, 10.0 + i as f64)))
        .collect()
}

#[test]
fn batch_outcomes_identical_across_thread_counts_under_faults() {
    let _g = obs_lock();
    let inner = backend(2_000);
    let queries = distinct_queries(40);
    // A storm with spikes, stalls, and transient failures all active;
    // CI sweeps the intensity via IDS_CHAOS_INTENSITY (full strength by
    // default). Buffer-pressure windows are inert without a disk target —
    // pool state is the one deliberately order-dependent fault.
    let plan = FaultPlan::from_env(17, SimDuration::from_secs(60), 1.0);
    assert!(plan.failure_rate() > 0.0, "failures must be in play");
    // Pin the clock inside the storm so time-keyed windows are active.
    let spike_at = plan.windows()[0].start;
    ids::obs::set_vnow(spike_at);

    let run = |threads: usize| {
        // Fresh injector per run: attempt counters restart, so every
        // thread count sees the same injection decisions.
        let chaos = ChaosBackend::new(&inner, plan.clone());
        let retrying = RetryingBackend::new(&chaos, RetryPolicy::interactive());
        execute_batch(&retrying, &queries, threads)
            .expect("retries absorb this seed's transient failures")
    };

    let reference = run(1);
    assert_eq!(reference.len(), queries.len());
    for threads in [2, 4, 8] {
        let outcomes = run(threads);
        assert_eq!(outcomes.len(), reference.len());
        for (i, (a, b)) in reference.iter().zip(&outcomes).enumerate() {
            assert_eq!(a.result, b.result, "query {i} answer at {threads} threads");
            assert_eq!(a.cost, b.cost, "query {i} cost at {threads} threads");
            assert_eq!(
                a.quality, b.quality,
                "query {i} quality at {threads} threads"
            );
        }
    }
}

#[test]
fn resilient_replay_is_reproducible() {
    let _g = obs_lock();
    let inner = backend(5_000);
    let stream: Vec<IssuedQuery> = distinct_queries(60)
        .into_iter()
        .enumerate()
        .map(|(i, q)| IssuedQuery::new(SimTime::from_millis(20 * i as u64), q, i as u64))
        .collect();
    let plan = FaultPlan::storm(23, 0.8, SimDuration::from_millis(20 * 60));
    let sched = ReplayScheduler::new(2);
    let policy = ResiliencePolicy::degrade_after(SimDuration::from_millis(40));

    let run = || {
        let chaos = ChaosBackend::new(&inner, plan.clone());
        let retrying = RetryingBackend::new(&chaos, RetryPolicy::interactive());
        sched
            .replay_resilient(&retrying, &stream, &policy)
            .expect("resilient replay absorbs storms")
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for ((ta, oa), (tb, ob)) in a.iter().zip(&b) {
        assert_eq!(ta, tb, "timings replay identically");
        assert_eq!(oa.result, ob.result);
        assert_eq!(oa.cost, ob.cost);
        assert_eq!(oa.quality, ob.quality);
    }
}

#[test]
fn node_loss_routes_to_replicas_and_stays_exact() {
    // No obs lock needed: the cluster layer never reads the chaos clock.
    let db = Database::new();
    db.register(
        TableBuilder::new("t")
            .column("x", ColumnBuilder::float((0..4_000).map(|i| i as f64)))
            .build()
            .unwrap(),
    );
    // 4 shards × 2 replicas, striped: shard s lives on nodes s and s+4.
    let cluster = Cluster::partition_replicated(&db, 4, 2).unwrap();
    let q = Query::count("t", Predicate::True);

    let plan = FaultPlan::builder(11).lose_node(2).build();
    assert!(plan.node_lost(2) && !plan.node_lost(0));
    let full = cluster.execute(&q).unwrap();
    assert_eq!(full.quality, ResultQuality::Exact);

    // Losing one copy of shard 2 changes nothing: the surviving replica
    // answers and the result stays exact — no extrapolated estimate.
    let lossy = cluster.execute_excluding(&q, plan.lost_nodes()).unwrap();
    assert_eq!(lossy.quality, ResultQuality::Exact);
    assert_eq!(lossy.result, full.result);
    assert_eq!(lossy.result.scalar_count(), Some(4_000));

    // Losing *both* copies of a shard is a typed, transient error — the
    // plan refuses to answer rather than extrapolating from survivors.
    let both = FaultPlan::builder(11).lose_node(2).lose_node(6).build();
    let err = cluster
        .execute_excluding(&q, both.lost_nodes())
        .unwrap_err();
    assert_eq!(
        err,
        ids::engine::EngineError::ShardUnavailable {
            shard: 2,
            replicas: 2
        }
    );
    assert!(err.is_transient(), "lost nodes recover; retries may help");
}

#[test]
fn robustness_sweep_is_bit_deterministic() {
    let _g = obs_lock();
    let config = RobustnessConfig {
        seed: 83,
        rows: 2_000,
        max_groups: 80,
        intensities: [0.0, 0.33, 0.67, 1.0],
        latency_budget: SimDuration::from_millis(100),
        workers: 2,
    };

    let capture = || {
        ids::obs::reset_all();
        ids::obs::enable();
        let report = robustness::run(&config);
        let rec = ids::obs::recorder();
        let trace = ids::obs::chrome_trace_json(&rec.events(), &rec.tracks());
        let metrics = ids::obs::metrics_tsv(&ids::obs::metrics().snapshot());
        ids::obs::disable();
        ids::obs::reset_all();
        (report.render(), metrics, trace)
    };

    let (render_a, metrics_a, trace_a) = capture();
    let (render_b, metrics_b, trace_b) = capture();
    assert_eq!(render_a, render_b, "rendered table is byte-identical");
    assert_eq!(metrics_a, metrics_b, "metrics snapshot is byte-identical");
    assert_eq!(trace_a, trace_b, "exported trace is byte-identical");
    assert!(render_a.contains("Robustness under injected faults"));
    assert!(
        trace_a.contains("chaos") || trace_a.contains("resilience"),
        "fault events appear in the trace"
    );
}
