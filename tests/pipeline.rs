//! Cross-crate integration tests: the full case-study pipelines at
//! reduced scale, exercising workload → engine → optimizer → metrics
//! through the public facade.

use ids::devices::DeviceKind;
use ids::engine::{Backend, Database, DiskBackend, MemBackend, Predicate, Query};
use ids::experiments::{case1, case2, case3};
use ids::metrics::Metric;
use ids::opt::klfilter::{replay_kl, HistogramSketch};
use ids::opt::skip::{replay_raw, replay_skip};
use ids::simclock::SimDuration;
use ids::workload::crossfilter::{compile_query_groups, simulate_session, CrossfilterUi};
use ids::workload::datasets;

#[test]
fn case1_pipeline_reproduces_paper_shapes() {
    let report = case1::run(&case1::Case1Config::smoke_test());
    // Fig 7: two orders of magnitude between inertial and plain deltas.
    let (inertial, plain) = report.fig7_peaks;
    assert!(inertial / plain > 30.0);
    // Table 8 shape: event fetch violates for ~every user at every size,
    // timer fetch recovers with larger chunks.
    let last_timer = report.timer.last().unwrap();
    let first_timer = report.timer.first().unwrap();
    assert!(last_timer.total_violations <= first_timer.total_violations);
    assert!(report
        .event
        .iter()
        .all(|p| p.violating_users >= report.config.users - 1));
}

#[test]
fn case2_pipeline_reproduces_paper_shapes() {
    let report = case2::run(&case2::Case2Config::smoke_test());
    // Fig 13: the mem backend is interactive under every strategy.
    for device in case2::DEVICES {
        for opt in case2::OPTS {
            let c = report.condition("mem", opt, device).unwrap();
            assert!(
                c.median_latency_ms() < 100.0,
                "mem {opt} {device}: {}",
                c.median_latency_ms()
            );
        }
    }
    // Fig 15: raw disk violates massively; optimizations help.
    let disk_raw = report.lcv_fraction("disk", "raw").unwrap();
    assert!(disk_raw > 0.8);
    assert!(report.lcv_fraction("disk", "skip").unwrap() < disk_raw);
    assert!(report.lcv_fraction("disk", "kl>0.2").unwrap() < disk_raw);
    // Mem raw violates some but far less; KL>0 roughly halves it.
    let mem_raw = report.lcv_fraction("mem", "raw").unwrap();
    let mem_kl0 = report.lcv_fraction("mem", "kl>0").unwrap();
    assert!(mem_raw < disk_raw);
    assert!(mem_kl0 < mem_raw, "KL>0 should cut mem violations");
}

#[test]
fn case3_pipeline_reproduces_paper_shapes() {
    let report = case3::run(&case3::Case3Config::smoke_test());
    let map_share = report
        .widget_pct
        .iter()
        .find(|&&(w, _)| w == ids::workload::composite::Widget::Map)
        .unwrap()
        .1;
    assert!(map_share > 45.0, "map dominates: {map_share:.1}%");
    assert!(report.prefetchable_queries() > 5.0);
    let (markov, demand) = report.tile_hit_rates;
    assert!(markov >= demand);
}

#[test]
fn shared_database_backends_agree_on_answers() {
    let db = Database::new();
    db.register(datasets::road_network_sized(5, 30_000));
    let disk = DiskBackend::over(db.clone());
    let mem = MemBackend::over(db);

    let ui = CrossfilterUi::for_road();
    let session = simulate_session(DeviceKind::Touch, 0, 5, &ui);
    let mut groups = compile_query_groups(&ui, &session.trace);
    groups.truncate(20);
    for g in &groups {
        for q in &g.queries {
            let a = disk.execute(q).expect("disk");
            let b = mem.execute(q).expect("mem");
            assert_eq!(a.result, b.result, "backends disagree on {q}");
            assert!(a.cost > b.cost, "disk must charge more virtual time");
        }
    }
}

#[test]
fn optimizations_never_change_executed_results() {
    // The KL filter drops queries but executed ones must be exact.
    let db = Database::new();
    let road = datasets::road_network_sized(9, 20_000);
    db.register(road.clone());
    let mem = MemBackend::over(db);
    let ui = CrossfilterUi::for_road();
    let session = simulate_session(DeviceKind::Mouse, 1, 9, &ui);
    let mut groups = compile_query_groups(&ui, &session.trace);
    groups.truncate(60);

    let sketch = HistogramSketch::new(road, 1_500, 9);
    let raw = replay_raw(&mem, &groups).expect("raw");
    let kl = replay_kl(&mem, &groups, &sketch, 0.2).expect("kl");
    let skip = replay_skip(&mem, &groups).expect("skip");

    // Executed sets are subsets of the issued stream.
    assert!(kl.executed().len() <= raw.executed().len());
    assert!(skip.executed().len() <= raw.executed().len());
    // Every executed group's timing is within the raw stream's bounds.
    for t in kl.executed() {
        assert!(t.finished_at >= t.started_at);
        assert!(t.started_at >= t.issued_at);
    }
}

#[test]
fn end_to_end_metric_plan_for_each_case_study() {
    use ids::metrics::selection::{recommend, SystemTraits};
    // Case study 2's traits must yield both novel metrics.
    let plan = recommend(&SystemTraits {
        bursty_queries: true,
        high_frame_rate_device: true,
        large_data: true,
        ..SystemTraits::default()
    });
    assert!(plan.contains(&Metric::LatencyConstraintViolation));
    assert!(plan.contains(&Metric::QueryIssuingFrequency));
    // Case study 1 (task-based browsing): latency always included.
    let plan1 = recommend(&SystemTraits {
        task_based: true,
        bursty_queries: true,
        ..SystemTraits::default()
    });
    assert!(plan1.contains(&Metric::Latency));
    assert!(plan1.contains(&Metric::TaskCompletionTime));
}

#[test]
fn registry_artifacts_match_experiment_renderers() {
    use ids::registry::{find, ArtifactKind};
    // Every case-study artifact the registry claims is regenerable
    // actually renders non-trivially.
    let c1 = case1::run(&case1::Case1Config::smoke_test());
    let c3 = case3::run(&case3::Case3Config::smoke_test());
    for (num, text) in [
        ("7", c1.render_table7()),
        ("8", c1.render_table8()),
        ("9", c3.render_table9()),
        ("10", c3.render_table10()),
    ] {
        assert!(find(ArtifactKind::Table, num).is_some());
        assert!(text.lines().count() >= 3, "table {num} renders");
    }
}

#[test]
fn virtual_time_is_wall_clock_independent() {
    // Two runs of the same experiment produce byte-identical latency
    // numbers even though wall time differs.
    let a = case2::run(&case2::Case2Config::smoke_test());
    std::thread::sleep(std::time::Duration::from_millis(50));
    let b = case2::run(&case2::Case2Config::smoke_test());
    for (x, y) in a.conditions.iter().zip(b.conditions.iter()) {
        assert_eq!(x.latency_series, y.latency_series);
        assert_eq!(x.lcv_fraction, y.lcv_fraction);
    }
}

#[test]
fn disk_cost_scales_with_data_size() {
    // Scalability sanity: double the rows, roughly double the scan cost.
    let cost_at = |rows: usize| {
        let disk = DiskBackend::new();
        disk.database()
            .register(datasets::road_network_sized(3, rows));
        let q = Query::count("dataroad", Predicate::True);
        disk.execute(&q).expect("warm");
        disk.execute(&q).expect("measure").cost
    };
    let small = cost_at(20_000);
    let large = cost_at(80_000);
    let ratio = large.as_secs_f64() / small.as_secs_f64();
    assert!((2.5..6.0).contains(&ratio), "ratio {ratio:.2}");
    assert!(small > SimDuration::from_millis(1));
}
