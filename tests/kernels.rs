//! Kernel-equivalence test tier.
//!
//! The vectorized kernels (`ids::engine::kernels`: selection-vector
//! predicate evaluation, zone-map pruning, fused filter+bin) must agree
//! **bucket-for-bucket** with row-at-a-time evaluation on adversarial
//! tables: empty, single-row, all-NaN measures, all-filtered ranges,
//! duplicate dictionary codes, and sizes straddling the 1024-row
//! zone-map block boundary.
//!
//! Two layers of checking:
//! - `differential_check` pits the full engine (now kernel-backed)
//!   against `ids::simtest::reference`'s independent row-at-a-time
//!   interpreter over a query battery covering every filter shape.
//! - Direct tests compare `kernels::select_vector` with a per-row
//!   `Predicate::matches` loop on hand-built tables with infinities,
//!   NaNs, and block-boundary values.

use ids::engine::kernels::{self, KernelOptions, KernelStats};
use ids::engine::{exec, BinSpec, CmpOp, ColumnBuilder, Predicate, Table, TableBuilder, Value};
use ids::simtest::reference::differential_check;
use ids::simtest::scenario::{CmpToken, FilterSpec, QuerySpec, TableSpec};

/// Every filter shape the differential grammar knows, including an
/// empty range (all rows filtered) and duplicate-heavy comparisons,
/// crossed with counts, histograms, paginated selects, and joins.
fn query_battery() -> Vec<QuerySpec> {
    let filters = [
        FilterSpec::True,
        FilterSpec::VBetween { lo: 20.0, hi: 80.0 },
        // Inverted bounds: an empty range — every row filtered out.
        FilterSpec::VBetween { lo: 60.0, hi: 40.0 },
        FilterSpec::KCmp {
            op: CmpToken::Eq,
            value: 3,
        },
        FilterSpec::KCmp {
            op: CmpToken::Ne,
            value: 0,
        },
        FilterSpec::KCmp {
            op: CmpToken::Lt,
            value: 5,
        },
        FilterSpec::KCmp {
            op: CmpToken::Le,
            value: 2,
        },
        FilterSpec::KCmp {
            op: CmpToken::Gt,
            value: 6,
        },
        FilterSpec::KCmp {
            op: CmpToken::Ge,
            value: 7,
        },
        FilterSpec::SEq { word: 2 },
        FilterSpec::VkAnd {
            vlo: 10.0,
            vhi: 90.0,
            klo: 1.0,
            khi: 6.0,
        },
        FilterSpec::NotV { lo: 25.0, hi: 75.0 },
    ];
    let mut qs = Vec::new();
    for f in filters {
        qs.push(QuerySpec::Count { filter: f });
        qs.push(QuerySpec::Histogram {
            bins: 16,
            lo: 0.0,
            hi: 100.0,
            filter: f,
        });
        qs.push(QuerySpec::Select {
            filter: f,
            limit: 7,
            offset: 3,
        });
    }
    qs.push(QuerySpec::Join {
        limit: 0,
        offset: 0,
    });
    qs.push(QuerySpec::Join {
        limit: 5,
        offset: 2,
    });
    qs
}

fn check(seed: u64, spec: TableSpec) {
    differential_check(seed, &spec, &query_battery()).unwrap_or_else(|e| panic!("{spec:?}: {e}"));
}

#[test]
fn kernels_match_reference_on_block_boundary_sizes() {
    // Sizes straddling the selection-word (64) and zone-block (1024)
    // boundaries, plus empty and single-row tables.
    for rows in [0, 1, 2, 63, 64, 65, 1023, 1024, 1025, 2500] {
        check(
            11,
            TableSpec {
                rows,
                key_mod: 8,
                nan_every: 7,
                dim_rows: 16,
            },
        );
    }
}

#[test]
fn kernels_match_reference_on_all_nan_measure() {
    // nan_every = 1 makes the whole `v` column NaN — the all-null
    // stand-in. Every ordered comparison must fail, `!=` must pass.
    for rows in [1, 64, 1024, 1500] {
        check(
            13,
            TableSpec {
                rows,
                key_mod: 4,
                nan_every: 1,
                dim_rows: 8,
            },
        );
    }
}

#[test]
fn kernels_match_reference_on_duplicate_dictionary_codes() {
    // key_mod = 1 collapses the key column to a single value, and 2500
    // rows cycle the small string vocabulary many times over — heavy
    // duplication in both the int keys and the dictionary codes.
    for key_mod in [1, 2] {
        check(
            17,
            TableSpec {
                rows: 2500,
                key_mod,
                nan_every: 0,
                dim_rows: 32,
            },
        );
    }
}

#[test]
fn kernels_match_reference_across_seeds() {
    for seed in 0..8u64 {
        check(
            seed,
            TableSpec {
                rows: 1025,
                key_mod: 5,
                nan_every: 11,
                dim_rows: 12,
            },
        );
    }
}

// ---- direct selection-vector vs `Predicate::matches` comparisons ----

/// A table whose float column exercises infinities, NaN, and values
/// sitting exactly on bin and block boundaries.
fn adversarial_table(rows: usize) -> Table {
    let xs = (0..rows).map(|i| match i % 7 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => (i % 1024) as f64,
        5 => -((i % 100) as f64) / 3.0,
        _ => (i as f64) / 10.0,
    });
    let strs = (0..rows).map(|i| ["alpha", "beta", "gamma"][i % 3]);
    TableBuilder::new("adv")
        .column("x", ColumnBuilder::float(xs))
        .column("n", ColumnBuilder::int((0..rows).map(|i| (i % 5) as i64)))
        .column("s", ColumnBuilder::str(strs))
        .build()
        .expect("static schema")
}

fn predicate_battery() -> Vec<Predicate> {
    let mut preds = vec![
        Predicate::True,
        Predicate::between("x", 0.0, 50.0),
        Predicate::between("x", 50.0, 0.0), // empty range
        Predicate::between("x", f64::NEG_INFINITY, f64::INFINITY),
        Predicate::eq("s", "beta"),
        Predicate::eq("s", "missing-from-dictionary"),
        Predicate::eq("n", 3i64),
        Predicate::eq("x", 2.5),
        // Cross-type: string literal against a numeric column.
        Predicate::eq("x", "not-a-number"),
        Predicate::ge("x", 10.0),
        Predicate::le("n", 2.0),
        Predicate::and([
            Predicate::between("x", -20.0, 100.0),
            Predicate::eq("n", 1i64),
        ]),
        Predicate::Or(vec![Predicate::eq("s", "alpha"), Predicate::ge("x", 90.0)]),
        Predicate::Not(Box::new(Predicate::between("x", 0.0, 10.0))),
        // NaN literal: false for every row under every op but `!=`.
        Predicate::Cmp {
            column: "x".into(),
            op: CmpOp::Lt,
            value: Value::Float(f64::NAN),
        },
        Predicate::Cmp {
            column: "x".into(),
            op: CmpOp::Ne,
            value: Value::Float(f64::NAN),
        },
    ];
    for op in [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ] {
        preds.push(Predicate::Cmp {
            column: "x".into(),
            op,
            value: Value::Float(0.0),
        });
        preds.push(Predicate::Cmp {
            column: "n".into(),
            op,
            value: Value::Int(2),
        });
    }
    preds
}

#[test]
fn selection_vector_matches_rowwise_on_adversarial_tables() {
    for rows in [0, 1, 63, 64, 65, 1023, 1024, 1025, 3000] {
        let t = adversarial_table(rows);
        for pred in predicate_battery() {
            let sel = kernels::select_vector(&t, &pred)
                .unwrap_or_else(|e| panic!("{rows} rows, {pred:?}: {e}"));
            let expect: Vec<usize> = (0..rows)
                .filter(|&r| pred.matches(&t, r).expect("valid predicate"))
                .collect();
            assert_eq!(
                sel.to_row_ids(),
                expect,
                "{rows} rows, {pred:?}: selection diverged"
            );
            assert_eq!(sel.count(), expect.len());
        }
    }
}

#[test]
fn histograms_match_rowwise_bucket_for_bucket_on_adversarial_tables() {
    for rows in [0, 1, 1023, 1024, 1025, 3000] {
        let t = adversarial_table(rows);
        let bins = BinSpec::new("x", -30.0, 120.0, 25);
        for pred in predicate_battery() {
            let (rs, _) = exec::run_histogram(&t, &bins, &pred)
                .unwrap_or_else(|e| panic!("{rows} rows, {pred:?}: {e}"));
            let hist = rs.histogram().expect("histogram result");
            let col = t.column("x").expect("x exists");
            let mut manual = vec![0u64; bins.bucket_count()];
            for r in 0..rows {
                if pred.matches(&t, r).expect("valid predicate") {
                    if let Some(b) = col.f64_at(r).and_then(|x| bins.bin_of(x)) {
                        manual[b] += 1;
                    }
                }
            }
            assert_eq!(
                hist.counts(),
                &manual[..],
                "{rows} rows, {pred:?}: buckets diverged"
            );
        }
    }
}

#[test]
fn zone_pruning_is_invisible_on_adversarial_tables() {
    // Kernel results must be identical with pruning disabled — pruning
    // may only skip work, never change an answer.
    let on = KernelOptions { zone_prune: true };
    let off = KernelOptions { zone_prune: false };
    for rows in [1, 1024, 1025, 3000] {
        let t = adversarial_table(rows);
        for pred in predicate_battery() {
            let mut s1 = KernelStats::default();
            let mut s2 = KernelStats::default();
            let a = kernels::select_vector_with(&t, &pred, &on, &mut s1).expect("valid");
            let b = kernels::select_vector_with(&t, &pred, &off, &mut s2).expect("valid");
            assert_eq!(
                a.to_row_ids(),
                b.to_row_ids(),
                "{rows} rows, {pred:?}: pruning changed the selection"
            );
            assert_eq!(s2.blocks_pruned, 0, "pruning disabled but blocks pruned");
        }
    }
}

#[test]
fn empty_and_single_row_tables_bin_correctly() {
    let empty = TableBuilder::new("e")
        .column("x", ColumnBuilder::float(std::iter::empty::<f64>()))
        .build()
        .expect("empty table");
    let bins = BinSpec::new("x", 0.0, 10.0, 5);
    let (rs, fp) = exec::run_histogram(&empty, &bins, &Predicate::True).expect("empty ok");
    assert_eq!(rs.histogram().expect("histogram").total(), 0);
    assert_eq!(fp.rows_matched, 0);

    let single = TableBuilder::new("s1")
        .column("x", ColumnBuilder::float([7.0]))
        .build()
        .expect("single row");
    let (rs, _) = exec::run_histogram(&single, &bins, &Predicate::True).expect("single ok");
    let h = rs.histogram().expect("histogram");
    assert_eq!(h.total(), 1);
    // 7.0 over [0, 10] with 5 bins of width 2 rounds to bucket 4.
    assert_eq!(h.counts()[4], 1);
}
