//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the API surface the workspace consumes: `StdRng`
//! seeded from a `u64`, the `RngCore`/`SeedableRng`/`Rng` traits, `gen`
//! for primitive types, and `gen_range` over half-open integer and float
//! ranges.
//!
//! `StdRng` is a faithful reimplementation of rand 0.8's generator —
//! ChaCha12 with `rand_core`'s PCG-based `seed_from_u64`, the 4-block
//! `BlockRng` output buffer, and the widening-multiply `gen_range`
//! rejection loop — so seeded streams are **bit-identical** to upstream.
//! Every calibrated constant in this repository's tests was tuned against
//! upstream `StdRng`; stream equality is what keeps them valid.

pub mod rngs {
    /// Number of `u32` results buffered per refill (4 ChaCha blocks),
    /// matching rand_chacha's `BUFBLOCKS`.
    const BUF_WORDS: usize = 64;

    /// rand 0.8's `StdRng`: ChaCha12 behind a 4-block output buffer.
    #[derive(Clone)]
    pub struct StdRng {
        /// ChaCha key words (state words 4..12).
        key: [u32; 8],
        /// 64-bit block counter (state words 12..14).
        counter: u64,
        /// 64-bit stream id (state words 14..16); zero for `StdRng`.
        stream: u64,
        /// Buffered keystream words.
        results: [u32; BUF_WORDS],
        /// Next unread index into `results`; `BUF_WORDS` means empty.
        index: usize,
    }

    impl core::fmt::Debug for StdRng {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            // Match upstream's opaque debug output: no keystream leakage.
            f.write_str("StdRng { .. }")
        }
    }

    impl StdRng {
        pub(crate) fn from_seed_bytes(seed: [u8; 32]) -> StdRng {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *k = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                stream: 0,
                results: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }

        #[inline]
        fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(16);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(12);
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(8);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(7);
        }

        /// One ChaCha double round, exposed for the RFC 7539 core test.
        #[cfg(test)]
        pub(crate) fn test_double_round(s: &mut [u32; 16]) {
            Self::quarter(s, 0, 4, 8, 12);
            Self::quarter(s, 1, 5, 9, 13);
            Self::quarter(s, 2, 6, 10, 14);
            Self::quarter(s, 3, 7, 11, 15);
            Self::quarter(s, 0, 5, 10, 15);
            Self::quarter(s, 1, 6, 11, 12);
            Self::quarter(s, 2, 7, 8, 13);
            Self::quarter(s, 3, 4, 9, 14);
        }

        /// One ChaCha12 block at counter `ctr`, written to `out`.
        fn block(&self, ctr: u64, out: &mut [u32]) {
            let mut s: [u32; 16] = [
                0x6170_7865,
                0x3320_646e,
                0x7962_2d32,
                0x6b20_6574,
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                ctr as u32,
                (ctr >> 32) as u32,
                self.stream as u32,
                (self.stream >> 32) as u32,
            ];
            let input = s;
            // 12 rounds = 6 double rounds.
            for _ in 0..6 {
                Self::quarter(&mut s, 0, 4, 8, 12);
                Self::quarter(&mut s, 1, 5, 9, 13);
                Self::quarter(&mut s, 2, 6, 10, 14);
                Self::quarter(&mut s, 3, 7, 11, 15);
                Self::quarter(&mut s, 0, 5, 10, 15);
                Self::quarter(&mut s, 1, 6, 11, 12);
                Self::quarter(&mut s, 2, 7, 8, 13);
                Self::quarter(&mut s, 3, 4, 9, 14);
            }
            for (o, (w, i)) in out.iter_mut().zip(s.iter().zip(input.iter())) {
                *o = w.wrapping_add(*i);
            }
        }

        /// Refills the 4-block buffer and advances the counter, exactly
        /// like rand_chacha's `generate`.
        fn generate(&mut self) {
            for blk in 0..4u64 {
                let ctr = self.counter.wrapping_add(blk);
                let start = blk as usize * 16;
                let mut tmp = [0u32; 16];
                self.block(ctr, &mut tmp);
                self.results[start..start + 16].copy_from_slice(&tmp);
            }
            self.counter = self.counter.wrapping_add(4);
        }

        fn generate_and_set(&mut self, index: usize) {
            debug_assert!(index < BUF_WORDS);
            self.generate();
            self.index = index;
        }

        pub(crate) fn core_next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let value = self.results[self.index];
            self.index += 1;
            value
        }

        pub(crate) fn core_next_u64(&mut self) -> u64 {
            // rand_core `BlockRng::next_u64` semantics, including the
            // odd-index case that discards the buffer's final word pair
            // boundary behavior.
            let read = |results: &[u32; BUF_WORDS], i: usize| {
                u64::from(results[i + 1]) << 32 | u64::from(results[i])
            };
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                read(&self.results, index)
            } else if index >= BUF_WORDS {
                self.generate_and_set(2);
                read(&self.results, 0)
            } else {
                let x = u64::from(self.results[BUF_WORDS - 1]);
                self.generate_and_set(1);
                let y = u64::from(self.results[0]);
                (y << 32) | x
            }
        }
    }

    /// Alias so `small_rng`-style imports keep working. Upstream's
    /// `SmallRng` is a different generator; nothing in this workspace
    /// depends on its stream.
    pub type SmallRng = StdRng;
}

use rngs::StdRng;

/// Minimal mirror of `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Minimal mirror of `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed using `rand_core`'s
    /// PCG32-based expansion (bit-identical to upstream).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> StdRng {
        // rand_core 0.6 `seed_from_u64`: PCG-XSH-RR steps fill the seed.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        StdRng::from_seed_bytes(seed)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.core_next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.core_next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types `Rng::gen` can produce uniformly, mirroring the `Standard`
/// distribution's conversions.
pub trait Uniform: Sized {
    /// Draws one value from `rng`.
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for f64 {
    #[inline]
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // Standard's 53-bit conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    #[inline]
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Uniform for u64 {
    #[inline]
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    #[inline]
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Uniform for usize {
    #[inline]
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Uniform for bool {
    #[inline]
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// rand 0.8 `UniformInt::sample_single`: widening multiply with a
/// bitmask rejection zone. Bit-identical draw sequence to upstream.
#[inline]
fn sample_single_u64<R: RngCore + ?Sized>(range: u64, rng: &mut R) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = v as u128 * range as u128;
        let (hi, lo) = ((m >> 64) as u64, m as u64);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(sample_single_u64(span, rng)) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(sample_single_u64(span, rng)) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::uniform_from(rng) * (self.end - self.start)
    }
}

/// Minimal mirror of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw of a primitive type.
    #[inline]
    fn gen<T: Uniform>(&mut self) -> T {
        T::uniform_from(self)
    }

    /// Uniform draw within a range.
    #[inline]
    fn gen_range<Range: SampleRange>(&mut self, range: Range) -> Range::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::uniform_from(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirror of `rand::thread_rng` backed by a fixed-seed generator; only
/// here so stray callers compile, never used on deterministic paths.
pub fn thread_rng() -> StdRng {
    StdRng::seed_from_u64(0x001D_5B00_B135)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha_core_matches_rfc7539_keystream() {
        // RFC 7539 §2.3.2 block test adapted to the 20-round core: with
        // the RFC key/counter/nonce state, the first keystream word is
        // 0xe4e7f110 ("10 f1 e7 e4" on the wire). Runs the same
        // quarter-round core at 20 rounds to pin the block function.
        let mut s: [u32; 16] = [
            0x61707865, 0x3320646e, 0x79622d32, 0x6b206574, 0x03020100, 0x07060504, 0x0b0a0908,
            0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918, 0x1f1e1d1c, 0x00000001, 0x09000000,
            0x4a000000, 0x00000000,
        ];
        let input = s;
        for _ in 0..10 {
            rngs::StdRng::test_double_round(&mut s);
        }
        for (w, i) in s.iter_mut().zip(input.iter()) {
            *w = w.wrapping_add(*i);
        }
        assert_eq!(s[0], 0xe4e7f110);
        assert_eq!(s[1], 0x15593bd1);
    }

    #[test]
    fn buffer_boundary_odd_index_case() {
        // Drive the index to the 63rd word, then pull a u64 across the
        // refill boundary; must not panic and must stay deterministic.
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..63 {
            a.next_u32();
            b.next_u32();
        }
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
