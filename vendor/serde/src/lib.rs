//! Offline stand-in for `serde`.
//!
//! Provides `Serialize`/`Deserialize` as blanket-implemented marker
//! traits and re-exports the no-op derives, so `#[derive(Serialize,
//! Deserialize)]` and `T: Serialize` bounds compile. No actual
//! serialization machinery exists — every codec in this workspace is
//! hand-rolled (TSV trace lines, Chrome trace JSON).

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use crate::DeserializeOwned;
}
