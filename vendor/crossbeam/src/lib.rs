//! Offline stand-in for `crossbeam`: the MPMC `channel` module and
//! `scope`, built on `std::sync` and `std::thread::scope`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when all receivers have been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.items.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.senders -= 1;
            let none_left = q.senders == 0;
            drop(q);
            if none_left {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a value, blocking until one arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }
}

/// Handle passed to the `scope` closure; spawns scoped worker threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle,
    /// mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// all threads are joined before this returns. A panic on any spawned
/// thread surfaces as `Err`, as with crossbeam.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fan_out_fan_in() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen: Vec<usize> = Vec::new();
        scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(s.spawn(move |_| {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            for h in handles {
                seen.extend(h.join().unwrap());
            }
        })
        .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_when_senders_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_when_receivers_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_propagates_panics_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
