//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface this workspace's benches use. Like upstream
//! criterion, it distinguishes *test mode* (`cargo test` runs each bench
//! body once, as a smoke test) from *bench mode* (`cargo bench` passes
//! `--bench`, enabling a simple warm-up + timed measurement loop). There
//! are no statistics beyond mean ns/iter — this exists so benches build
//! and run offline, not to replace criterion's analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Returns its argument while defeating simple optimizations, like
/// `std::hint::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; `iter` runs the measured routine.
pub struct Bencher {
    test_mode: bool,
    measurement: Duration,
    /// Mean nanoseconds per iteration from the last `iter` call.
    last_mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `routine`: once in test mode, in a timed loop in bench mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.last_mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        // Warm-up: one untimed call, then scale the batch so the timed
        // region approaches the measurement budget without a clock read
        // per iteration.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement.max(Duration::from_millis(1));
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.last_mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn bench_mode() -> bool {
    // `cargo bench` forwards `--bench` to the target; `cargo test` does not.
    std::env::args().any(|a| a == "--bench")
}

fn run_one(
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    measurement: Duration,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        test_mode: !bench_mode(),
        measurement,
        last_mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.test_mode {
        println!("test bench {full} ... ok (1 iteration, test mode)");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Elements(n)) if b.last_mean_ns > 0.0 => {
            format!(
                "  ({:.1} Melem/s)",
                n as f64 / b.last_mean_ns * 1_000.0 / 1_000_000.0
            )
        }
        Some(Throughput::Bytes(n)) if b.last_mean_ns > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / b.last_mean_ns * 1e9 / 1048576.0 / 1e6
            )
        }
        _ => String::new(),
    };
    println!(
        "bench {full:<50} {:>14.0} ns/iter  [{} iters]{rate}",
        b.last_mean_ns, b.iters
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the stub's
    /// measurement loop sizes itself from the time budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates throughput for subsequent benches in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            &id.to_string(),
            self.throughput,
            self.measurement,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            &id.to_string(),
            self.throughput,
            self.measurement,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (the stub only inspects `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measurement: Duration::from_secs(1),
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(None, &id.to_string(), None, Duration::from_secs(1), f);
        self
    }

    /// Prints the end-of-run marker.
    pub fn final_summary(&self) {
        if bench_mode() {
            println!("benchmarks complete");
        }
    }
}

/// Mirror of criterion's group-declaration macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Mirror of criterion's main-declaration macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches_in_test_mode() {
        let mut c = Criterion::default().configure_from_args();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10)
                .measurement_time(Duration::from_millis(10))
                .warm_up_time(Duration::from_millis(1))
                .throughput(Throughput::Elements(100));
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("b", 7), &7, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        c.final_summary();
        assert_eq!(ran, 1, "test mode runs the routine exactly once");
    }
}
