//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on trace-record types
//! but serializes exclusively through its own line-oriented TSV codecs,
//! so the derives only need to *exist*. Each derive expands to nothing;
//! the marker traits in the stub `serde` crate carry blanket
//! implementations, keeping any `T: Serialize` bound satisfiable.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
