//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro over `arg in strategy` parameters, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, `ProptestConfig::with_cases`,
//! range strategies over primitive types, tuple strategies, and
//! `prop::collection::{vec, hash_set}`. Sampling is deterministic per
//! `(test name, case index)`; there is no shrinking — a failing case
//! reports its index and message and panics immediately.

use std::fmt;

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// The case count to actually run: a set `PROPTEST_CASES`
    /// environment variable overrides the configured count (matching
    /// upstream proptest), so CI can schedule deeper passes without code
    /// changes.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Failure raised by `prop_assert!`-family macros, or a rejection from
/// `prop_assume!` (rejected cases are skipped, not failed).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
    /// `true` when raised by `prop_assume!`.
    pub is_rejection: bool,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
            is_rejection: false,
        }
    }

    /// Creates a rejection (the case is skipped).
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
            is_rejection: true,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

pub mod test_runner {
    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a stream from the test name and case index.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`; 0 when `bound` is 0.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The produced type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::collections::HashSet;
        use std::hash::Hash;

        /// Strategy producing `Vec`s with lengths drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// Vector of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Strategy producing `HashSet`s with target sizes from a range.
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// Hash set of `element` values with size in `len` (best effort
        /// when the element domain is smaller than the requested size).
        pub fn hash_set<S>(element: S, len: core::ops::Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy { element, len }
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let target = self.len.clone().sample(rng);
                let mut set = HashSet::with_capacity(target);
                // Bounded attempts so small domains cannot loop forever.
                for _ in 0..target.saturating_mul(20).max(8) {
                    if set.len() >= target {
                        break;
                    }
                    set.insert(self.element.sample(rng));
                }
                set
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of `proptest!` items — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $cfg;
            for case in 0..config.resolved_cases() {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    if e.is_rejection {
                        continue;
                    }
                    panic!(
                        "property `{}` failed at case {}: {}",
                        stringify!($name),
                        case,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    (cfg = ($cfg:expr);) => {};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&x));
            let y = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&y));
        }
    }

    #[test]
    fn resolved_cases_defaults_to_configured_count() {
        // CI sets PROPTEST_CASES to deepen every property test; in that
        // environment the override winning IS the contract under test.
        let config = ProptestConfig::with_cases(17);
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => assert_eq!(config.resolved_cases(), v.trim().parse().unwrap()),
            Err(_) => assert_eq!(config.resolved_cases(), 17),
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let mut a = TestRng::for_case("det", 3);
        let mut b = TestRng::for_case("det", 3);
        let strat = prop::collection::vec(0u64..100, 1..10);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn self_hosted_property(x in 1u64..100, v in prop::collection::vec(0u32..10, 0..8)) {
            prop_assert!(x >= 1);
            prop_assert!(v.len() < 8);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
