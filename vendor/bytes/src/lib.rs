//! Offline stand-in for the `bytes` crate: an `Arc`-backed immutable byte
//! buffer with the subset of the `Bytes` API this workspace touches.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, reference-counted immutable bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a static slice into a buffer.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_clone_share_storage() {
        let a = Bytes::from(vec![0u8; 128]);
        let b = a.clone();
        assert_eq!(a.len(), 128);
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn deref_gives_slice_ops() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b[1], 2);
        assert_eq!(&b[..2], &[1, 2]);
        assert!(!b.is_empty());
    }
}
