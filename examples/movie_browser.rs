//! Movie browser: the inertial-scrolling scenario of case study 1.
//!
//! Simulates a panel of users skimming the top-rated movie table on a
//! trackpad, then compares loading strategies (lazy / event fetch / timer
//! fetch) on each user's demand curve, printing the Fig 10 / Table 8
//! style comparison.
//!
//! ```sh
//! cargo run --release --example movie_browser [users] [tuples]
//! ```

use ids::engine::{Backend, DiskBackend, Predicate, Projection, Query};
use ids::opt::loading::{event_fetch, lazy_loading, timer_fetch, LoadingConfig};
use ids::report::TextTable;
use ids::simclock::SimDuration;
use ids::workload::datasets;
use ids::workload::scrolling::{demand_curve, simulate_study, speed_stats};

fn main() {
    let mut args = std::env::args().skip(1);
    let users: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(15);
    let tuples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4_000);

    println!("simulating {users} users skimming {tuples} movies...\n");
    let sessions = simulate_study(2026, users, tuples);

    // Behavior analysis (Fig 8 / Fig 9 style).
    let mut behavior = TextTable::new([
        "user",
        "max speed (tuples/s)",
        "avg speed (tuples/s)",
        "selected",
        "backscrolled",
    ]);
    for s in &sessions {
        let sp = speed_stats(s);
        behavior.row([
            s.user.to_string(),
            format!("{:.0}", sp.max_tuples_per_s),
            format!("{:.1}", sp.avg_tuples_per_s),
            s.selections.len().to_string(),
            s.backscrolled_selections.to_string(),
        ]);
    }
    println!("{}", behavior.render());

    // The backing store: the movie table on the disk-regime backend.
    let backend = DiskBackend::new();
    backend
        .database()
        .register(datasets::movies_sized(2026, tuples));
    let probe = |k: u64| {
        let q = Query::select(
            "imdb",
            vec![
                Projection::title_with_year("title", "year"),
                Projection::column("rating"),
            ],
            Predicate::True,
            Some(k as usize),
            tuples / 2,
        );
        backend.execute(&q).expect("probe").cost
    };

    // Strategy comparison across the Fig 10 fetch sizes.
    let mut table = TextTable::new([
        "fetch size",
        "lazy: avg wait",
        "event: avg wait",
        "timer: avg wait",
        "timer violations",
    ]);
    for size in [12u64, 30, 58, 80] {
        let cfg = LoadingConfig {
            fetch_size: size,
            fetch_exec: probe(size),
            total_tuples: tuples as u64,
        };
        let mut lazy_w = 0.0;
        let mut event_w = 0.0;
        let mut timer_w = 0.0;
        let mut timer_v = 0usize;
        for s in &sessions {
            let demand = demand_curve(s);
            lazy_w += lazy_loading(&demand, &cfg)
                .avg_violation_wait()
                .as_millis_f64();
            event_w += event_fetch(&demand, &cfg, size)
                .avg_violation_wait()
                .as_millis_f64();
            let t = timer_fetch(&demand, &cfg, SimDuration::from_secs(1));
            timer_w += t.avg_violation_wait().as_millis_f64();
            timer_v += t.lcv(&demand).violations;
        }
        let n = sessions.len() as f64;
        table.row([
            size.to_string(),
            format!("{:.1} ms", lazy_w / n),
            format!("{:.1} ms", event_w / n),
            format!("{:.1} ms", timer_w / n),
            timer_v.to_string(),
        ]);
    }
    println!(
        "loading-strategy comparison (averaged over users):\n{}",
        table.render()
    );
    println!(
        "takeaway: timer fetch reaches zero perceived latency once the chunk\n\
         size covers the population's scrolling speed; event fetch stays at\n\
         roughly one fetch execution regardless of size (Fig 10)."
    );
}
