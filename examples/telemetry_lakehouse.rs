//! Telemetry lakehouse: the engine dogfoods its own observability.
//!
//! Runs a small multi-tenant fleet with the obs recorder live, folds the
//! captured serve spans (plus a metrics snapshot and raw histogram
//! buckets) into the columnar telemetry lakehouse, and answers the three
//! canned fleet-health questions with the engine's own vectorized
//! kernels: p99 latency by tenant, latency-constraint violations over
//! time, and the slowest-spans leaderboard.
//!
//! ```sh
//! cargo run --release --example telemetry_lakehouse [sessions]
//! ```

use ids::experiments::fleet::{self, FleetConfig};
use ids::lakehouse::{render_table, Lakehouse, TimeWindow};
use ids::obs;
use ids::simclock::SimTime;

fn main() {
    let sessions: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);

    let config = FleetConfig {
        seed: 11,
        session_counts: vec![sessions / 2, sessions],
        ..FleetConfig::smoke_test()
    };

    // Telemetry only flows while the recorder is live; `fleet::run`
    // captures the top concurrency level's serve spans into a lakehouse
    // and keeps the three canned query results on the report.
    obs::reset_all();
    obs::enable();
    let report = fleet::run(&config);
    let rec = obs::recorder();
    let events = rec.events();
    let tracks = rec.tracks();
    let snapshot = obs::metrics().snapshot();
    let buckets = obs::metrics().histogram_buckets();
    obs::disable();

    println!("{}", report.render());
    println!("{}", report.render_telemetry());

    // The same capture, ingested by hand: spans + counters from the
    // recorder, counter/gauge samples from the metrics snapshot, raw
    // histogram buckets from the registry — all queryable tables.
    let mut lake = Lakehouse::new();
    let stats = lake.ingest_events(&events, &tracks);
    let snap_rows = lake.ingest_snapshot(SimTime::from_micros(0), &snapshot);
    let bucket_rows = lake.ingest_histogram_buckets(&buckets);
    let (spans, counters, bucket_count) = lake.row_counts();
    println!(
        "manual ingest: {} spans + {} counter samples ({} skipped instants), \
         {snap_rows} snapshot rows, {bucket_rows} bucket rows \
         -> tables: spans {spans}, counters {counters}, buckets {bucket_count}\n",
        stats.spans, stats.counters, stats.skipped
    );

    let spans_table = lake.spans_table().expect("spans table");
    println!("{}", render_table(&spans_table, 8));
    let counters_table = lake.counters_table().expect("counters table");
    println!("{}", render_table(&counters_table, 8));
    let buckets_table = lake.buckets_table().expect("buckets table");
    println!("{}", render_table(&buckets_table, 8));

    // Canned queries straight off the lakehouse, kernel-executed.
    let mut queries = lake.queries().expect("telemetry queries");
    let p99 = queries.p99_by_tenant(TimeWindow::all()).expect("p99 query");
    println!("p99 by tenant (whole timeline):");
    for t in &p99 {
        println!(
            "  {:<10} {} spans, {} violated, p99 {}us",
            t.tenant, t.spans, t.violated, t.p99_us
        );
    }
    let stats = queries.kernel_stats();
    println!(
        "\nkernel work: {} blocks scanned, {} pruned by zone maps",
        stats.blocks_scanned, stats.blocks_pruned
    );
}
