//! Progressive visualization: online-aggregation-style refinement with
//! the accuracy/latency trade-off the paper's metrics catalog describes.
//!
//! A histogram over the full road network is answered progressively:
//! each refinement consumes more rows, costs more virtual time, and gets
//! closer to the exact answer — the Incvisage contract ("I've seen
//! enough": the user can stop whenever the shape has stabilized).
//!
//! ```sh
//! cargo run --release --example progressive_viz [rows]
//! ```

use ids::engine::progressive::{refinement_error, ProgressiveExecutor};
use ids::engine::{Backend, BinSpec, Database, MemBackend, Predicate, Query};
use ids::metrics::accuracy::scored_accuracy;
use ids::report::{sparkline, TextTable};
use ids::simclock::SimDuration;
use ids::workload::datasets;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);
    let db = Database::new();
    db.register(datasets::road_network_sized(5, rows));

    let query = Query::histogram(
        "dataroad",
        BinSpec::new(
            "y",
            datasets::road_domain::Y_MIN,
            datasets::road_domain::Y_MAX,
            20,
        ),
        Predicate::between("x", 8.5, 10.8),
    );
    let exact = MemBackend::over(db.clone())
        .execute(&query)
        .expect("exact")
        .result;

    let refinements = ProgressiveExecutor::new(db)
        .run(&query)
        .expect("progressive");
    let mut t = TextTable::new([
        "sample",
        "elapsed",
        "rmse/bin",
        "±bound",
        "ci width",
        "histogram shape",
    ]);
    for r in &refinements {
        let hist = r.estimate.histogram().expect("histogram query");
        let shape: Vec<f64> = hist.counts().iter().map(|&c| c as f64).collect();
        let max_ci = r
            .intervals
            .iter()
            .map(|ci| ci.width())
            .fold(0.0f64, f64::max);
        t.row([
            format!("{:.1}%", r.fraction * 100.0),
            format!("{:.2} ms", r.elapsed.as_millis_f64()),
            format!("{:.0}", refinement_error(&r.estimate, &exact).sqrt()),
            format!("{:.0}", r.error_bound),
            format!("{:.0}", max_ci),
            sparkline(&shape),
        ]);
    }
    println!("{}", t.render());

    // The accuracy-vs-time trade-off as a single score (Incvisage-style
    // scored accuracy): answering from the 4% sample scores better than
    // waiting for the exact answer, because it lands so much earlier.
    let total = exact.histogram().expect("histogram").total() as f64;
    for r in [&refinements[2], refinements.last().expect("non-empty")] {
        let est_total = r.estimate.histogram().expect("histogram").total() as f64;
        let score = scored_accuracy(
            est_total,
            total,
            r.elapsed,
            total * 0.05,
            SimDuration::from_millis(30),
        );
        println!(
            "answer at {:>5.1}% sample ({}): scored accuracy {:.3}",
            r.fraction * 100.0,
            r.elapsed,
            score
        );
    }
}
