//! Study planner: the Section 4 methodology as a working tool.
//!
//! Given a description of the system to evaluate, this example selects
//! metrics (Table 3), decides the study setting (Fig 4) and design
//! (Fig 5), generates a counterbalanced condition assignment, audits the
//! plan for validity threats, and prints the bias-mitigation checklist
//! (Table 4).
//!
//! ```sh
//! cargo run --release --example study_planner
//! ```

use ids::metrics::selection::{recommend, validate_plan, when_to_use, SystemTraits};
use ids::report::TextTable;
use ids::simclock::rng::SimRng;
use ids::study::assignment::{balanced_latin_square, latin_square_orders};
use ids::study::bias::{mitigation_checklist, BiasSide};
use ids::study::design::{
    recommend_design, recommend_setting, Setting, SettingNeeds, StudyDesign, TaskTraits,
};
use ids::study::simulate::{run_counterbalanced, run_naive_within_subject, TwoSystemTask};
use ids::study::validity::{check_plan, StudyPlan};

fn main() {
    // The system under evaluation: a touch-first crossfiltering tool for
    // clinical analysts (domain-specific, bursty, high-frame-rate).
    let traits = SystemTraits {
        domain_specific: true,
        bursty_queries: true,
        high_frame_rate_device: true,
        large_data: true,
        task_based: true,
        walk_up_tool: true,
        ..SystemTraits::default()
    };

    // 1. Metric selection (Table 3).
    let metrics = recommend(&traits);
    let mut t = TextTable::new(["metric", "why (when to use)"]);
    for m in &metrics {
        t.row([m.name(), when_to_use(*m)]);
    }
    println!("Selected metrics:\n{}", t.render());

    // 2. Study setting (Fig 4): device-dependent → in person.
    let setting = recommend_setting(&SettingNeeds {
        comparison_against_control: true,
        device_dependent: true,
        think_aloud: false,
    });
    assert_eq!(setting, Setting::InPerson);
    println!("Setting (Fig 4): {setting:?} — device-dependent comparison\n");

    // 3. Design per metric (Fig 5).
    let mut d = TextTable::new(["metric", "design"]);
    for m in &metrics {
        d.row([
            m.name().to_string(),
            format!("{:?}", recommend_design(*m, &TaskTraits::default())),
        ]);
    }
    println!("Design per metric (Fig 5):\n{}", d.render());

    // 4. Counterbalancing: 12 participants across 4 task orders.
    let mut rng = SimRng::seed(99);
    let orders = latin_square_orders(12, 4, &mut rng);
    let mut o = TextTable::new(["participant", "task order"]);
    for (p, order) in orders.iter().enumerate() {
        let pretty: Vec<String> = order.iter().map(|c| format!("T{c}")).collect();
        o.row([p.to_string(), pretty.join(" -> ")]);
    }
    println!("Counterbalanced orders (Latin square):\n{}", o.render());
    let balanced = balanced_latin_square(4);
    println!(
        "balanced 4x4 Williams square (first row): {:?}\n",
        balanced[0]
    );

    // 5. Validity audit.
    let plan = StudyPlan {
        setting,
        design: StudyDesign::WithinSubject,
        order_controlled: true,
        breaks_scheduled: false, // oops
        participants: 12,
        realistic_tasks: true,
        uses_proxy_metrics: true, // completion time as "effort"
    };
    println!("Validity audit:");
    for concern in check_plan(&plan) {
        println!("  [{:?}] {}", concern.aspect, concern.note);
    }
    let issues = validate_plan(&traits, &metrics);
    println!(
        "metric-plan gaps: {}\n",
        if issues.is_empty() {
            "none"
        } else {
            "see above"
        }
    );

    // 6. Why counterbalancing matters, demonstrated: simulate the study
    // with synthetic participants whose learning effect favors whichever
    // system comes second.
    let task = TwoSystemTask { true_ratio: 0.85 }; // system B truly 15% faster
    let naive = run_naive_within_subject(&task, 200, 42);
    let balanced = run_counterbalanced(&task, 200, 42);
    println!(
        "Simulated within-subject study (true effect: B = {:.0}% of A's time):\n  \
         naive order (A always first): measured {:.0}%  <- learning inflates B\n  \
         counterbalanced (AB/BA):      measured {:.0}%  <- unbiased\n",
        task.true_ratio * 100.0,
        naive.measured_ratio() * 100.0,
        balanced.measured_ratio() * 100.0,
    );

    // 7. Bias-mitigation checklist (Table 4).
    for (side, label) in [
        (BiasSide::Participant, "participant-side"),
        (BiasSide::Experimenter, "experimenter-side"),
    ] {
        println!("{label} bias mitigations:");
        for (bias, measure) in mitigation_checklist(Some(side)) {
            println!("  {bias:?}: {measure}");
        }
    }
}
