//! Quickstart: evaluate an interactive backend against a bursty slider
//! workload in five steps — dataset, backend, workload, replay, metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ids::devices::DeviceKind;
use ids::engine::{Backend, DiskBackend, MemBackend, Predicate, Query};
use ids::metrics::qif::{QifQuadrant, QifReport};
use ids::metrics::selection::{recommend, SystemTraits};
use ids::opt::skip::{replay_raw, replay_skip};
use ids::simclock::SimDuration;
use ids::workload::crossfilter::{compile_query_groups, simulate_session, CrossfilterUi};
use ids::workload::datasets;

fn main() {
    // 1. A dataset: a synthetic stand-in for the UCI 3-D road network.
    let rows = 120_000;
    let road = datasets::road_network_sized(42, rows);
    println!("dataset: {} rows x {} columns", road.rows(), road.width());

    // 2. Two backends over the same tables: a disk-regime row store and
    //    an in-memory column store (PostgreSQL / MemSQL roles).
    let disk = DiskBackend::new();
    disk.database().register(road.clone());
    let mem = MemBackend::new();
    mem.database().register(road);
    disk.execute(&Query::count("dataroad", Predicate::True))
        .expect("warmup");

    // 3. An interactive workload: one user crossfiltering with a mouse.
    let ui = CrossfilterUi::for_road();
    let session = simulate_session(DeviceKind::Mouse, 0, 42, &ui);
    let mut groups = compile_query_groups(&ui, &session.trace);
    groups.truncate(400);
    println!(
        "workload: {} slider events -> {} query groups",
        session.trace.len(),
        groups.len()
    );

    // 4. Replay the stream, raw and with the skip optimization.
    for (name, backend) in [
        ("disk", &disk as &dyn Backend),
        ("mem", &mem as &dyn Backend),
    ] {
        let raw = replay_raw(backend, &groups).expect("replay");
        let skip = replay_skip(backend, &groups).expect("replay");
        // Violations are reported over all *issued* queries, as in Fig 15.
        let frac = |out: &ids::opt::skip::ReplayOutcome| {
            out.lcv().violations as f64 / out.timings.len().max(1) as f64
        };
        println!(
            "{name}: raw LCV {:.1}% | skip LCV {:.1}% (skipped {} stale groups)",
            frac(&raw) * 100.0,
            frac(&skip) * 100.0,
            skip.skipped(),
        );
    }

    // 5. Frontend metrics: QIF and the Fig 3 quadrant.
    let stamps: Vec<_> = groups.iter().map(|g| g.at).collect();
    let qif = QifReport::from_timestamps(&stamps);
    let mean_service = SimDuration::from_millis(
        replay_raw(&mem, &groups[..50.min(groups.len())])
            .expect("probe")
            .timings
            .iter()
            .map(|t| t.execution().as_millis())
            .sum::<u64>()
            / 50.min(groups.len()).max(1) as u64,
    );
    let quadrant = QifQuadrant::classify(qif.queries_per_second(), mean_service, 40.0);
    println!(
        "QIF: {:.1} queries/s, mean service {} -> {:?}: {}",
        qif.queries_per_second(),
        mean_service,
        quadrant,
        quadrant.guidance()
    );

    // Bonus: what does the paper say this system should measure?
    let plan = recommend(&SystemTraits {
        bursty_queries: true,
        high_frame_rate_device: true,
        large_data: true,
        ..SystemTraits::default()
    });
    let names: Vec<&str> = plan.iter().map(|m| m.name()).collect();
    println!("recommended metrics (Table 3): {}", names.join(", "));
}
