//! Travel explorer: the composite-interface scenario of case study 3.
//!
//! Simulates users exploring an accommodation site through map, slider,
//! checkbox and text-box widgets; analyzes their behavior (widget mix,
//! zoom dwell, filter accretion, request vs exploration time); and shows
//! how the analysis feeds a Markov tile prefetcher and a session-reuse
//! cache over the listings table.
//!
//! ```sh
//! cargo run --release --example travel_explorer [users]
//! ```

use ids::engine::{Backend, MemBackend, Predicate, Query};
use ids::opt::prefetch::{evaluate_tile_strategy, zoom_budget, MarkovPrefetcher, TileStrategy};
use ids::opt::reuse::SessionCache;
use ids::report::{pct, TextTable};
use ids::simclock::SimDuration;
use ids::workload::composite::{
    filter_counts, phase_times, simulate_study, widget_percentages, CompositeConfig,
};
use ids::workload::datasets;

fn main() {
    let users: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(15);
    let config = CompositeConfig {
        min_duration: SimDuration::from_secs(20 * 60),
        request_model: None,
    };
    println!("simulating {users} exploration sessions (>= 20 min each)...\n");
    let sessions = simulate_study(7, users, &config);

    // Widget mix (Table 9).
    let mut t = TextTable::new(["widget", "share"]);
    for (w, p) in widget_percentages(&sessions) {
        t.row([w.label(), &format!("{p:.1}%")]);
    }
    println!("{}", t.render());

    // Filter accretion (Fig 20) and phase times (Fig 21).
    let counts = filter_counts(&sessions);
    let le4 = counts.iter().filter(|&&c| c <= 4.0).count() as f64 / counts.len() as f64;
    let (req, exp) = phase_times(&sessions);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("P(filters <= 4) = {}", pct(le4));
    println!(
        "mean request {:.2}s vs mean exploration {:.2}s -> ~{:.0} prefetchable queries\n",
        mean(&req),
        mean(&exp),
        mean(&exp) / mean(&req)
    );

    // Prefetching: Markov model trained on half the users, evaluated on
    // the other half (no peeking).
    let (train, eval) = sessions.split_at(users / 2);
    let mut model = MarkovPrefetcher::new();
    model.train_sessions(train);
    let demand = evaluate_tile_strategy(eval, &model, TileStrategy::DemandOnly, 512);
    let markov = evaluate_tile_strategy(eval, &model, TileStrategy::Markov { top_k: 2 }, 512);
    println!(
        "tile hit rate: demand-only {} -> with Markov prefetch {}",
        pct(demand.hit_rate()),
        pct(markov.hit_rate())
    );
    let mut budget = TextTable::new(["zoom", "precompute budget"]);
    for (z, share) in zoom_budget(&sessions) {
        budget.row([z.to_string(), pct(share)]);
    }
    println!("{}", budget.render());

    // Session reuse against an actual listings table: repeated filter
    // states become constant-time lookups.
    let mem = MemBackend::new();
    mem.database().register(datasets::listings(7, 50_000));
    let cache = SessionCache::new(&mem);
    for step in sessions[0].steps.iter().take(60) {
        // Translate the step's price filter (if any) into a count query.
        let price = step
            .state
            .filters
            .iter()
            .find(|f| f.field == "price")
            .and_then(|f| {
                let (lo, hi) = f.value.split_once('_')?;
                Some((lo.parse::<f64>().ok()?, hi.parse::<f64>().ok()?))
            })
            .unwrap_or((10.0, 2_000.0));
        let q = Query::count("listings", Predicate::between("price", price.0, price.1));
        cache.execute(&q).expect("query");
    }
    let stats = cache.stats();
    println!(
        "session reuse over listings: hit rate {}, speedup {:.1}x",
        pct(stats.hit_rate()),
        stats.speedup()
    );
}
