//! Fleet rush hour: a burst of sessions hits a shared engine at once.
//!
//! Instead of the experiment's Poisson trickle, every tenant's users
//! arrive in synchronized waves (think Monday 9am dashboards). The same
//! offered stream is served twice — once behind token-bucket admission
//! with prefetch suppression, once with everything admitted — so the
//! printout shows exactly what admission control buys at the tail.
//!
//! ```sh
//! cargo run --release --example fleet_rush_hour [sessions] [waves]
//! ```

use ids::chaos::FaultPlan;
use ids::engine::{Backend, CostParams, DiskBackend, EvictionPolicy};
use ids::report::TextTable;
use ids::serve::{
    measure_costs, simulate_service, synthesize_fleet, AdmissionPolicy, ArrivalProcess,
    FleetOutcome, FleetSpec, ServeParams,
};
use ids::simclock::{SimDuration, SimTime};
use ids::workload::datasets;

fn main() {
    let mut args = std::env::args().skip(1);
    let sessions: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    let waves: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let tenants = 4;
    let rows = 2_000;
    let budget = SimDuration::from_millis(1_000);
    let workers = 4;

    let spec = FleetSpec {
        seed: 42,
        sessions,
        tenants,
        arrival: ArrivalProcess::Bursts {
            count: waves,
            spacing: SimDuration::from_secs_f64(20.0),
            width: SimDuration::from_millis(800),
        },
        max_groups: 8,
        prefetch_rate: 0.25,
    };
    let offered = synthesize_fleet(&spec, 2);
    println!(
        "rush hour: {sessions} sessions across {tenants} tenants in {waves} wave(s), \
         {} queries offered\n",
        offered.len()
    );

    // One shared engine: every tenant's table competes for the same
    // buffer pool, exactly as in `repro --fleet`.
    let scale = datasets::road_domain::ROWS as f64 / rows as f64;
    let mut params = CostParams::disk_default();
    params.tuple_scan_ns = ((params.tuple_scan_ns as f64) * scale).round() as u64;
    params.tuple_agg_ns = ((params.tuple_agg_ns as f64) * scale).round() as u64;
    params.predicate_eval_ns = ((params.predicate_eval_ns as f64) * scale).round() as u64;
    let disk = DiskBackend::with_config(params, 512, EvictionPolicy::Lru);
    let db = disk.database();
    for tenant in 0..tenants {
        db.register(datasets::road_network_named(
            &FleetSpec::tenant_table(tenant),
            spec.seed,
            rows,
        ));
    }

    let plan = FaultPlan::calm(spec.seed);
    let costs = measure_costs(&disk, Some(&disk), &offered, &plan, budget);
    let serve = ServeParams {
        workers,
        latency_budget: budget,
        deadline: false,
        shards: 1,
    };
    let admission = simulate_service(
        &offered,
        &costs,
        &AdmissionPolicy::interactive(3.0, 8),
        &plan,
        &serve,
    );
    let baseline = simulate_service(
        &offered,
        &costs,
        &AdmissionPolicy::unlimited(),
        &plan,
        &serve,
    );

    let mut t = TextTable::new([
        "condition",
        "admitted",
        "shed",
        "LCV",
        "p50",
        "p99",
        "drained",
    ]);
    for (name, o) in [("admission", &admission), ("open queue", &baseline)] {
        t.row([
            name.to_string(),
            o.admitted.to_string(),
            format!("{:.1}%", 100.0 * o.shed_fraction()),
            format!("{:.1}%", 100.0 * o.lcv.fraction()),
            ms(o.p50),
            ms(o.p99),
            format!(
                "{:.1}s",
                o.drained_at.saturating_since(SimTime::ZERO).as_secs_f64()
            ),
        ]);
    }
    println!("{}", t.section("rush hour: admission vs open queue"));
    summarize(&admission, &baseline);
}

fn ms(d: SimDuration) -> String {
    format!("{}ms", d.as_millis())
}

fn summarize(admission: &FleetOutcome, baseline: &FleetOutcome) {
    if admission.p99 < baseline.p99 {
        println!(
            "\nadmission cut p99 from {} to {} by shedding {:.0}% of the wave",
            ms(baseline.p99),
            ms(admission.p99),
            100.0 * admission.shed_fraction()
        );
    } else {
        println!("\nthe fleet was under capacity — admission had nothing to shed");
    }
}
