//! Crossfilter lab: case study 2 end to end, with knobs.
//!
//! Compares mouse, touch, and Leap Motion crossfiltering sessions over
//! disk- and memory-regime backends under every optimization (raw,
//! KL>0, KL>0.2, skip), printing latency medians, QIF, skip counts and
//! LCV percentages.
//!
//! ```sh
//! cargo run --release --example crossfilter_lab [rows] [max_groups]
//! ```

use ids::experiments::case2::{run, Case2Config, DEVICES, OPTS};
use ids::report::TextTable;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60_000);
    let max_groups: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(800);

    let config = Case2Config {
        seed: 11,
        rows,
        max_groups,
        kl_sample: 2_000,
    };
    println!(
        "crossfiltering {} rows, up to {} query groups per session\n\
         (cost model rescaled by {:.1}x to preserve the paper's regimes)\n",
        rows,
        max_groups,
        config.cost_scale()
    );
    let report = run(&config);

    println!("{}", report.render_fig11());

    let mut t = TextTable::new([
        "device",
        "opt",
        "disk median (ms)",
        "mem median (ms)",
        "disk LCV",
        "mem LCV",
        "skipped",
    ]);
    for device in DEVICES {
        for opt in OPTS {
            let disk = report.condition("disk", opt, device).expect("condition");
            let mem = report.condition("mem", opt, device).expect("condition");
            t.row([
                device.label().to_string(),
                opt.to_string(),
                format!("{:.0}", disk.median_latency_ms()),
                format!("{:.0}", mem.median_latency_ms()),
                format!("{:.1}%", disk.lcv_fraction * 100.0),
                format!("{:.1}%", mem.lcv_fraction * 100.0),
                disk.skipped.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("{}", report.render_fig14());
    println!(
        "takeaways: the memory-regime backend stays interactive even raw;\n\
         the disk-regime backend needs skip or KL>0.2 to return to sub-second\n\
         perceived latency (Fig 13/15)."
    );
}
