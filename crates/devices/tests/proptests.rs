//! Property tests for device kinematics.

use ids_devices::hci::{index_of_difficulty, FittsParams};
use ids_devices::pointer::{path_wobble, Point, PointerSimulator};
use ids_devices::scroll::{plain_scroll, scroll_positions, Flick, ScrollPhysics};
use ids_devices::{DeviceKind, DeviceProfile};
use ids_simclock::rng::SimRng;
use ids_simclock::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fitts movement time is monotone in distance and anti-monotone in
    /// target width, for every device parameterization.
    #[test]
    fn fitts_monotonicity(d1 in 1.0f64..2_000.0, extra in 1.0f64..2_000.0, w in 1.0f64..200.0) {
        for params in [FittsParams::MOUSE, FittsParams::TOUCH, FittsParams::GESTURE] {
            let near = params.movement_time(d1, w);
            let far = params.movement_time(d1 + extra, w);
            prop_assert!(far >= near);
            let wide = params.movement_time(d1, w * 2.0);
            prop_assert!(wide <= near);
        }
        prop_assert!(index_of_difficulty(d1, w) >= 0.0);
    }

    /// A glide's total distance equals the sum of its deltas, and the
    /// scroll position never goes negative.
    #[test]
    fn scroll_positions_accumulate(velocity in 500.0f64..40_000.0, flicks in 1usize..6) {
        let phys = ScrollPhysics::inertial();
        let fs: Vec<Flick> = (0..flicks)
            .map(|i| Flick {
                at: SimTime::from_millis(i as u64 * 700),
                velocity: if i % 2 == 0 { velocity } else { -velocity / 2.0 },
            })
            .collect();
        let events = phys.roll(&fs, SimTime::from_secs(20));
        let positions = scroll_positions(&events);
        prop_assert!(positions.iter().all(|&(_, p)| p >= 0.0));
        prop_assert_eq!(positions.len(), events.len());
    }

    /// Glide deltas decay strictly within one flick's glide.
    #[test]
    fn glide_decays(velocity in 1_000.0f64..50_000.0) {
        let phys = ScrollPhysics::inertial();
        let events = phys.roll(
            &[Flick { at: SimTime::ZERO, velocity }],
            SimTime::from_secs(10),
        );
        prop_assert!(!events.is_empty());
        prop_assert!(events.windows(2).all(|w| w[1].delta.abs() < w[0].delta.abs() + 1e-9));
        // Peak delta equals velocity × frame interval.
        let expected = velocity * phys.frame_interval.as_secs_f64();
        prop_assert!((events[0].delta - expected).abs() < 1e-6);
    }

    /// Plain scroll emits exactly rate × duration notches of constant size.
    #[test]
    fn plain_scroll_count(rate in 1.0f64..30.0, secs in 1u64..20, px in 1.0f64..10.0) {
        let events = plain_scroll(SimTime::ZERO, SimDuration::from_secs(secs), rate, px);
        let expected = (secs as f64 * rate).floor() as usize;
        prop_assert_eq!(events.len(), expected);
        prop_assert!(events.iter().all(|e| e.delta == px));
    }

    /// Pointer reaches land near the target for every friction device,
    /// for arbitrary geometry.
    #[test]
    fn reaches_land_near_target(
        seed in 0u64..5_000,
        x0 in -500.0f64..500.0,
        y0 in -500.0f64..500.0,
        dx in -800.0f64..800.0,
        dy in -800.0f64..800.0,
    ) {
        prop_assume!(dx.hypot(dy) > 20.0);
        for kind in [DeviceKind::Mouse, DeviceKind::Touch, DeviceKind::Trackpad] {
            let mut sim = PointerSimulator::new(
                DeviceProfile::for_kind(kind),
                SimRng::seed(seed).split(kind.label()),
            );
            let from = Point::new(x0, y0);
            let to = Point::new(x0 + dx, y0 + dy);
            let trace = sim.reach(SimTime::ZERO, from, to, 24.0);
            let last = trace.last().expect("non-empty reach");
            prop_assert!(
                Point::new(last.x, last.y).distance(to) < 15.0,
                "{kind}: ended {:.1} px from target",
                Point::new(last.x, last.y).distance(to)
            );
        }
    }

    /// The jitter ordering (leap ≫ touch ≥ mouse-ish) holds across seeds.
    #[test]
    fn leap_always_noisier(seed in 0u64..2_000) {
        let from = Point::new(0.0, 0.0);
        let to = Point::new(400.0, 30.0);
        let wobble = |kind: DeviceKind| {
            let mut sim = PointerSimulator::new(
                DeviceProfile::for_kind(kind),
                SimRng::seed(seed).split(kind.label()),
            );
            path_wobble(&sim.reach(SimTime::ZERO, from, to, 24.0))
        };
        prop_assert!(wobble(DeviceKind::LeapMotion) > wobble(DeviceKind::Mouse) * 3.0);
    }
}
