//! Inertial ("momentum") scrolling physics.
//!
//! Case study 1 contrasts inertial scrolling with plain wheel scrolling:
//! a flick imparts velocity that decays under simulated friction, so one
//! gesture covers hundreds of pixels per frame (the paper's Fig 7 shows
//! wheel deltas of ~400 px with inertia vs ~4 px without — a 100×
//! difference that breaks lazy loading). This module implements both
//! regimes as pure physics over virtual time.

use ids_simclock::{SimDuration, SimTime};

/// One emitted wheel event: how far the content scrolled this frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WheelEvent {
    /// Event timestamp.
    pub at: SimTime,
    /// Scroll distance this frame, pixels (positive = scrolling down).
    pub delta: f64,
}

/// A flick gesture: the user swipes, imparting an initial velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flick {
    /// When the flick lands.
    pub at: SimTime,
    /// Imparted content velocity, px/s (positive = down, negative = back up).
    pub velocity: f64,
}

/// Exponential-decay scroll physics.
///
/// Velocity after a flick decays as `v(t) = v0 · exp(−t/τ)`; wheel events
/// fire every `frame_interval` with `delta = v · Δt` until the speed drops
/// below `stop_velocity` or the next flick replaces the velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrollPhysics {
    /// Interval between wheel events (UI frame), typically 15–20 ms.
    pub frame_interval: SimDuration,
    /// Friction time constant τ, seconds. Larger = longer glide.
    pub friction_tau_s: f64,
    /// Speed below which the glide stops, px/s.
    pub stop_velocity: f64,
}

impl ScrollPhysics {
    /// iOS/macOS-style inertial scrolling: 60 Hz frames, τ ≈ 0.325 s.
    pub fn inertial() -> ScrollPhysics {
        ScrollPhysics {
            frame_interval: SimDuration::from_micros(16_667),
            friction_tau_s: 0.325,
            stop_velocity: 30.0,
        }
    }

    /// Simulates the wheel-event stream produced by a flick sequence,
    /// up to `until`. Flicks must be sorted by time; a flick during a
    /// glide replaces the current velocity (matching trackpad behavior,
    /// where successive swipes re-energize the scroll).
    pub fn roll(&self, flicks: &[Flick], until: SimTime) -> Vec<WheelEvent> {
        debug_assert!(
            flicks.windows(2).all(|w| w[0].at <= w[1].at),
            "flicks must be sorted by time"
        );
        let mut events = Vec::new();
        let dt = self.frame_interval;
        let dt_s = dt.as_secs_f64();
        let decay = (-dt_s / self.friction_tau_s).exp();

        let mut next_flick = 0;
        let mut velocity = 0.0_f64;
        let mut t = match flicks.first() {
            Some(f) => f.at,
            None => return events,
        };
        while t <= until {
            // Absorb any flick that has landed by now.
            while next_flick < flicks.len() && flicks[next_flick].at <= t {
                velocity = flicks[next_flick].velocity;
                next_flick += 1;
            }
            if velocity.abs() < self.stop_velocity {
                velocity = 0.0;
                // Idle: skip ahead to the next flick, if any.
                match flicks.get(next_flick) {
                    Some(f) if f.at <= until => {
                        t = f.at;
                        continue;
                    }
                    _ => break,
                }
            }
            events.push(WheelEvent {
                at: t,
                delta: velocity * dt_s,
            });
            velocity *= decay;
            t += dt;
        }
        events
    }
}

/// Plain (non-inertial) wheel scrolling: discrete notches at the user's
/// finger rate, each moving a fixed small distance.
///
/// `rate_hz` is how fast the user turns the wheel, `notch_px` the distance
/// per notch (the paper's Fig 7b shows deltas of ~2–4 px).
pub fn plain_scroll(
    start: SimTime,
    duration: SimDuration,
    rate_hz: f64,
    notch_px: f64,
) -> Vec<WheelEvent> {
    if rate_hz <= 0.0 {
        return Vec::new();
    }
    let dt = SimDuration::from_secs_f64(1.0 / rate_hz);
    let n = (duration.as_secs_f64() * rate_hz).floor() as u64;
    (0..n)
        .map(|i| WheelEvent {
            at: start + dt * i,
            delta: notch_px,
        })
        .collect()
}

/// Integrates wheel events into cumulative scroll positions
/// (`scrollTop` in the paper's trace schema).
pub fn scroll_positions(events: &[WheelEvent]) -> Vec<(SimTime, f64)> {
    let mut pos = 0.0;
    events
        .iter()
        .map(|e| {
            pos += e.delta;
            (e.at, pos.max(0.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_flick(v: f64) -> Vec<Flick> {
        vec![Flick {
            at: SimTime::ZERO,
            velocity: v,
        }]
    }

    #[test]
    fn flick_decays_to_rest() {
        let phys = ScrollPhysics::inertial();
        let events = phys.roll(&single_flick(20_000.0), SimTime::from_secs(10));
        assert!(!events.is_empty());
        // Deltas decay monotonically after the peak.
        for w in events.windows(2) {
            assert!(w[1].delta <= w[0].delta + 1e-9);
        }
        // Glide ends well before the 10 s horizon (τ = 0.325 s).
        assert!(events.last().unwrap().at < SimTime::from_secs(4));
    }

    #[test]
    fn inertial_deltas_dwarf_plain_deltas() {
        // The Fig 7 contrast: ~400 px vs ~4 px per event.
        let phys = ScrollPhysics::inertial();
        let inertial = phys.roll(&single_flick(24_000.0), SimTime::from_secs(5));
        let peak = inertial.iter().map(|e| e.delta).fold(0.0, f64::max);
        assert!(
            (300.0..500.0).contains(&peak),
            "peak inertial delta {peak:.0} px should be ~400"
        );
        let plain = plain_scroll(SimTime::ZERO, SimDuration::from_secs(5), 8.0, 4.0);
        let plain_peak = plain.iter().map(|e| e.delta).fold(0.0, f64::max);
        assert!(peak / plain_peak > 50.0, "ratio {}", peak / plain_peak);
    }

    #[test]
    fn new_flick_reenergizes_glide() {
        let phys = ScrollPhysics::inertial();
        let flicks = vec![
            Flick {
                at: SimTime::ZERO,
                velocity: 10_000.0,
            },
            Flick {
                at: SimTime::from_millis(500),
                velocity: 10_000.0,
            },
        ];
        let events = phys.roll(&flicks, SimTime::from_secs(5));
        // Find the delta just after the second flick: back near peak.
        let after = events
            .iter()
            .find(|e| e.at >= SimTime::from_millis(500))
            .unwrap();
        let peak = events[0].delta;
        assert!((after.delta - peak).abs() / peak < 0.05);
    }

    #[test]
    fn idle_gap_between_flicks_emits_nothing() {
        let phys = ScrollPhysics::inertial();
        let flicks = vec![
            Flick {
                at: SimTime::ZERO,
                velocity: 5_000.0,
            },
            Flick {
                at: SimTime::from_secs(30),
                velocity: 5_000.0,
            },
        ];
        let events = phys.roll(&flicks, SimTime::from_secs(40));
        // There must be a silent span between the two glides.
        let mut max_gap = SimDuration::ZERO;
        for w in events.windows(2) {
            max_gap = max_gap.max(w[1].at.saturating_since(w[0].at)).max(max_gap);
        }
        assert!(max_gap > SimDuration::from_secs(20));
    }

    #[test]
    fn backscroll_has_negative_deltas() {
        let phys = ScrollPhysics::inertial();
        let events = phys.roll(&single_flick(-8_000.0), SimTime::from_secs(5));
        assert!(events.iter().all(|e| e.delta < 0.0));
    }

    #[test]
    fn plain_scroll_spacing_and_count() {
        let events = plain_scroll(SimTime::ZERO, SimDuration::from_secs(2), 10.0, 3.0);
        assert_eq!(events.len(), 20);
        assert!(events.iter().all(|e| e.delta == 3.0));
        assert_eq!(
            plain_scroll(SimTime::ZERO, SimDuration::from_secs(1), 0.0, 3.0),
            vec![]
        );
    }

    #[test]
    fn positions_accumulate_and_clamp_at_top() {
        let events = vec![
            WheelEvent {
                at: SimTime::ZERO,
                delta: 100.0,
            },
            WheelEvent {
                at: SimTime::from_millis(20),
                delta: -250.0,
            },
        ];
        let pos = scroll_positions(&events);
        assert_eq!(pos[0].1, 100.0);
        assert_eq!(pos[1].1, 0.0, "cannot scroll above the top");
    }

    #[test]
    fn empty_flicks_produce_no_events() {
        let phys = ScrollPhysics::inertial();
        assert!(phys.roll(&[], SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn events_are_frame_spaced_during_glide() {
        let phys = ScrollPhysics::inertial();
        let events = phys.roll(&single_flick(20_000.0), SimTime::from_secs(5));
        let dt = phys.frame_interval.as_micros();
        for w in events.windows(2) {
            assert_eq!(w[1].at.as_micros() - w[0].at.as_micros(), dt);
        }
    }
}
