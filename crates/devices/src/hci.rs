//! Classical HCI timing models used to pace simulated users.
//!
//! Section 4.1.3 of the paper recommends simulating user interactions and
//! estimating per-interaction times "via various HCI models such as
//! Fitts', GOMS and ACT-R". This module implements the two workhorses:
//!
//! - **Fitts' law** for pointing movement time;
//! - the **Keystroke-Level Model** (KLM, the operator-level simplification
//!   of GOMS) for composite action times like "point, click, type".

use ids_simclock::SimDuration;

/// Fitts' law coefficients `MT = a + b · log2(D/W + 1)` (Shannon
/// formulation), with `a`, `b` in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittsParams {
    /// Intercept (reaction / initiation), seconds.
    pub a: f64,
    /// Slope per bit of index of difficulty, seconds.
    pub b: f64,
}

impl FittsParams {
    /// Conventional mouse-pointing coefficients (MacKenzie):
    /// `a = 0.03 s`, `b = 0.12 s/bit`.
    pub const MOUSE: FittsParams = FittsParams { a: 0.03, b: 0.12 };
    /// Touch pointing is faster per bit but has a higher intercept
    /// (finger travel), per FFitts-style calibrations.
    pub const TOUCH: FittsParams = FittsParams { a: 0.08, b: 0.09 };
    /// In-air gestures: large slope, the hand is unsupported.
    pub const GESTURE: FittsParams = FittsParams { a: 0.15, b: 0.22 };

    /// Movement time for a reach of `distance` to a target of `width`
    /// (same units; only the ratio matters).
    pub fn movement_time(&self, distance: f64, width: f64) -> SimDuration {
        let id = index_of_difficulty(distance, width);
        SimDuration::from_secs_f64(self.a + self.b * id)
    }
}

/// Shannon index of difficulty, bits: `log2(D/W + 1)`.
pub fn index_of_difficulty(distance: f64, width: f64) -> f64 {
    let d = distance.max(0.0);
    let w = width.max(1e-9);
    (d / w + 1.0).log2()
}

/// Mouse movement time with the default coefficients — the common case.
pub fn fitts_movement_time(distance: f64, width: f64) -> SimDuration {
    FittsParams::MOUSE.movement_time(distance, width)
}

/// Keystroke-Level-Model operators (Card, Moran & Newell), with the
/// standard catalogue times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KlmOp {
    /// Press a key or button (average skilled typist).
    Keystroke,
    /// Point with the mouse (average, when Fitts' inputs are unknown).
    Point,
    /// Press or release a mouse button.
    ButtonPress,
    /// Move hand between keyboard and mouse.
    Homing,
    /// Mentally prepare for the next unit action.
    MentalAct,
    /// Draw a straight line segment (per cm, approximated as fixed here).
    Draw,
}

impl KlmOp {
    /// Standard operator time.
    pub fn time(self) -> SimDuration {
        let secs = match self {
            KlmOp::Keystroke => 0.28, // average non-secretary typist
            KlmOp::Point => 1.10,
            KlmOp::ButtonPress => 0.10,
            KlmOp::Homing => 0.40,
            KlmOp::MentalAct => 1.35,
            KlmOp::Draw => 1.06,
        };
        SimDuration::from_secs_f64(secs)
    }
}

/// Total KLM time for a sequence of operators.
///
/// ```
/// use ids_devices::hci::{klm_sequence, KlmOp};
///
/// // M P B (think, point, click): 1.35 + 1.10 + 0.10 s.
/// let t = klm_sequence(&[KlmOp::MentalAct, KlmOp::Point, KlmOp::ButtonPress]);
/// assert_eq!(t.as_millis(), 2550);
/// ```
pub fn klm_sequence(ops: &[KlmOp]) -> SimDuration {
    ops.iter().map(|op| op.time()).sum()
}

/// KLM estimate for typing a string: one `Keystroke` per character plus a
/// leading `MentalAct` — the paper's text-box query path.
pub fn klm_type_text(text: &str) -> SimDuration {
    KlmOp::MentalAct.time() + KlmOp::Keystroke.time() * text.chars().count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_of_difficulty_monotone_in_distance() {
        assert!(index_of_difficulty(200.0, 20.0) > index_of_difficulty(100.0, 20.0));
        assert!(index_of_difficulty(100.0, 10.0) > index_of_difficulty(100.0, 20.0));
        // Zero distance → log2(1) = 0 bits.
        assert_eq!(index_of_difficulty(0.0, 20.0), 0.0);
    }

    #[test]
    fn fitts_zero_distance_is_just_intercept() {
        let t = FittsParams::MOUSE.movement_time(0.0, 20.0);
        assert_eq!(t.as_millis(), 30);
    }

    #[test]
    fn fitts_typical_reach_is_subsecond() {
        // 512 px to a 32 px target: ID ≈ log2(17) ≈ 4.09 bits.
        let t = fitts_movement_time(512.0, 32.0);
        let ms = t.as_millis();
        assert!((400..700).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn gesture_pointing_is_slowest() {
        let d = 300.0;
        let w = 30.0;
        let m = FittsParams::MOUSE.movement_time(d, w);
        let g = FittsParams::GESTURE.movement_time(d, w);
        assert!(g > m);
    }

    #[test]
    fn degenerate_width_does_not_panic() {
        let t = fitts_movement_time(100.0, 0.0);
        assert!(t.as_secs_f64().is_finite());
        assert!(t > SimDuration::ZERO);
    }

    #[test]
    fn klm_type_text_scales_with_length() {
        let short = klm_type_text("ab");
        let long = klm_type_text("abcdefgh");
        assert!(long > short);
        // 1.35 + 2×0.28 = 1.91 s.
        assert_eq!(short.as_millis(), 1910);
    }

    #[test]
    fn klm_sequence_sums_operators() {
        let t = klm_sequence(&[KlmOp::Homing, KlmOp::Point, KlmOp::ButtonPress]);
        assert_eq!(t.as_millis(), 1600);
        assert_eq!(klm_sequence(&[]), SimDuration::ZERO);
    }
}
