//! Pointer trajectory synthesis.
//!
//! A simulated user reaches for a target along a *minimum-jerk* path —
//! the standard model of voluntary human reaching (Flash & Hogan, 1985) —
//! sampled at the device's sensing rate, with the device's jitter and
//! drift processes superimposed. Frictionless devices (Leap Motion)
//! additionally emit spurious micro-movements. The resulting traces
//! reproduce the qualitative contrast of the paper's Fig 11: tight paths
//! for mouse/touch, wandering high-variance paths for in-air gestures.

use ids_simclock::rng::SimRng;
use ids_simclock::{SimDuration, SimTime};

use crate::hci::fitts_movement_time;
use crate::profile::DeviceProfile;

/// One pointer sample: where the sensor saw the hand at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointerSample {
    /// Sample timestamp.
    pub at: SimTime,
    /// Horizontal position, device units.
    pub x: f64,
    /// Vertical position, device units.
    pub y: f64,
}

/// A 2-D point in device units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Generates pointer trajectories for one device.
#[derive(Debug)]
pub struct PointerSimulator {
    profile: DeviceProfile,
    rng: SimRng,
    /// Accumulated drift offset (random walk, frictionless devices only).
    drift: Point,
}

impl PointerSimulator {
    /// Creates a simulator for `profile` with a dedicated RNG stream.
    pub fn new(profile: DeviceProfile, rng: SimRng) -> PointerSimulator {
        PointerSimulator {
            profile,
            rng,
            drift: Point::new(0.0, 0.0),
        }
    }

    /// The device being simulated.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Synthesizes a reach from `from` to `to` starting at `start`,
    /// targeting a widget of effective width `target_width`.
    ///
    /// Movement time follows Fitts' law; the nominal path is minimum-jerk;
    /// each sample adds device jitter, drift (for frictionless devices),
    /// and occasional spurious micro-gestures.
    pub fn reach(
        &mut self,
        start: SimTime,
        from: Point,
        to: Point,
        target_width: f64,
    ) -> Vec<PointerSample> {
        let distance = from.distance(to);
        let mt = fitts_movement_time(distance, target_width);
        let dt = self.profile.sample_interval();
        let n = (mt.as_secs_f64() / dt.as_secs_f64()).ceil().max(1.0) as usize;

        let mut samples = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let tau = i as f64 / n as f64;
            // Minimum-jerk position profile: s(τ) = 10τ³ − 15τ⁴ + 6τ⁵.
            let s = 10.0 * tau.powi(3) - 15.0 * tau.powi(4) + 6.0 * tau.powi(5);
            let nominal_x = from.x + (to.x - from.x) * s;
            let nominal_y = from.y + (to.y - from.y) * s;
            self.advance_drift(dt);
            let (jx, jy) = self.sample_noise();
            samples.push(PointerSample {
                at: start + dt * i as u64,
                x: nominal_x + jx + self.drift.x,
                y: nominal_y + jy + self.drift.y,
            });
        }
        samples
    }

    /// Synthesizes a *hold*: the user tries to keep the pointer still at
    /// `at_point` for `duration`. On frictionless devices this is where
    /// unintended queries come from — the sensor keeps seeing movement.
    pub fn hold(
        &mut self,
        start: SimTime,
        at_point: Point,
        duration: SimDuration,
    ) -> Vec<PointerSample> {
        let dt = self.profile.sample_interval();
        let n = (duration.as_secs_f64() / dt.as_secs_f64()).ceil().max(1.0) as usize;
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            self.advance_drift(dt);
            let (jx, jy) = self.sample_noise();
            samples.push(PointerSample {
                at: start + dt * i as u64,
                x: at_point.x + jx + self.drift.x,
                y: at_point.y + jy + self.drift.y,
            });
        }
        samples
    }

    fn advance_drift(&mut self, dt: SimDuration) {
        if self.profile.drift_std_per_s > 0.0 {
            let scale = self.profile.drift_std_per_s * dt.as_secs_f64().sqrt();
            self.drift.x += self.rng.normal(0.0, scale);
            self.drift.y += self.rng.normal(0.0, scale);
            // A user notices gross drift and re-centres; soft-clamp.
            self.drift.x *= 0.98;
            self.drift.y *= 0.98;
        }
    }

    fn sample_noise(&mut self) -> (f64, f64) {
        let mut jx = self.rng.normal(0.0, self.profile.jitter_std);
        let mut jy = self.rng.normal(0.0, self.profile.jitter_std);
        if self.profile.spurious_rate > 0.0 && self.rng.chance(self.profile.spurious_rate) {
            // A spurious micro-gesture: a burst several jitter-sigmas wide.
            jx += self.rng.normal(0.0, self.profile.jitter_std * 4.0);
            jy += self.rng.normal(0.0, self.profile.jitter_std * 4.0);
        }
        (jx, jy)
    }
}

/// Path-noise summary of a trace: mean squared deviation from the
/// straight from→to chord, the quantitative face of Fig 11.
pub fn path_wobble(samples: &[PointerSample]) -> f64 {
    if samples.len() < 3 {
        return 0.0;
    }
    let a = samples[0];
    let b = samples[samples.len() - 1];
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len2 = dx * dx + dy * dy;
    if len2 == 0.0 {
        // Degenerate chord (a hold): wobble is variance about the mean.
        let mx = samples.iter().map(|s| s.x).sum::<f64>() / samples.len() as f64;
        let my = samples.iter().map(|s| s.y).sum::<f64>() / samples.len() as f64;
        return samples
            .iter()
            .map(|s| (s.x - mx).powi(2) + (s.y - my).powi(2))
            .sum::<f64>()
            / samples.len() as f64;
    }
    samples
        .iter()
        .map(|s| {
            // Perpendicular distance to the chord.
            let t = ((s.x - a.x) * dx + (s.y - a.y) * dy) / len2;
            let px = a.x + t * dx;
            let py = a.y + t * dy;
            (s.x - px).powi(2) + (s.y - py).powi(2)
        })
        .sum::<f64>()
        / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn rng() -> SimRng {
        SimRng::seed(2024)
    }

    #[test]
    fn reach_starts_and_ends_near_endpoints() {
        let mut sim = PointerSimulator::new(DeviceProfile::mouse(), rng());
        let from = Point::new(700.0, 80.0);
        let to = Point::new(1050.0, 85.0);
        let trace = sim.reach(SimTime::ZERO, from, to, 20.0);
        assert!(trace.len() > 10);
        let first = trace.first().unwrap();
        let last = trace.last().unwrap();
        assert!(Point::new(first.x, first.y).distance(from) < 10.0);
        assert!(Point::new(last.x, last.y).distance(to) < 10.0);
    }

    #[test]
    fn samples_are_evenly_spaced_at_sensing_rate() {
        let mut sim = PointerSimulator::new(DeviceProfile::touch(), rng());
        let trace = sim.reach(
            SimTime::ZERO,
            Point::new(0.0, 0.0),
            Point::new(300.0, 0.0),
            30.0,
        );
        let dt = DeviceProfile::touch().sample_interval().as_micros();
        for w in trace.windows(2) {
            assert_eq!(w[1].at.as_micros() - w[0].at.as_micros(), dt);
        }
    }

    #[test]
    fn leap_motion_wobbles_far_more_than_mouse() {
        // The Fig 11 contrast: same intended movement, very different noise.
        let from = Point::new(0.0, 0.0);
        let to = Point::new(300.0, 0.0);
        let mut mouse = PointerSimulator::new(DeviceProfile::mouse(), rng().split("m"));
        let mut leap = PointerSimulator::new(DeviceProfile::leap_motion(), rng().split("l"));
        let wm = path_wobble(&mouse.reach(SimTime::ZERO, from, to, 20.0));
        let wl = path_wobble(&leap.reach(SimTime::ZERO, from, to, 20.0));
        assert!(
            wl > wm * 10.0,
            "leap wobble {wl:.1} should dwarf mouse wobble {wm:.1}"
        );
    }

    #[test]
    fn hold_on_frictionless_device_keeps_moving() {
        let p = Point::new(100.0, 100.0);
        let dur = SimDuration::from_secs(2);
        let mut mouse = PointerSimulator::new(DeviceProfile::mouse(), rng().split("m"));
        let mut leap = PointerSimulator::new(DeviceProfile::leap_motion(), rng().split("l"));
        let hm = path_wobble(&mouse.hold(SimTime::ZERO, p, dur));
        let hl = path_wobble(&leap.hold(SimTime::ZERO, p, dur));
        assert!(
            hl > hm * 20.0,
            "leap hold variance {hl:.1} vs mouse {hm:.3}"
        );
    }

    #[test]
    fn longer_reaches_take_longer() {
        let mut sim = PointerSimulator::new(DeviceProfile::mouse(), rng());
        let short = sim.reach(
            SimTime::ZERO,
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            20.0,
        );
        let long = sim.reach(
            SimTime::ZERO,
            Point::new(0.0, 0.0),
            Point::new(800.0, 0.0),
            20.0,
        );
        assert!(long.len() > short.len());
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let make = || {
            let mut sim = PointerSimulator::new(DeviceProfile::leap_motion(), SimRng::seed(7));
            sim.reach(
                SimTime::ZERO,
                Point::new(0.0, 0.0),
                Point::new(100.0, 50.0),
                10.0,
            )
        };
        let a = make();
        let b = make();
        assert_eq!(a, b);
    }

    #[test]
    fn wobble_of_short_traces_is_zero() {
        assert_eq!(path_wobble(&[]), 0.0);
        let s = PointerSample {
            at: SimTime::ZERO,
            x: 0.0,
            y: 0.0,
        };
        assert_eq!(path_wobble(&[s, s]), 0.0);
    }
}
