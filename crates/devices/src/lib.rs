//! Input-device models for interactive data systems.
//!
//! Section 2.1 of *Evaluating Interactive Data Systems* argues that every
//! device–interface combination generates a unique workload: sensing rates
//! set the query issuing frequency, and the physics of each input channel
//! (friction for mouse/touch, none for in-air gestures) sets the noise
//! floor of query specification. This crate models those properties:
//!
//! - [`DeviceProfile`] — sensing rate, jitter process, and kinematic
//!   parameters for mouse, trackpad, touch (iPad), and Leap Motion.
//! - [`pointer`] — 2-D pointer trajectories (minimum-jerk reach + per-device
//!   jitter + gestural drift), reproducing the Fig 11 traces.
//! - [`scroll`] — inertial ("momentum") scrolling physics vs. plain wheel
//!   scrolling, reproducing the Fig 7 wheel-delta contrast.
//! - [`hci`] — classical HCI timing models used to pace simulated users:
//!   Fitts' law movement times and Keystroke-Level-Model operators
//!   (Section 4.1.3 endorses exactly these for simulation studies).

#![warn(missing_docs)]

pub mod hci;
pub mod pointer;
mod profile;
pub mod scroll;

pub use profile::{DeviceKind, DeviceProfile};
