//! Device profiles: the parameters that make each input channel's
//! workload unique.

use ids_simclock::SimDuration;

/// The input devices covered by the paper's case studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Desktop mouse.
    Mouse,
    /// Direct touch (iPad in case study 2).
    Touch,
    /// Laptop trackpad with inertial scrolling (case study 1).
    Trackpad,
    /// Leap Motion in-air gesture sensor.
    LeapMotion,
}

impl DeviceKind {
    /// All modeled devices.
    pub const ALL: [DeviceKind; 4] = [
        DeviceKind::Mouse,
        DeviceKind::Touch,
        DeviceKind::Trackpad,
        DeviceKind::LeapMotion,
    ];

    /// Lower-case label used in reports ("mouse", "touch", ...).
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::Mouse => "mouse",
            DeviceKind::Touch => "touch",
            DeviceKind::Trackpad => "trackpad",
            DeviceKind::LeapMotion => "leap motion",
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Kinematic and sensing parameters for one device.
///
/// The jitter figures are calibrated to the paper's Fig 11 traces: mouse
/// and touch wander by a couple of pixels around the intended path (the
/// friction of a physical surface stabilizes the hand), while the Leap
/// Motion — frictionless, in-air — wanders by tens of millimetres and
/// additionally *drifts*, producing the unintended repeated queries the
/// paper highlights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Which device this profiles.
    pub kind: DeviceKind,
    /// Sensor sampling rate, Hz. Sets the maximum query issuing frequency.
    pub sensing_rate_hz: f64,
    /// Standard deviation of per-sample positional noise, device units
    /// (px for mouse/touch/trackpad, mm for Leap Motion).
    pub jitter_std: f64,
    /// Standard deviation of the random-walk drift per second, device
    /// units. Zero for devices stabilized by surface friction.
    pub drift_std_per_s: f64,
    /// Whether the interaction is stabilized by physical friction.
    pub has_friction: bool,
    /// Probability per sample of a spurious "micro-gesture" the sensor
    /// interprets as intentional movement (Leap Motion sensitivity).
    pub spurious_rate: f64,
}

impl DeviceProfile {
    /// Standard mouse profile: 125 Hz polling, pixel-level noise.
    pub const fn mouse() -> DeviceProfile {
        DeviceProfile {
            kind: DeviceKind::Mouse,
            sensing_rate_hz: 125.0,
            jitter_std: 1.2,
            drift_std_per_s: 0.0,
            has_friction: true,
            spurious_rate: 0.0,
        }
    }

    /// iPad touch profile: 60 Hz legacy sensing (the paper notes the
    /// original iPad sensed at 30 Hz and newer panels reach 120 Hz; 60 Hz
    /// matches the study-era device).
    pub const fn touch() -> DeviceProfile {
        DeviceProfile {
            kind: DeviceKind::Touch,
            sensing_rate_hz: 60.0,
            jitter_std: 1.8,
            drift_std_per_s: 0.0,
            has_friction: true,
            spurious_rate: 0.0,
        }
    }

    /// 120 Hz touch profile (Apple Pencil-era panel) for QIF stress tests.
    pub const fn touch_120hz() -> DeviceProfile {
        DeviceProfile {
            sensing_rate_hz: 120.0,
            ..DeviceProfile::touch()
        }
    }

    /// MacBook trackpad profile used by the inertial-scroll study.
    pub const fn trackpad() -> DeviceProfile {
        DeviceProfile {
            kind: DeviceKind::Trackpad,
            sensing_rate_hz: 90.0,
            jitter_std: 0.8,
            drift_std_per_s: 0.0,
            has_friction: true,
            spurious_rate: 0.0,
        }
    }

    /// Leap Motion profile: high sampling, no friction, heavy jitter and
    /// drift, occasional spurious micro-gestures.
    pub const fn leap_motion() -> DeviceProfile {
        DeviceProfile {
            kind: DeviceKind::LeapMotion,
            sensing_rate_hz: 110.0,
            jitter_std: 9.0,
            drift_std_per_s: 25.0,
            has_friction: false,
            spurious_rate: 0.08,
        }
    }

    /// The default profile for a device kind.
    pub fn for_kind(kind: DeviceKind) -> DeviceProfile {
        match kind {
            DeviceKind::Mouse => Self::mouse(),
            DeviceKind::Touch => Self::touch(),
            DeviceKind::Trackpad => Self::trackpad(),
            DeviceKind::LeapMotion => Self::leap_motion(),
        }
    }

    /// Interval between sensor samples.
    pub fn sample_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.sensing_rate_hz.max(1.0))
    }

    /// Maximum queries per second this device can drive (its sensing
    /// rate) — the ceiling on query issuing frequency from Section 3.1.2.
    pub fn max_qif(&self) -> f64 {
        self.sensing_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(DeviceKind::Mouse.label(), "mouse");
        assert_eq!(DeviceKind::LeapMotion.to_string(), "leap motion");
        assert_eq!(DeviceKind::ALL.len(), 4);
    }

    #[test]
    fn friction_devices_have_low_jitter() {
        for kind in DeviceKind::ALL {
            let p = DeviceProfile::for_kind(kind);
            assert_eq!(p.kind, kind);
            if p.has_friction {
                assert!(p.jitter_std < 3.0);
                assert_eq!(p.drift_std_per_s, 0.0);
            }
        }
        let leap = DeviceProfile::leap_motion();
        assert!(!leap.has_friction);
        assert!(leap.jitter_std > DeviceProfile::mouse().jitter_std * 4.0);
        assert!(leap.drift_std_per_s > 0.0);
    }

    #[test]
    fn sample_interval_inverts_rate() {
        let p = DeviceProfile::mouse();
        assert_eq!(p.sample_interval().as_millis(), 8); // 1/125 s
        assert_eq!(DeviceProfile::touch().sample_interval().as_micros(), 16_667);
    }

    #[test]
    fn high_rate_touch_has_higher_qif_ceiling() {
        assert!(DeviceProfile::touch_120hz().max_qif() > DeviceProfile::touch().max_qif());
    }
}
