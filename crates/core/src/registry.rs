//! The reproduction registry: every table and figure of the paper mapped
//! to the module that implements it and the bench/binary target that
//! regenerates it. Also renders the paper's own Tables 5 and 6 (the
//! case-study summaries), which are registry content themselves.

use crate::report::Table;

/// Kind of paper artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A numbered table.
    Table,
    /// A numbered figure.
    Figure,
}

/// One paper artifact and its reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Kind.
    pub kind: ArtifactKind,
    /// Paper number ("7" for Table 7 / Fig 7 depending on kind).
    pub number: &'static str,
    /// Short title.
    pub title: &'static str,
    /// Implementing module(s).
    pub modules: &'static str,
    /// How to regenerate (repro binary flag / bench name), empty for
    /// illustrations with no data series.
    pub regenerate: &'static str,
}

/// Every table and figure in the paper.
pub const ARTIFACTS: &[Artifact] = &[
    Artifact {
        kind: ArtifactKind::Figure,
        number: "1",
        title: "Metric taxonomy",
        modules: "ids_metrics::taxonomy",
        regenerate: "repro --figure 1",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "2",
        title: "LCV cascade (illustration)",
        modules: "ids_metrics::lcv",
        regenerate: "",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "3",
        title: "QIF/backend trade-off quadrants",
        modules: "ids_metrics::qif",
        regenerate: "repro --figure 3",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "4",
        title: "In-person vs remote decision",
        modules: "ids_study::design",
        regenerate: "repro --figure 4",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "5",
        title: "Study design by metric",
        modules: "ids_study::design",
        regenerate: "repro --figure 5",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "6",
        title: "Scrolling interface (illustration)",
        modules: "ids_workload::scrolling",
        regenerate: "",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "7",
        title: "Wheel delta with/without inertia",
        modules: "ids_devices::scroll, ids_core::experiments::case1",
        regenerate: "repro --figure 7",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "8",
        title: "Scrolling speed per user",
        modules: "ids_workload::scrolling, ids_core::experiments::case1",
        regenerate: "repro --figure 8",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "9",
        title: "Selections vs backscrolls",
        modules: "ids_workload::scrolling, ids_core::experiments::case1",
        regenerate: "repro --figure 9",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "10",
        title: "Event vs timer fetch latency",
        modules: "ids_opt::loading, ids_core::experiments::case1",
        regenerate: "repro --figure 10",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "11",
        title: "Device jitter traces",
        modules: "ids_devices::pointer, ids_core::experiments::case2",
        regenerate: "repro --figure 11",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "12",
        title: "Crossfilter interface (illustration)",
        modules: "ids_workload::crossfilter",
        regenerate: "",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "13",
        title: "Latency per backend/opt/device",
        modules: "ids_opt::{skip,klfilter}, ids_core::experiments::case2",
        regenerate: "repro --figure 13",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "14",
        title: "Query issuing interval histograms",
        modules: "ids_metrics::qif, ids_core::experiments::case2",
        regenerate: "repro --figure 14",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "15",
        title: "LCV percentage per condition",
        modules: "ids_metrics::lcv, ids_core::experiments::case2",
        regenerate: "repro --figure 15",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "16",
        title: "Airbnb interface (illustration)",
        modules: "ids_workload::composite",
        regenerate: "",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "17",
        title: "Exploration loop (illustration)",
        modules: "ids_workload::composite",
        regenerate: "",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "18",
        title: "Zoom levels over time",
        modules: "ids_workload::composite, ids_core::experiments::case3",
        regenerate: "repro --figure 18",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "19",
        title: "Center movement per zoom",
        modules: "ids_workload::composite, ids_core::experiments::case3",
        regenerate: "repro --figure 19",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "20",
        title: "Filter-count CDF",
        modules: "ids_workload::composite, ids_core::experiments::case3",
        regenerate: "repro --figure 20",
    },
    Artifact {
        kind: ArtifactKind::Figure,
        number: "21",
        title: "Request/exploration CDFs",
        modules: "ids_workload::composite, ids_core::experiments::case3",
        regenerate: "repro --figure 21",
    },
    Artifact {
        kind: ArtifactKind::Table,
        number: "1",
        title: "Metrics 1997-2012",
        modules: "ids_study::survey",
        regenerate: "repro --table 1",
    },
    Artifact {
        kind: ArtifactKind::Table,
        number: "2",
        title: "Metrics 2012-present",
        modules: "ids_study::survey",
        regenerate: "repro --table 2",
    },
    Artifact {
        kind: ArtifactKind::Table,
        number: "3",
        title: "Metric selection guidelines",
        modules: "ids_metrics::selection",
        regenerate: "repro --table 3",
    },
    Artifact {
        kind: ArtifactKind::Table,
        number: "4",
        title: "Cognitive biases",
        modules: "ids_study::bias",
        regenerate: "repro --table 4",
    },
    Artifact {
        kind: ArtifactKind::Table,
        number: "5",
        title: "Case study summary",
        modules: "ids_core::registry",
        regenerate: "repro --table 5",
    },
    Artifact {
        kind: ArtifactKind::Table,
        number: "6",
        title: "Behaviors and metrics per case study",
        modules: "ids_core::registry",
        regenerate: "repro --table 6",
    },
    Artifact {
        kind: ArtifactKind::Table,
        number: "7",
        title: "Scrolling behavior statistics",
        modules: "ids_core::experiments::case1",
        regenerate: "repro --table 7",
    },
    Artifact {
        kind: ArtifactKind::Table,
        number: "8",
        title: "LCV for event & timer fetch",
        modules: "ids_core::experiments::case1",
        regenerate: "repro --table 8",
    },
    Artifact {
        kind: ArtifactKind::Table,
        number: "9",
        title: "Queries per interface widget",
        modules: "ids_core::experiments::case3",
        regenerate: "repro --table 9",
    },
    Artifact {
        kind: ArtifactKind::Table,
        number: "10",
        title: "Center-of-bounds ranges",
        modules: "ids_core::experiments::case3",
        regenerate: "repro --table 10",
    },
];

/// Finds an artifact.
pub fn find(kind: ArtifactKind, number: &str) -> Option<&'static Artifact> {
    ARTIFACTS
        .iter()
        .find(|a| a.kind == kind && a.number == number)
}

/// Renders the registry index.
pub fn render_index() -> String {
    let mut t = Table::new(["artifact", "title", "modules", "regenerate"]);
    for a in ARTIFACTS {
        let label = match a.kind {
            ArtifactKind::Table => format!("Table {}", a.number),
            ArtifactKind::Figure => format!("Fig {}", a.number),
        };
        let regen = if a.regenerate.is_empty() {
            "(illustration; mechanism implemented)"
        } else {
            a.regenerate
        };
        t.row([&label, a.title, a.modules, regen]);
    }
    t.render()
}

/// Table 5: the case-study summary, as in the paper.
pub fn render_table5() -> String {
    let mut t = Table::new([
        "name",
        "device",
        "query interface",
        "interaction",
        "trace",
        "query",
    ]);
    t.row([
        "inertial scrolling (S6)",
        "touch (trackpad)",
        "scroll",
        "browsing",
        "{timestamp, scrollTop, scrollNum, delta}",
        "select, join",
    ]);
    t.row([
        "crossfiltering (S7)",
        "mouse, touch (iPad), gesture (leap motion)",
        "slider",
        "linking & brushing",
        "{timestamp, minVal, maxVal, sliderIdx}",
        "count, aggregation",
    ]);
    t.row([
        "composite interface (S8)",
        "mouse",
        "textbox, slider, checkbox, map",
        "filtering & navigating",
        "{timestamp, tabURL, requestId, resourceType, type, status}",
        "select, join",
    ]);
    format!("Table 5: Case Study Summary\n{}", t.render())
}

/// Table 6: behaviors and metrics per case study.
pub fn render_table6() -> String {
    let mut t = Table::new(["interface", "behavior", "performance"]);
    t.row([
        "inertial scrolling",
        "scrolling speed",
        "latency constraint violation",
    ]);
    t.row(["", "no. of backscrolls", "latency"]);
    t.row([
        "crossfiltering",
        "sliding behavior",
        "query issuing frequency",
    ]);
    t.row([
        "",
        "querying behavior",
        "latency, latency constraint violation",
    ]);
    t.row(["composite interface", "exploration time, zooming", ""]);
    t.row(["", "dragging, filter conditions", "data request time"]);
    format!(
        "Table 6: Behaviors and Metrics in Case Studies\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_numbered_artifact() {
        // 21 figures and 10 tables in the paper.
        let figures = ARTIFACTS
            .iter()
            .filter(|a| a.kind == ArtifactKind::Figure)
            .count();
        let tables = ARTIFACTS
            .iter()
            .filter(|a| a.kind == ArtifactKind::Table)
            .count();
        assert_eq!(figures, 21);
        assert_eq!(tables, 10);
        for n in 1..=21 {
            assert!(
                find(ArtifactKind::Figure, &n.to_string()).is_some(),
                "Fig {n}"
            );
        }
        for n in 1..=10 {
            assert!(
                find(ArtifactKind::Table, &n.to_string()).is_some(),
                "Table {n}"
            );
        }
    }

    #[test]
    fn only_illustrations_lack_regeneration() {
        for a in ARTIFACTS {
            if a.regenerate.is_empty() {
                assert!(
                    a.title.contains("illustration"),
                    "{:?} {} lacks a regeneration target",
                    a.kind,
                    a.number
                );
            }
        }
    }

    #[test]
    fn renders() {
        assert!(render_index().contains("repro --figure 13"));
        assert!(render_table5().contains("crossfiltering"));
        assert!(render_table6().contains("query issuing frequency"));
    }
}
