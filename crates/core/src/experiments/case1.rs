//! Case study 1: inertial scrolling (Section 6).
//!
//! Reproduces: Fig 7 (wheel deltas with/without inertia), Fig 8 + Table 7
//! (scroll-speed statistics), Fig 9 (selections vs backscrolls), Fig 10
//! (event- vs timer-fetch latency across fetch sizes), Table 8 (latency
//! constraint violations).

use ids_devices::scroll::{plain_scroll, scroll_positions};
use ids_engine::{Backend, DiskBackend, Predicate, Projection, Query};
use ids_metrics::stats::Summary;
use ids_opt::loading::{event_fetch, timer_fetch, LoadingConfig, LoadingOutcome};
use ids_simclock::{SimDuration, SimTime};
use ids_workload::datasets;
use ids_workload::scrolling::{
    demand_curve, simulate_study, speed_stats, ScrollSession, SpeedStats, TUPLE_HEIGHT_PX,
};

use crate::report::{pct, Table};

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Case1Config {
    /// RNG seed.
    pub seed: u64,
    /// Number of simulated participants.
    pub users: usize,
    /// Movie-table cardinality.
    pub tuples: usize,
    /// Fetch sizes swept in Fig 10 / Table 8.
    pub fetch_sizes: [u64; 4],
    /// Browser + HTTP overhead added to each fetch (the paper measures
    /// from the frontend, where PostgreSQL round trips cost ~80 ms even
    /// for small LIMIT queries), milliseconds.
    pub client_overhead_ms: u64,
}

impl Case1Config {
    /// The paper's scale: 15 users, 4000 movies, sizes {12, 30, 58, 80}.
    pub fn paper() -> Case1Config {
        Case1Config {
            seed: 61,
            users: 15,
            tuples: datasets::MOVIE_ROWS,
            fetch_sizes: [12, 30, 58, 80],
            client_overhead_ms: 75,
        }
    }

    /// A fast scale for unit tests.
    pub fn smoke_test() -> Case1Config {
        Case1Config {
            seed: 61,
            users: 4,
            tuples: 600,
            fetch_sizes: [12, 30, 58, 80],
            client_overhead_ms: 75,
        }
    }
}

/// One strategy's Fig 10 / Table 8 numbers at one fetch size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyPoint {
    /// Tuples per fetch.
    pub fetch_size: u64,
    /// Mean latency over violating events, averaged across users (ms).
    pub avg_latency_ms: f64,
    /// Users (out of `users`) who saw at least one violation.
    pub violating_users: usize,
    /// Total violations across users.
    pub total_violations: usize,
}

/// The full case-study-1 report.
#[derive(Debug, Clone)]
pub struct Case1Report {
    /// Configuration used.
    pub config: Case1Config,
    /// Per-user speed statistics (Fig 8 / Table 7 input).
    pub speeds: Vec<SpeedStats>,
    /// Per-user `(selections, backscrolled selections, backscroll passes)` (Fig 9).
    pub selections: Vec<(usize, u64, u64)>,
    /// Fig 7 peak wheel deltas: `(inertial, plain)`.
    pub fig7_peaks: (f64, f64),
    /// Event-fetch sweep (Fig 10 / Table 8).
    pub event: Vec<StrategyPoint>,
    /// Timer-fetch sweep (Fig 10 / Table 8).
    pub timer: Vec<StrategyPoint>,
    /// Measured per-fetch execution cost on the disk backend (ms), by size.
    pub fetch_cost_ms: Vec<(u64, f64)>,
}

/// Runs the full case study.
pub fn run(config: &Case1Config) -> Case1Report {
    let sessions = {
        let _p = ids_obs::phase("case1.simulate");
        simulate_study(config.seed, config.users, config.tuples)
    };

    // --- Fig 7: one representative inertial trace vs plain scrolling ---
    let inertial_peak = sessions[0]
        .trace
        .records()
        .iter()
        .map(|r| r.delta.abs())
        .fold(0.0, f64::max);
    let plain = plain_scroll(SimTime::ZERO, SimDuration::from_secs(10), 8.0, 4.0);
    let plain_peak = plain.iter().map(|e| e.delta).fold(0.0, f64::max);
    // Sanity: plain positions integrate, too (exercised for the figure).
    let _ = scroll_positions(&plain);

    // --- Fig 8 / Table 7: speeds; Fig 9: selections ---
    let speeds: Vec<SpeedStats> = sessions.iter().map(speed_stats).collect();
    let selections: Vec<(usize, u64, u64)> = sessions
        .iter()
        .map(|s| {
            (
                s.selections.len(),
                s.backscrolled_selections,
                s.backscroll_passes,
            )
        })
        .collect();

    // --- Fig 10 / Table 8: loading strategies over the disk backend ---
    let _p = ids_obs::phase("case1.execute");
    let backend = DiskBackend::new();
    backend
        .database()
        .register(datasets::movies_sized(config.seed, config.tuples));
    let mut fetch_cost_ms = Vec::new();
    let mut event = Vec::new();
    let mut timer = Vec::new();
    for &size in &config.fetch_sizes {
        let exec = measure_fetch_cost(&backend, size, config.tuples)
            + SimDuration::from_millis(config.client_overhead_ms);
        fetch_cost_ms.push((size, exec.as_millis_f64()));
        let cfg = LoadingConfig {
            fetch_size: size,
            fetch_exec: exec,
            total_tuples: config.tuples as u64,
        };
        // Event fetch's cache limit is the paper's: the product of the
        // tuples to fetch and the query execution time — a lookahead of
        // only a handful of tuples, which is why acceleration bursts
        // violate it at every fetch size.
        let lookahead = ((size as f64) * exec.as_secs_f64()).round().max(1.0) as u64;
        event.push(sweep_point(size, &sessions, |d| {
            event_fetch(d, &cfg, lookahead)
        }));
        timer.push(sweep_point(size, &sessions, |d| {
            timer_fetch(d, &cfg, SimDuration::from_secs(1))
        }));
    }

    Case1Report {
        config: *config,
        speeds,
        selections,
        fig7_peaks: (inertial_peak, plain_peak),
        event,
        timer,
        fetch_cost_ms,
    }
}

/// Measures the disk backend's execution cost for one paginated fetch
/// (the paper's Q1), warm-cache, mid-table offset.
fn measure_fetch_cost(backend: &DiskBackend, fetch_size: u64, tuples: usize) -> SimDuration {
    let q = Query::select(
        "imdb",
        vec![
            Projection::column("poster"),
            Projection::title_with_year("title", "year"),
            Projection::column("director"),
            Projection::column("genre"),
            Projection::column("plot"),
            Projection::column("rating"),
        ],
        Predicate::True,
        Some(fetch_size as usize),
        tuples / 2,
    );
    // Warm the buffer pool once, then measure.
    let _ = backend.execute(&q).expect("query is valid");
    backend.execute(&q).expect("query is valid").cost
}

fn sweep_point<F>(fetch_size: u64, sessions: &[ScrollSession], strategy: F) -> StrategyPoint
where
    F: Fn(&[(SimTime, u64)]) -> LoadingOutcome,
{
    let mut latencies = Summary::new();
    let mut violating_users = 0usize;
    let mut total_violations = 0usize;
    for session in sessions {
        let demand = demand_curve(session);
        let outcome = strategy(&demand);
        let lcv = outcome.lcv(&demand);
        if lcv.any() {
            violating_users += 1;
        }
        total_violations += lcv.violations;
        latencies.push(outcome.avg_violation_wait().as_millis_f64());
    }
    StrategyPoint {
        fetch_size,
        avg_latency_ms: latencies.mean(),
        violating_users,
        total_violations,
    }
}

impl Case1Report {
    /// Table 7: range/mean/median of max and average scroll speed.
    pub fn render_table7(&self) -> String {
        let max_t = Summary::of(
            &self
                .speeds
                .iter()
                .map(|s| s.max_tuples_per_s)
                .collect::<Vec<_>>(),
        );
        let avg_t = Summary::of(
            &self
                .speeds
                .iter()
                .map(|s| s.avg_tuples_per_s)
                .collect::<Vec<_>>(),
        );
        let max_p = Summary::of(
            &self
                .speeds
                .iter()
                .map(|s| s.max_px_per_s)
                .collect::<Vec<_>>(),
        );
        let avg_p = Summary::of(
            &self
                .speeds
                .iter()
                .map(|s| s.avg_px_per_s)
                .collect::<Vec<_>>(),
        );
        let fmt = |s: &Summary| {
            let (lo, hi) = s.range().unwrap_or((0.0, 0.0));
            format!(
                "[{:.0}, {:.0}], {:.0}, {:.0}",
                lo,
                hi,
                s.mean(),
                s.median().unwrap_or(0.0)
            )
        };
        let mut t = Table::new([
            "unit",
            "range, mean, median of MAX",
            "range, mean, median of AVG",
        ]);
        t.row(["# pixels / sec", &fmt(&max_p), &fmt(&avg_p)]);
        t.row(["# tuples / sec", &fmt(&max_t), &fmt(&avg_t)]);
        format!("Table 7: Statistics for Scrolling Behavior\n{}", t.render())
    }

    /// Fig 8: per-user max and average speeds, sorted by max.
    pub fn render_fig8(&self) -> String {
        let mut rows: Vec<&SpeedStats> = self.speeds.iter().collect();
        rows.sort_by(|a, b| b.max_tuples_per_s.total_cmp(&a.max_tuples_per_s));
        let mut t = Table::new([
            "user",
            "max tuples/s",
            "avg tuples/s",
            "max px/s",
            "avg px/s",
        ]);
        for (i, s) in rows.iter().enumerate() {
            t.row([
                i.to_string(),
                format!("{:.0}", s.max_tuples_per_s),
                format!("{:.1}", s.avg_tuples_per_s),
                format!("{:.0}", s.max_px_per_s),
                format!("{:.0}", s.avg_px_per_s),
            ]);
        }
        format!(
            "Fig 8: Scrolling speed per user (sorted by max)\n{}",
            t.render()
        )
    }

    /// Fig 9: selections vs backscrolled selections per user.
    pub fn render_fig9(&self) -> String {
        let mut t = Table::new([
            "user",
            "movies selected",
            "backscrolled selections",
            "backscroll passes",
        ]);
        for (i, &(sel, back, passes)) in self.selections.iter().enumerate() {
            t.row([
                i.to_string(),
                sel.to_string(),
                back.to_string(),
                passes.to_string(),
            ]);
        }
        format!("Fig 9: Selections vs backscrolls per user\n{}", t.render())
    }

    /// Fig 7 summary: the inertial/plain wheel-delta contrast.
    pub fn render_fig7(&self) -> String {
        let (inertial, plain) = self.fig7_peaks;
        format!(
            "Fig 7: Scrolling with / without inertia\n\
             peak wheel delta with inertia:    {inertial:.0} px\n\
             peak wheel delta without inertia: {plain:.0} px\n\
             ratio: {:.0}x (paper: y-axis scale 400 vs 4)\n",
            inertial / plain.max(1e-9)
        )
    }

    /// Fig 10: average latency by strategy and fetch size.
    pub fn render_fig10(&self) -> String {
        let mut t = Table::new(["# tuples", "event fetch (ms)", "timer fetch (ms)"]);
        for (e, tm) in self.event.iter().zip(&self.timer) {
            t.row([
                e.fetch_size.to_string(),
                format!("{:.1}", e.avg_latency_ms),
                format!("{:.1}", tm.avg_latency_ms),
            ]);
        }
        format!(
            "Fig 10: Average loading latency vs tuples fetched\n{}",
            t.render()
        )
    }

    /// Table 8: violation counts.
    pub fn render_table8(&self) -> String {
        let sizes: Vec<String> = self.config.fetch_sizes.iter().map(u64::to_string).collect();
        let mut header = vec!["# tuples fetched".to_string()];
        header.extend(sizes);
        let mut t = Table::new(header);
        let row = |label: &str, f: &dyn Fn(&StrategyPoint) -> String, pts: &[StrategyPoint]| {
            let mut cells = vec![label.to_string()];
            cells.extend(pts.iter().map(f));
            cells
        };
        t.row(row(
            "# users (event)",
            &|p| p.violating_users.to_string(),
            &self.event,
        ));
        t.row(row(
            "# users (timer)",
            &|p| p.violating_users.to_string(),
            &self.timer,
        ));
        t.row(row(
            "# violations (event)",
            &|p| p.total_violations.to_string(),
            &self.event,
        ));
        t.row(row(
            "# violations (timer)",
            &|p| p.total_violations.to_string(),
            &self.timer,
        ));
        format!(
            "Table 8: Latency Constraint Violations for Event & Timer Fetch ({} users)\n{}",
            self.config.users,
            t.render()
        )
    }

    /// Full report: all case-1 artifacts.
    pub fn render(&self) -> String {
        let coverage = pct(
            self.selections.iter().filter(|&&(_, b, _)| b > 0).count() as f64
                / self.selections.len().max(1) as f64,
        );
        format!(
            "{}\n{}\n{}\n{}\n{}\n{}\nusers with overshoot backscrolls: {}\n\
             tuple height: {TUPLE_HEIGHT_PX} px\n",
            self.render_fig7(),
            self.render_fig8(),
            self.render_table7(),
            self.render_fig9(),
            self.render_fig10(),
            self.render_table8(),
            coverage,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Case1Report {
        run(&Case1Config::smoke_test())
    }

    #[test]
    fn fig7_contrast_holds() {
        let r = report();
        let (inertial, plain) = r.fig7_peaks;
        assert!(
            inertial / plain > 30.0,
            "inertia peak {inertial:.0} vs plain {plain:.0}"
        );
    }

    #[test]
    fn fig10_shape_event_flat_timer_decreasing() {
        let r = report();
        // Timer latency decreases (weakly) with fetch size and ends far
        // below its start.
        let timer: Vec<f64> = r.timer.iter().map(|p| p.avg_latency_ms).collect();
        assert!(
            timer.last().unwrap() < &(timer[0] / 4.0).max(1.0),
            "timer latencies {timer:?}"
        );
        // Event latency stays within one band across sizes.
        let event: Vec<f64> = r.event.iter().map(|p| p.avg_latency_ms).collect();
        let emax = event.iter().cloned().fold(0.0, f64::max);
        let emin = event.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(emax / emin.max(1e-9) < 10.0, "event latencies {event:?}");
        assert!(emax < 1_000.0, "event fetch stays in the ms regime");
    }

    #[test]
    fn table8_shape_event_violates_more_users_than_timer() {
        let r = report();
        for (e, t) in r.event.iter().zip(&r.timer) {
            assert!(
                e.violating_users >= t.violating_users,
                "size {}",
                e.fetch_size
            );
        }
        // Timer violations collapse as the fetch size grows.
        let t0 = r.timer.first().unwrap().total_violations;
        let t3 = r.timer.last().unwrap().total_violations;
        assert!(t3 <= t0);
        // Event fetch violates for almost everyone at every size.
        assert!(r
            .event
            .iter()
            .all(|p| p.violating_users >= r.config.users - 1));
    }

    #[test]
    fn fetch_cost_grows_with_size() {
        let r = report();
        let costs: Vec<f64> = r.fetch_cost_ms.iter().map(|&(_, c)| c).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{costs:?}");
        assert!(costs[0] > 0.0);
    }

    #[test]
    fn renders_contain_all_artifacts() {
        let r = report();
        let text = r.render();
        for needle in ["Fig 7", "Fig 8", "Table 7", "Fig 9", "Fig 10", "Table 8"] {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert!(text.contains("tuples / sec"));
    }

    #[test]
    fn determinism() {
        let a = run(&Case1Config::smoke_test());
        let b = run(&Case1Config::smoke_test());
        assert_eq!(a.fig7_peaks, b.fig7_peaks);
        assert_eq!(a.selections, b.selections);
        assert_eq!(a.event, b.event);
    }
}
