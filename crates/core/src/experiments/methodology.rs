//! The methodology artifacts: survey tables (1, 2), the metric taxonomy
//! and selection guidance (Fig 1, Fig 3, Table 3), study-design decision
//! procedures (Figs 4, 5), and the bias catalog (Table 4).

use ids_metrics::qif::QifQuadrant;
use ids_metrics::selection::when_to_use;
use ids_metrics::taxonomy::{render_tree, Metric};
use ids_simclock::SimDuration;
use ids_study::bias::{Bias, BiasSide};
use ids_study::design::{recommend_design, recommend_setting, SettingNeeds, TaskTraits};
use ids_study::survey::{render_table, Era};

use crate::report::Table;

/// Fig 1: the metric taxonomy tree.
pub fn render_fig1() -> String {
    format!("Fig 1: Metrics\n{}", render_tree())
}

/// Fig 3: the QIF × backend quadrant with example classifications.
pub fn render_fig3() -> String {
    let mut t = Table::new(["QIF (q/s)", "mean service", "quadrant", "guidance"]);
    let cases = [(50.0, 5u64), (50.0, 100), (5.0, 5), (5.0, 500)];
    for (qif, service_ms) in cases {
        let q = QifQuadrant::classify(qif, SimDuration::from_millis(service_ms), 40.0);
        t.row([
            format!("{qif}"),
            format!("{service_ms} ms"),
            format!("{q:?}"),
            q.guidance().to_string(),
        ]);
    }
    format!(
        "Fig 3: Trade-offs with backend and frontend performance\n{}",
        t.render()
    )
}

/// Fig 4: in-person vs remote decision, enumerated.
pub fn render_fig4() -> String {
    let mut t = Table::new(["control?", "device-dep?", "think-aloud?", "setting"]);
    for control in [false, true] {
        for device in [false, true] {
            for aloud in [false, true] {
                let s = recommend_setting(&SettingNeeds {
                    comparison_against_control: control,
                    device_dependent: device,
                    think_aloud: aloud,
                });
                t.row([
                    control.to_string(),
                    device.to_string(),
                    aloud.to_string(),
                    format!("{s:?}"),
                ]);
            }
        }
    }
    format!("Fig 4: In-person vs remote study design\n{}", t.render())
}

/// Fig 5: study design per metric.
pub fn render_fig5() -> String {
    let mut t = Table::new(["metric", "design"]);
    for m in Metric::ALL {
        let d = recommend_design(m, &TaskTraits::default());
        t.row([m.name().to_string(), format!("{d:?}")]);
    }
    format!("Fig 5: Study design guidance by metric\n{}", t.render())
}

/// Table 1 rendering.
pub fn render_table1() -> String {
    format!(
        "Table 1: Metrics for Data Interaction 1997-2012\n{}",
        render_table(Era::Early)
    )
}

/// Table 2 rendering.
pub fn render_table2() -> String {
    format!(
        "Table 2: Metrics for Data Interaction 2012-present\n{}",
        render_table(Era::Modern)
    )
}

/// Table 3 rendering: metric selection guidelines.
pub fn render_table3() -> String {
    let mut t = Table::new(["metric", "when to use"]);
    for m in Metric::ALL {
        t.row([m.name(), when_to_use(m)]);
    }
    format!("Table 3: Guidelines for Selecting Metrics\n{}", t.render())
}

/// Table 4 rendering: cognitive biases and mitigations.
pub fn render_table4() -> String {
    let mut t = Table::new(["side", "bias", "mitigation"]);
    for b in Bias::ALL {
        let side = match b.side() {
            BiasSide::Participant => "participant",
            BiasSide::Experimenter => "experimenter",
        };
        t.row([side, &format!("{b:?}"), b.mitigation()]);
    }
    format!(
        "Table 4: Cognitive Biases during User Studies\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methodology_artifacts_render() {
        for (name, text) in [
            ("fig1", render_fig1()),
            ("fig3", render_fig3()),
            ("fig4", render_fig4()),
            ("fig5", render_fig5()),
            ("table1", render_table1()),
            ("table2", render_table2()),
            ("table3", render_table3()),
            ("table4", render_table4()),
        ] {
            assert!(text.lines().count() > 5, "{name} too short");
        }
    }

    #[test]
    fn fig3_covers_all_quadrants() {
        let text = render_fig3();
        for q in [
            "Good",
            "PerceivedSlow",
            "Unresponsive",
            "OverwhelmedThrottle",
        ] {
            assert!(text.contains(q), "missing {q}");
        }
    }

    #[test]
    fn fig4_has_exactly_one_remote_row() {
        let text = render_fig4();
        let remotes = text.matches("Remote").count();
        assert_eq!(remotes, 1, "only the all-false row is remote");
    }

    #[test]
    fn table3_marks_latency_always() {
        let text = render_table3();
        assert!(text.contains("always"));
        assert!(text.contains("Latency Constraint Violation"));
    }
}
