//! Case study 3: composite interfaces (Section 8).
//!
//! Reproduces: Table 9 (widget shares), Fig 18 (zoom levels over time),
//! Fig 19 / Table 10 (drag ranges per zoom), Fig 20 (filter-count CDF),
//! Fig 21 (request / exploration time CDFs), plus the prefetching
//! implications (≈ 18 prefetchable queries; Markov prefetcher hit rate).

use ids_metrics::stats::Cdf;
use ids_opt::prefetch::{evaluate_tile_strategy, zoom_budget, MarkovPrefetcher, TileStrategy};
use ids_simclock::SimDuration;
use ids_workload::composite::{
    drag_deltas, filter_counts, phase_times, simulate_study, widget_percentages, CompositeConfig,
    CompositeSession, Widget,
};

use crate::report::{pct, Table};

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Case3Config {
    /// RNG seed.
    pub seed: u64,
    /// Number of participants.
    pub users: usize,
    /// Minimum session duration.
    pub min_session: SimDuration,
}

impl Case3Config {
    /// The paper's scale: 15 users, ≥ 20 minutes each.
    pub fn paper() -> Case3Config {
        Case3Config {
            seed: 83,
            users: 15,
            min_session: SimDuration::from_secs(20 * 60),
        }
    }

    /// A fast scale for unit tests.
    pub fn smoke_test() -> Case3Config {
        Case3Config {
            seed: 83,
            users: 5,
            min_session: SimDuration::from_secs(5 * 60),
        }
    }
}

/// Per-zoom drag statistics (Table 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoomDragRange {
    /// Zoom level.
    pub zoom: i32,
    /// Latitude change range.
    pub lat: (f64, f64),
    /// Longitude change range.
    pub lng: (f64, f64),
    /// Number of drags observed.
    pub drags: usize,
}

/// The full case-study-3 report.
#[derive(Debug, Clone)]
pub struct Case3Report {
    /// Configuration used.
    pub config: Case3Config,
    /// Table 9 widget percentages.
    pub widget_pct: Vec<(Widget, f64)>,
    /// Fig 18: per-user zoom series `(t_secs, zoom)`.
    pub zoom_series: Vec<Vec<(f64, i32)>>,
    /// Table 10 drag ranges for zooms 11–14.
    pub drag_ranges: Vec<ZoomDragRange>,
    /// Fig 20 CDF of filter-condition counts.
    pub filter_cdf: Cdf,
    /// Fig 21 CDFs: request and exploration times (seconds).
    pub request_cdf: Cdf,
    /// Exploration-time CDF (seconds).
    pub explore_cdf: Cdf,
    /// Mean request and exploration times (seconds).
    pub means: (f64, f64),
    /// Markov vs demand-only tile hit rates.
    pub tile_hit_rates: (f64, f64),
    /// Zoom precompute budget shares.
    pub zoom_budget: Vec<(i32, f64)>,
}

/// Runs the full case study.
pub fn run(config: &Case3Config) -> Case3Report {
    let sessions = {
        let _p = ids_obs::phase("case3.simulate");
        simulate_study(
            config.seed,
            config.users,
            &CompositeConfig {
                min_duration: config.min_session,
                request_model: None,
            },
        )
    };
    let _p = ids_obs::phase("case3.analyze");

    let widget_pct = widget_percentages(&sessions);
    let zoom_series = sessions
        .iter()
        .map(|s| {
            ids_workload::composite::zoom_series(s)
                .into_iter()
                .map(|(t, z)| (t.as_secs_f64(), z))
                .collect()
        })
        .collect();
    let drag_ranges = drag_ranges_of(&sessions);
    let filter_cdf = Cdf::of(&filter_counts(&sessions));
    let (req, exp) = phase_times(&sessions);
    let means = (
        req.iter().sum::<f64>() / req.len().max(1) as f64,
        exp.iter().sum::<f64>() / exp.len().max(1) as f64,
    );
    let request_cdf = Cdf::of(&req);
    let explore_cdf = Cdf::of(&exp);

    let mut model = MarkovPrefetcher::new();
    model.train_sessions(&sessions);
    let markov = evaluate_tile_strategy(&sessions, &model, TileStrategy::Markov { top_k: 2 }, 512);
    let demand = evaluate_tile_strategy(&sessions, &model, TileStrategy::DemandOnly, 512);

    Case3Report {
        config: *config,
        widget_pct,
        zoom_series,
        drag_ranges,
        filter_cdf,
        request_cdf,
        explore_cdf,
        means,
        tile_hit_rates: (markov.hit_rate(), demand.hit_rate()),
        zoom_budget: zoom_budget(&sessions),
    }
}

fn drag_ranges_of(sessions: &[CompositeSession]) -> Vec<ZoomDragRange> {
    let deltas = drag_deltas(sessions);
    (11..=14)
        .filter_map(|zoom| {
            let at_zoom: Vec<(f64, f64)> = deltas
                .iter()
                .filter(|&&(z, _, _)| z == zoom)
                .map(|&(_, lat, lng)| (lat, lng))
                .collect();
            if at_zoom.is_empty() {
                return None;
            }
            let fold = |f: fn(f64, f64) -> f64, init: f64, pick: fn(&(f64, f64)) -> f64| {
                at_zoom.iter().map(pick).fold(init, f)
            };
            Some(ZoomDragRange {
                zoom,
                lat: (
                    fold(f64::min, f64::INFINITY, |d| d.0),
                    fold(f64::max, f64::NEG_INFINITY, |d| d.0),
                ),
                lng: (
                    fold(f64::min, f64::INFINITY, |d| d.1),
                    fold(f64::max, f64::NEG_INFINITY, |d| d.1),
                ),
                drags: at_zoom.len(),
            })
        })
        .collect()
}

impl Case3Report {
    /// Average number of adjacent queries prefetchable during exploration
    /// (the paper reports ≈ 18).
    pub fn prefetchable_queries(&self) -> f64 {
        let (req, exp) = self.means;
        if req <= 0.0 {
            return 0.0;
        }
        exp / req
    }

    /// Table 9 rendering.
    pub fn render_table9(&self) -> String {
        let mut t = Table::new(["interface", "percent"]);
        // The paper reports slider and checkbox together.
        let get = |w: Widget| {
            self.widget_pct
                .iter()
                .find(|&&(x, _)| x == w)
                .map(|&(_, p)| p)
                .unwrap_or(0.0)
        };
        t.row(["map", &format!("{:.1}%", get(Widget::Map))]);
        t.row([
            "slider, checkbox",
            &format!("{:.1}%", get(Widget::Slider) + get(Widget::Checkbox)),
        ]);
        t.row(["button", &format!("{:.1}%", get(Widget::Button))]);
        t.row(["text box", &format!("{:.1}%", get(Widget::TextBox))]);
        format!(
            "Table 9: Percentage of queries per interface\n{}",
            t.render()
        )
    }

    /// Fig 18 rendering: zoom dwell summary per user.
    pub fn render_fig18(&self) -> String {
        let mut t = Table::new(["user", "start", "min", "max", "% in 11-14"]);
        for (i, series) in self.zoom_series.iter().enumerate() {
            if series.is_empty() {
                continue;
            }
            let zs: Vec<i32> = series.iter().map(|&(_, z)| z).collect();
            let in_band = zs.iter().filter(|z| (11..=14).contains(*z)).count();
            t.row([
                i.to_string(),
                zs[0].to_string(),
                zs.iter().min().unwrap().to_string(),
                zs.iter().max().unwrap().to_string(),
                pct(in_band as f64 / zs.len() as f64),
            ]);
        }
        format!(
            "Fig 18: Zoom levels over time (summary per user)\n{}",
            t.render()
        )
    }

    /// Table 10 rendering.
    pub fn render_table10(&self) -> String {
        let mut t = Table::new(["zoom", "latitude", "longitude", "# drags"]);
        for r in &self.drag_ranges {
            t.row([
                r.zoom.to_string(),
                format!("[{:.3}, {:.3}]", r.lat.0, r.lat.1),
                format!("[{:.3}, {:.3}]", r.lng.0, r.lng.1),
                r.drags.to_string(),
            ]);
        }
        format!("Table 10: Ranges for center of bounds\n{}", t.render())
    }

    /// Fig 20 rendering.
    pub fn render_fig20(&self) -> String {
        let mut t = Table::new(["# filter conditions", "CDF"]);
        for k in 0..=14 {
            t.row([
                k.to_string(),
                format!("{:.2}", self.filter_cdf.fraction_le(k as f64)),
            ]);
        }
        format!("Fig 20: CDF of number of filter conditions\n{}", t.render())
    }

    /// Fig 21 rendering.
    pub fn render_fig21(&self) -> String {
        let mut t = Table::new(["time (s)", "request CDF", "exploration CDF"]);
        for x in [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0] {
            t.row([
                format!("{x}"),
                format!("{:.2}", self.request_cdf.fraction_le(x)),
                format!("{:.2}", self.explore_cdf.fraction_le(x)),
            ]);
        }
        format!(
            "Fig 21: CDFs for request and exploration time\n{}\
             mean request {:.2}s, mean exploration {:.2}s -> ~{:.0} prefetchable queries\n",
            t.render(),
            self.means.0,
            self.means.1,
            self.prefetchable_queries()
        )
    }

    /// Prefetching implications rendering.
    pub fn render_prefetch(&self) -> String {
        let (markov, demand) = self.tile_hit_rates;
        let mut budget = String::new();
        for &(z, share) in &self.zoom_budget {
            budget.push_str(&format!("  zoom {z}: {}\n", pct(share)));
        }
        format!(
            "Prefetching implications\n\
             tile hit rate, demand-only: {}\n\
             tile hit rate, Markov top-2: {}\n\
             precompute budget by zoom dwell:\n{budget}",
            pct(demand),
            pct(markov),
        )
    }

    /// Full report.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}\n{}\n{}",
            self.render_table9(),
            self.render_fig18(),
            self.render_table10(),
            self.render_fig20(),
            self.render_fig21(),
            self.render_prefetch(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> &'static Case3Report {
        use std::sync::OnceLock;
        static REPORT: OnceLock<Case3Report> = OnceLock::new();
        REPORT.get_or_init(|| {
            run(&Case3Config {
                seed: 83,
                users: 8,
                min_session: SimDuration::from_secs(15 * 60),
            })
        })
    }

    #[test]
    fn table9_map_dominates() {
        let r = report();
        let map = r
            .widget_pct
            .iter()
            .find(|&&(w, _)| w == Widget::Map)
            .unwrap()
            .1;
        assert!((50.0..75.0).contains(&map), "map share {map:.1}%");
    }

    #[test]
    fn table10_ranges_shrink_with_zoom() {
        let r = report();
        assert!(r.drag_ranges.len() >= 3, "need drags at several zooms");
        let span = |z: &ZoomDragRange| z.lng.1 - z.lng.0;
        let z11 = r.drag_ranges.iter().find(|z| z.zoom == 11);
        let z14 = r.drag_ranges.iter().find(|z| z.zoom == 14);
        if let (Some(a), Some(b)) = (z11, z14) {
            assert!(span(a) > span(b), "z11 {:?} vs z14 {:?}", a.lng, b.lng);
        }
    }

    #[test]
    fn fig20_cdf_is_monotone_with_70pct_at_4() {
        let r = report();
        let at4 = r.filter_cdf.fraction_le(4.0);
        assert!((0.5..0.95).contains(&at4), "P(<=4)={at4:.2}");
        let mut prev = 0.0;
        for k in 0..=14 {
            let v = r.filter_cdf.fraction_le(k as f64);
            assert!(v >= prev);
            prev = v;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig21_request_fast_exploration_slow() {
        let r = report();
        assert!(r.request_cdf.fraction_le(1.0) > 0.7);
        assert!(r.explore_cdf.fraction_gt(1.0) > 0.75);
        let p = r.prefetchable_queries();
        assert!((8.0..35.0).contains(&p), "prefetchable {p:.1}");
    }

    #[test]
    fn markov_beats_demand_only() {
        let r = report();
        let (markov, demand) = r.tile_hit_rates;
        assert!(markov > demand, "markov {markov:.3} vs demand {demand:.3}");
    }

    #[test]
    fn render_contains_all_artifacts() {
        let r = report();
        let text = r.render();
        for needle in [
            "Table 9",
            "Fig 18",
            "Table 10",
            "Fig 20",
            "Fig 21",
            "Prefetching",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn determinism() {
        let a = run(&Case3Config::smoke_test());
        let b = run(&Case3Config::smoke_test());
        assert_eq!(a.widget_pct, b.widget_pct);
        assert_eq!(a.means, b.means);
    }
}
