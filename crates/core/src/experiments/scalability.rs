//! Scalability and throughput: the Section 3.1.1 backend metrics,
//! demonstrated the way the paper demonstrates them.
//!
//! Two sweeps over the simulated cluster ([`ids_engine::distributed`]):
//!
//! - **node sweep** (the DICE Fig 7 discussion): execution time vs
//!   server count — near-linear speedup to a knee, diminishing returns
//!   after, located by
//!   [`ScalabilityCurve::diminishing_returns_knee`](ids_metrics::throughput::ScalabilityCurve);
//! - **dimension sweep** (the DICE Fig 6 discussion): adding `WHERE`
//!   conditions shrinks the data each operator touches, but the cost of
//!   evaluating the extra conditions eventually dominates the benefit
//!   of selectivity;
//! - **throughput sweep** (the Atlas measurement): queries per second vs
//!   server count.

use ids_engine::distributed::{cluster_throughput, Cluster};
use ids_engine::{Database, Predicate, Query};
use ids_metrics::throughput::{ScalabilityCurve, ScalePoint};
use ids_simclock::SimDuration;
use ids_workload::datasets;

use crate::report::Table;

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalabilityConfig {
    /// RNG seed.
    pub seed: u64,
    /// Rows in the fact table.
    pub rows: usize,
    /// Node counts swept.
    pub node_counts: [usize; 6],
    /// Maximum WHERE conditions in the dimension sweep.
    pub max_dims: usize,
}

impl ScalabilityConfig {
    /// Full-scale sweep.
    pub fn paper() -> ScalabilityConfig {
        ScalabilityConfig {
            seed: 94,
            rows: 400_000,
            node_counts: [1, 2, 4, 8, 16, 32],
            max_dims: 5,
        }
    }

    /// Reduced scale for tests.
    pub fn smoke_test() -> ScalabilityConfig {
        ScalabilityConfig {
            seed: 94,
            rows: 60_000,
            node_counts: [1, 2, 4, 8, 16, 32],
            max_dims: 5,
        }
    }
}

/// Results of the three sweeps.
#[derive(Debug, Clone)]
pub struct ScalabilityReport {
    /// Configuration used.
    pub config: ScalabilityConfig,
    /// `(nodes, elapsed)` node sweep.
    pub node_sweep: Vec<(usize, SimDuration)>,
    /// `(dimensions, elapsed, rows matched)` dimension sweep on 1 node.
    pub dim_sweep: Vec<(usize, SimDuration, u64)>,
    /// `(nodes, queries/s)` throughput sweep.
    pub throughput_sweep: Vec<(usize, f64)>,
}

/// The five numeric listing dimensions used by the dimension sweep, with
/// range predicates of roughly 50% selectivity each.
fn dim_predicates() -> Vec<Predicate> {
    vec![
        Predicate::between("lng", -120.0, -97.0),
        Predicate::between("lat", 28.0, 38.0),
        Predicate::between("price", 10.0, 120.0),
        Predicate::between("guests", 1.0, 4.0),
        Predicate::between("rating", 4.3, 5.0),
    ]
}

/// Runs all three sweeps.
pub fn run(config: &ScalabilityConfig) -> ScalabilityReport {
    let _p = ids_obs::phase("scalability.sweep");
    let db = Database::new();
    db.register(datasets::listings(config.seed, config.rows));
    let probe = Query::histogram(
        "listings",
        ids_engine::BinSpec::new("price", 0.0, 2_000.0, 20),
        Predicate::between("rating", 3.0, 5.0),
    );

    // Node sweep + throughput sweep share clusters.
    let mut node_sweep = Vec::new();
    let mut throughput_sweep = Vec::new();
    let mix: Vec<Query> = (0..8).map(|_| probe.clone()).collect();
    for &nodes in &config.node_counts {
        let cluster = Cluster::partition(&db, nodes).expect("partitionable tables");
        let out = cluster.execute(&probe).expect("mergeable probe");
        node_sweep.push((nodes, out.elapsed));
        throughput_sweep.push((
            nodes,
            cluster_throughput(&cluster, &mix).expect("mergeable mix"),
        ));
    }

    // Dimension sweep on a single node: add one predicate at a time.
    let single = Cluster::partition(&db, 1).expect("partitionable tables");
    let predicates = dim_predicates();
    let mut dim_sweep = Vec::new();
    for dims in 1..=config.max_dims.min(predicates.len()) {
        let filter = Predicate::and(predicates[..dims].iter().cloned());
        let q = Query::count("listings", filter);
        let out = single.execute(&q).expect("count is mergeable");
        let matched = out.result.scalar_count().unwrap_or(0);
        dim_sweep.push((dims, out.elapsed, matched));
    }

    ScalabilityReport {
        config: *config,
        node_sweep,
        dim_sweep,
        throughput_sweep,
    }
}

impl ScalabilityReport {
    /// The node sweep as a metrics-layer curve.
    pub fn curve(&self) -> ScalabilityCurve {
        ScalabilityCurve::new(
            self.node_sweep
                .iter()
                .map(|&(nodes, time)| ScalePoint {
                    resource: nodes as u64,
                    time,
                })
                .collect(),
        )
    }

    /// Renders both sweeps in a DICE-style table.
    pub fn render(&self) -> String {
        let curve = self.curve();
        let speedups = curve.speedups();
        let mut nodes_t = Table::new(["nodes", "elapsed (ms)", "speedup", "throughput (q/s)"]);
        for ((&(n, t), &(_, s)), &(_, qps)) in self
            .node_sweep
            .iter()
            .zip(&speedups)
            .zip(&self.throughput_sweep)
        {
            nodes_t.row([
                n.to_string(),
                format!("{:.1}", t.as_millis_f64()),
                format!("{s:.2}x"),
                format!("{qps:.1}"),
            ]);
        }
        let knee = curve
            .diminishing_returns_knee(0.2)
            .map(|k| k.to_string())
            .unwrap_or_else(|| "none".into());

        let mut dims_t = Table::new(["# WHERE conditions", "elapsed (ms)", "rows matched"]);
        for &(d, t, m) in &self.dim_sweep {
            dims_t.row([
                d.to_string(),
                format!("{:.1}", t.as_millis_f64()),
                m.to_string(),
            ]);
        }
        format!(
            "Scalability (node sweep; diminishing returns past {knee} nodes):\n{}\n\
             Dimension sweep (predicate cost vs selectivity benefit):\n{}",
            nodes_t.render(),
            dims_t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> &'static ScalabilityReport {
        use std::sync::OnceLock;
        static REPORT: OnceLock<ScalabilityReport> = OnceLock::new();
        REPORT.get_or_init(|| run(&ScalabilityConfig::smoke_test()))
    }

    #[test]
    fn node_sweep_has_a_knee() {
        let r = report();
        let knee = r.curve().diminishing_returns_knee(0.2);
        assert!(knee.is_some(), "speedups: {:?}", r.curve().speedups());
        let knee = knee.unwrap();
        assert!((4..=16).contains(&knee), "knee at {knee} nodes");
    }

    #[test]
    fn speedup_monotone_until_knee() {
        let r = report();
        let speedups = r.curve().speedups();
        let knee = r.curve().diminishing_returns_knee(0.2).unwrap_or(u64::MAX);
        for w in speedups.windows(2) {
            if w[1].0 <= knee {
                assert!(w[1].1 >= w[0].1, "{speedups:?}");
            }
        }
    }

    #[test]
    fn dimension_sweep_shows_cost_overtaking_selectivity() {
        let r = report();
        // Matched rows shrink monotonically with more conditions...
        let matched: Vec<u64> = r.dim_sweep.iter().map(|&(_, _, m)| m).collect();
        assert!(matched.windows(2).all(|w| w[1] <= w[0]), "{matched:?}");
        // ...but elapsed time eventually rises as predicate-evaluation
        // cost dominates (DICE Fig 6's shape).
        let times: Vec<f64> = r
            .dim_sweep
            .iter()
            .map(|&(_, t, _)| t.as_millis_f64())
            .collect();
        let min_idx = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(
            *times.last().unwrap() > times[min_idx],
            "adding dimensions should eventually cost more: {times:?}"
        );
    }

    #[test]
    fn throughput_improves_with_nodes() {
        let r = report();
        let first = r.throughput_sweep.first().unwrap().1;
        let best = r
            .throughput_sweep
            .iter()
            .map(|&(_, q)| q)
            .fold(0.0, f64::max);
        assert!(best > first * 2.0, "{:?}", r.throughput_sweep);
    }

    #[test]
    fn render_mentions_the_knee() {
        let text = report().render();
        assert!(text.contains("diminishing returns"));
        assert!(text.contains("WHERE conditions"));
    }
}
