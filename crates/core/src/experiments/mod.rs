//! The paper's three case studies as deterministic, parameterized
//! experiments, plus the survey/methodology artifacts.
//!
//! Each module exposes a `Config` (with a `smoke_test()` scale for tests
//! and a `paper()` scale matching the study), a `run` function producing
//! a typed report, and `render` methods that print the paper's tables
//! and figure series.

pub mod adaptive;
pub mod case1;
pub mod case2;
pub mod case3;
pub mod fleet;
pub mod methodology;
pub mod robustness;
pub mod scalability;
