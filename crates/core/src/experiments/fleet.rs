//! Fleet-scale serving: violation-rate-versus-concurrency curves for a
//! multi-tenant session fleet over one shared engine.
//!
//! The paper's evaluations are single-session; a deployed interactive
//! system serves thousands of sessions against shared workers and a
//! shared buffer pool. This experiment sweeps fleet concurrency and, at
//! each level, serves the *same* offered query stream twice through
//! `ids-serve`:
//!
//! - **admission on** — per-tenant token buckets, a bounded queue, and
//!   prefetch suppression shed the overload;
//! - **baseline** — every query is admitted and queues behind its
//!   predecessors, the fleet-scale version of the paper's Fig 2
//!   latency cascade.
//!
//! Both conditions replay one per-query cost sequence fixed by a single
//! chaos-wrapped execution pass, so the delta in tail latency and LCV
//! rate is attributable to admission control alone. With a nonzero
//! chaos intensity the fault plan also includes mid-run node-loss
//! windows, demonstrating that capacity loss degrades the fleet (later
//! drain, fatter tail) without wedging it.

use ids_chaos::FaultPlan;
use ids_engine::distributed::ClusterParams;
use ids_engine::{Backend, CostParams, DiskBackend, EvictionPolicy};
use ids_lakehouse::{Lakehouse, LcvPoint, SlowSpan, TenantLatency, TimeWindow};
use ids_obs::TraceEvent;
use ids_serve::{
    measure_costs, simulate_service, synthesize_fleet, AdmissionPolicy, ArrivalProcess,
    FleetOutcome, FleetSpec, ServeParams,
};
use ids_simclock::{SimDuration, SimTime};
use ids_workload::datasets;

use crate::report::{pct, Table};

/// Experiment parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// RNG seed (drives arrivals, traces, lanes, and fault plans).
    pub seed: u64,
    /// Rows in each tenant's table.
    pub rows: usize,
    /// Tenants the fleet is striped across.
    pub tenants: usize,
    /// Concurrency levels swept (sessions per level, ascending).
    pub session_counts: Vec<usize>,
    /// Cap on slider-move groups per session.
    pub max_groups: usize,
    /// Fraction of queries offered on the prefetch lane.
    pub prefetch_rate: f64,
    /// Mean gap between session arrivals (Poisson process).
    pub arrival_gap: SimDuration,
    /// Per-query latency budget (LCV threshold).
    pub latency_budget: SimDuration,
    /// Shared engine worker slots.
    pub workers: usize,
    /// Host threads used for fleet synthesis (output-invariant).
    pub threads: usize,
    /// Fault-plan intensity in `[0, 1]`; zero serves calm.
    pub chaos_intensity: f64,
    /// Sustained per-tenant admission rate, queries/second.
    pub tenant_rate: f64,
    /// Per-tenant burst allowance — sized to absorb one session's
    /// slider-drag burst, so a lone tenant is not rate-limited while
    /// overlapping tenants are.
    pub tenant_burst: f64,
    /// Bounded-queue depth for the admission condition.
    pub queue_limit: usize,
    /// Shared buffer-pool size, pages.
    pub pool_pages: usize,
    /// Shard groups the fleet's data and workers split into. `1` serves
    /// the classic single-engine path byte-identically; above that,
    /// per-query costs take their scatter-gather image (scan time over
    /// `shards`, plus the coordination term) and tenants queue on
    /// per-shard worker groups.
    pub shards: usize,
}

impl FleetConfig {
    /// Full-scale sweep: thousands of sessions at the top level.
    pub fn paper() -> FleetConfig {
        FleetConfig {
            seed: 271,
            rows: datasets::road_domain::ROWS,
            tenants: 8,
            session_counts: vec![256, 512, 1024, 2048],
            max_groups: 30,
            prefetch_rate: 0.25,
            arrival_gap: SimDuration::from_millis(40),
            latency_budget: SimDuration::from_millis(500),
            workers: 8,
            threads: 4,
            chaos_intensity: 0.0,
            tenant_rate: 1.5,
            tenant_burst: 60.0,
            queue_limit: 16,
            pool_pages: DiskBackend::DEFAULT_POOL_PAGES,
            shards: 1,
        }
    }

    /// Reduced scale for tests and the golden snapshot.
    pub fn smoke_test() -> FleetConfig {
        FleetConfig {
            seed: 271,
            rows: 2_000,
            tenants: 4,
            session_counts: vec![4, 8, 16, 32],
            max_groups: 8,
            prefetch_rate: 0.25,
            arrival_gap: SimDuration::from_millis(500),
            latency_budget: SimDuration::from_millis(1_000),
            workers: 4,
            threads: 1,
            chaos_intensity: 0.0,
            tenant_rate: 3.0,
            tenant_burst: 20.0,
            queue_limit: 8,
            pool_pages: 512,
            shards: 1,
        }
    }

    /// Per-tuple cost multiplier keeping the latency regime invariant
    /// when tables are scaled down (same trick as the robustness
    /// experiment).
    fn cost_scale(&self) -> f64 {
        datasets::road_domain::ROWS as f64 / self.rows.max(1) as f64
    }
}

/// Scales the per-tuple charges of a cost calibration.
fn scale_params(mut p: CostParams, k: f64) -> CostParams {
    let mul = |ns: u64| ((ns as f64) * k).round() as u64;
    p.tuple_scan_ns = mul(p.tuple_scan_ns);
    p.tuple_agg_ns = mul(p.tuple_agg_ns);
    p.join_build_ns = mul(p.join_build_ns);
    p.join_probe_ns = mul(p.join_probe_ns);
    p.predicate_eval_ns = mul(p.predicate_eval_ns);
    p
}

/// Nominal partial-aggregate groups each shard contributes to a merge —
/// one histogram's worth, matching the fleet's crossfilter queries.
const NOMINAL_MERGE_GROUPS: u64 = 32;

/// The scatter-gather image of one measured single-engine cost: the
/// scan parallelizes across `shards` while the coordination term
/// (coordinator startup, per-shard overhead, merging each shard's
/// partial groups — [`ClusterParams::coordination`]) does not. With
/// `shards == 1` the cost passes through untouched, keeping the classic
/// path byte-identical.
fn shard_cost(cost: SimDuration, shards: usize) -> SimDuration {
    if shards <= 1 {
        return cost;
    }
    let coordination =
        ClusterParams::default_cluster().coordination(shards, NOMINAL_MERGE_GROUPS * shards as u64);
    cost.mul_f64(1.0 / shards as f64) + coordination
}

/// One concurrency level's measurements.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Sessions served at this level.
    pub sessions: usize,
    /// Queries the fleet offered.
    pub offered: usize,
    /// Outcome under the admission policy.
    pub admission: FleetOutcome,
    /// Outcome with everything admitted.
    pub baseline: FleetOutcome,
}

/// Telemetry for the top concurrency level's admission condition,
/// computed *from the lakehouse*: the serve spans recorded during that
/// `simulate_service` pass are ingested into a [`Lakehouse`] and the
/// three canned [`ids_lakehouse::TelemetryQueries`] run over the
/// resulting columnar table with the engine's own vectorized kernels.
///
/// Empty (zero `span_rows`) when the obs recorder was disabled during
/// the run — capture is observation-only and never forces recording on.
#[derive(Debug, Clone, Default)]
pub struct FleetTelemetry {
    /// Concurrency level (sessions) the telemetry covers.
    pub sessions: usize,
    /// Serve spans ingested into the lakehouse.
    pub span_rows: usize,
    /// Blocks the canned queries skipped via zone maps.
    pub blocks_pruned: u64,
    /// Blocks the canned queries actually scanned.
    pub blocks_scanned: u64,
    /// `p99_by_tenant` over the whole level.
    pub p99: Vec<TenantLatency>,
    /// `lcv_over_window` trajectory.
    pub lcv: Vec<LcvPoint>,
    /// `slowest_spans` leaderboard.
    pub slowest: Vec<SlowSpan>,
    /// Bucket width used for the LCV trajectory, virtual microseconds.
    pub lcv_window_us: u64,
}

impl FleetTelemetry {
    /// Ingests the captured serve spans and runs the canned queries.
    /// Returns an empty telemetry block if nothing was captured (the
    /// recorder was off) or a query failed — telemetry must never take
    /// the experiment down.
    fn from_events(
        events: &[TraceEvent],
        tracks: &[String],
        sessions: usize,
        lcv_window: SimDuration,
    ) -> FleetTelemetry {
        // Keep only serve spans: the recorder is process-global, so the
        // capture window may also contain engine spans (or, under a
        // parallel test harness, spans from unrelated runs).
        let serve_spans: Vec<TraceEvent> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Span { cat, .. } if *cat == "serve"))
            .cloned()
            .collect();
        if serve_spans.is_empty() {
            return FleetTelemetry::default();
        }
        let mut lake = Lakehouse::new();
        let stats = lake.ingest_events(&serve_spans, tracks);
        let Ok(mut queries) = lake.queries() else {
            return FleetTelemetry::default();
        };
        let lcv_window_us = lcv_window.as_micros().max(1);
        let (Ok(p99), Ok(lcv), Ok(slowest)) = (
            queries.p99_by_tenant(TimeWindow::all()),
            queries.lcv_over_window(lcv_window_us),
            queries.slowest_spans(5),
        ) else {
            return FleetTelemetry::default();
        };
        let kernel = queries.kernel_stats();
        FleetTelemetry {
            sessions,
            span_rows: stats.spans,
            blocks_pruned: kernel.blocks_pruned,
            blocks_scanned: kernel.blocks_scanned,
            p99,
            lcv,
            slowest,
            lcv_window_us,
        }
    }
}

/// The full concurrency-scaling report.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Configuration used.
    pub config: FleetConfig,
    /// One point per concurrency level, ascending.
    pub points: Vec<FleetPoint>,
    /// Lakehouse telemetry for the top level's admission condition.
    pub telemetry: FleetTelemetry,
}

/// Runs the sweep.
pub fn run(config: &FleetConfig) -> FleetReport {
    let _p = ids_obs::phase("fleet.sweep");
    let params = ServeParams {
        workers: config.workers,
        latency_budget: config.latency_budget,
        deadline: false,
        shards: config.shards.max(1),
    };
    let admission_policy = AdmissionPolicy {
        tenant_rate: config.tenant_rate,
        tenant_burst: config.tenant_burst,
        queue_limit: config.queue_limit,
        prefetch_queue_limit: 0,
    };
    let mut points = Vec::new();
    let mut telemetry = FleetTelemetry::default();
    let top_level = config.session_counts.len().saturating_sub(1);
    for (level, &sessions) in config.session_counts.iter().enumerate() {
        let spec = FleetSpec {
            seed: config.seed,
            sessions,
            tenants: config.tenants,
            arrival: ArrivalProcess::Poisson {
                mean_gap: config.arrival_gap,
            },
            max_groups: config.max_groups,
            prefetch_rate: config.prefetch_rate,
        };
        let offered = synthesize_fleet(&spec, config.threads);

        // One shared engine per level: every tenant's table goes through
        // the same buffer pool, so concurrency genuinely widens the
        // working set.
        let disk = DiskBackend::with_config(
            scale_params(CostParams::disk_default(), config.cost_scale()),
            config.pool_pages,
            EvictionPolicy::Lru,
        );
        let db = disk.database();
        for tenant in 0..config.tenants {
            db.register(datasets::road_network_named(
                &FleetSpec::tenant_table(tenant),
                config.seed,
                config.rows,
            ));
        }

        let horizon = offered
            .last()
            .map(|q| q.at.saturating_since(SimTime::ZERO))
            .unwrap_or(SimDuration::ZERO);
        let plan = if config.chaos_intensity > 0.0 {
            FaultPlan::storm_with_node_loss(
                config.seed,
                config.chaos_intensity,
                horizon,
                config.workers,
            )
        } else {
            FaultPlan::calm(config.seed)
        };

        let costs: Vec<SimDuration> =
            measure_costs(&disk, Some(&disk), &offered, &plan, config.latency_budget)
                .into_iter()
                .map(|c| shard_cost(c, config.shards))
                .collect();
        // Delta-capture the admission condition's serve spans at the top
        // concurrency level: everything the recorder picks up between
        // these two marks is this `simulate_service` call (plus any
        // non-serve noise, filtered out during ingestion).
        let mark = ids_obs::recorder().event_count();
        let admission = simulate_service(&offered, &costs, &admission_policy, &plan, &params);
        if level == top_level {
            let events = ids_obs::recorder().events_since(mark);
            let tracks = ids_obs::recorder().tracks();
            // LCV trajectory bucket: four budgets wide, so a bucket is
            // coarse enough to hold several spans but fine enough to
            // show the overload ramp.
            let lcv_window =
                SimDuration::from_micros(config.latency_budget.as_micros().saturating_mul(4));
            telemetry = FleetTelemetry::from_events(&events, &tracks, sessions, lcv_window);
        }
        let baseline = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &plan,
            &params,
        );
        points.push(FleetPoint {
            sessions,
            offered: offered.len(),
            admission,
            baseline,
        });
    }
    FleetReport {
        config: config.clone(),
        points,
        telemetry,
    }
}

impl FleetReport {
    /// Renders the concurrency-scaling table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "sessions", "offered", "adm q/s", "shed", "LCV adm", "LCV base", "p99 adm", "p99 base",
        ]);
        for p in &self.points {
            t.row([
                p.sessions.to_string(),
                p.offered.to_string(),
                format!("{:.1}", p.admission.admitted_qps),
                pct(p.admission.shed_fraction()),
                pct(p.admission.lcv.fraction()),
                pct(p.baseline.lcv.fraction()),
                format!("{}ms", p.admission.p99.as_millis()),
                format!("{}ms", p.baseline.p99.as_millis()),
            ]);
        }
        format!(
            "Fleet serving: admission control vs open queueing \
             ({} tenants, {} workers, budget {} ms, chaos {:.2}):\n{}",
            self.config.tenants,
            self.config.workers,
            self.config.latency_budget.as_millis(),
            self.config.chaos_intensity,
            t.section("fleet: concurrency scaling")
        )
    }

    /// Renders the lakehouse telemetry for the top level's admission
    /// condition: the three canned queries, executed over the spans
    /// table with the engine's vectorized kernels. Separate from
    /// [`render`](FleetReport::render) so the concurrency-scaling table
    /// stays byte-stable whether or not the recorder was on.
    pub fn render_telemetry(&self) -> String {
        let tel = &self.telemetry;
        if tel.span_rows == 0 {
            return "Fleet telemetry: no serve spans captured \
                    (obs recorder disabled during the run).\n"
                .to_string();
        }
        let mut p99 = Table::new(["tenant", "spans", "violated", "p99"]);
        for t in &tel.p99 {
            p99.row([
                t.tenant.clone(),
                t.spans.to_string(),
                t.violated.to_string(),
                format!("{}ms", t.p99_us / 1_000),
            ]);
        }
        let mut lcv = Table::new(["t", "total", "violations", "LCV"]);
        for p in &tel.lcv {
            lcv.row([
                format!("{}s", p.t_us / 1_000_000),
                p.total.to_string(),
                p.violations.to_string(),
                pct(p.lcv()),
            ]);
        }
        let mut slow = Table::new(["span", "tenant", "start", "dur"]);
        for s in &tel.slowest {
            slow.row([
                s.name.clone(),
                s.tenant.clone(),
                format!("{}ms", s.start_us / 1_000),
                format!("{}ms", s.dur_us / 1_000),
            ]);
        }
        format!(
            "Fleet telemetry via lakehouse ({} sessions, {} spans, \
             blocks scanned {} / pruned {}):\n{}{}{}",
            tel.sessions,
            tel.span_rows,
            tel.blocks_scanned,
            tel.blocks_pruned,
            p99.section("fleet telemetry: p99 by tenant (lakehouse query)"),
            lcv.section("fleet telemetry: LCV over time (fused filter+bin)"),
            slow.section("fleet telemetry: slowest spans"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> &'static FleetReport {
        use std::sync::OnceLock;
        static REPORT: OnceLock<FleetReport> = OnceLock::new();
        REPORT.get_or_init(|| run(&FleetConfig::smoke_test()))
    }

    #[test]
    fn offered_load_grows_with_concurrency() {
        let offered: Vec<usize> = report().points.iter().map(|p| p.offered).collect();
        assert!(offered.windows(2).all(|w| w[1] > w[0]), "{offered:?}");
    }

    #[test]
    fn conservation_holds_at_every_level() {
        for p in &report().points {
            assert_eq!(
                p.admission.admitted + p.admission.shed.total(),
                p.offered,
                "at {} sessions",
                p.sessions
            );
            assert_eq!(p.baseline.admitted, p.offered);
            assert_eq!(p.baseline.shed.total(), 0);
        }
    }

    #[test]
    fn admission_flattens_tail_at_high_concurrency() {
        let top = report().points.last().unwrap();
        assert!(
            top.admission.p99 < top.baseline.p99,
            "admission p99 {:?} must beat baseline {:?}",
            top.admission.p99,
            top.baseline.p99
        );
        assert!(
            top.admission.lcv.fraction() < top.baseline.lcv.fraction(),
            "admission LCV {} must beat baseline {}",
            top.admission.lcv.fraction(),
            top.baseline.lcv.fraction()
        );
        assert!(top.admission.shed.total() > 0, "overload must shed");
    }

    #[test]
    fn render_is_a_full_table() {
        let text = report().render();
        assert!(text.contains("fleet: concurrency scaling"));
        assert!(text.contains("LCV adm"));
        for p in &report().points {
            assert!(text.contains(&p.sessions.to_string()));
        }
    }

    #[test]
    fn telemetry_is_empty_and_says_so_when_recorder_is_dark() {
        // The shared `report()` runs with the recorder in whatever state
        // the harness leaves it; run a dedicated dark sweep instead.
        let mut config = FleetConfig::smoke_test();
        config.session_counts = vec![4];
        config.max_groups = 4;
        if ids_obs::enabled() {
            // Another test enabled the global recorder; nothing to
            // assert about the dark path here.
            return;
        }
        let report = run(&config);
        assert_eq!(report.telemetry.span_rows, 0);
        assert!(report
            .render_telemetry()
            .contains("no serve spans captured"));
    }
}
