//! Fleet-scale serving: violation-rate-versus-concurrency curves for a
//! multi-tenant session fleet over one shared engine.
//!
//! The paper's evaluations are single-session; a deployed interactive
//! system serves thousands of sessions against shared workers and a
//! shared buffer pool. This experiment sweeps fleet concurrency and, at
//! each level, serves the *same* offered query stream twice through
//! `ids-serve`:
//!
//! - **admission on** — per-tenant token buckets, a bounded queue, and
//!   prefetch suppression shed the overload;
//! - **baseline** — every query is admitted and queues behind its
//!   predecessors, the fleet-scale version of the paper's Fig 2
//!   latency cascade.
//!
//! Both conditions replay one per-query cost sequence fixed by a single
//! chaos-wrapped execution pass, so the delta in tail latency and LCV
//! rate is attributable to admission control alone. With a nonzero
//! chaos intensity the fault plan also includes mid-run node-loss
//! windows, demonstrating that capacity loss degrades the fleet (later
//! drain, fatter tail) without wedging it.

use ids_chaos::FaultPlan;
use ids_engine::{Backend, CostParams, DiskBackend, EvictionPolicy};
use ids_serve::{
    measure_costs, simulate_service, synthesize_fleet, AdmissionPolicy, ArrivalProcess,
    FleetOutcome, FleetSpec, ServeParams,
};
use ids_simclock::{SimDuration, SimTime};
use ids_workload::datasets;

use crate::report::{pct, Table};

/// Experiment parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// RNG seed (drives arrivals, traces, lanes, and fault plans).
    pub seed: u64,
    /// Rows in each tenant's table.
    pub rows: usize,
    /// Tenants the fleet is striped across.
    pub tenants: usize,
    /// Concurrency levels swept (sessions per level, ascending).
    pub session_counts: Vec<usize>,
    /// Cap on slider-move groups per session.
    pub max_groups: usize,
    /// Fraction of queries offered on the prefetch lane.
    pub prefetch_rate: f64,
    /// Mean gap between session arrivals (Poisson process).
    pub arrival_gap: SimDuration,
    /// Per-query latency budget (LCV threshold).
    pub latency_budget: SimDuration,
    /// Shared engine worker slots.
    pub workers: usize,
    /// Host threads used for fleet synthesis (output-invariant).
    pub threads: usize,
    /// Fault-plan intensity in `[0, 1]`; zero serves calm.
    pub chaos_intensity: f64,
    /// Sustained per-tenant admission rate, queries/second.
    pub tenant_rate: f64,
    /// Per-tenant burst allowance — sized to absorb one session's
    /// slider-drag burst, so a lone tenant is not rate-limited while
    /// overlapping tenants are.
    pub tenant_burst: f64,
    /// Bounded-queue depth for the admission condition.
    pub queue_limit: usize,
    /// Shared buffer-pool size, pages.
    pub pool_pages: usize,
}

impl FleetConfig {
    /// Full-scale sweep: thousands of sessions at the top level.
    pub fn paper() -> FleetConfig {
        FleetConfig {
            seed: 271,
            rows: datasets::road_domain::ROWS,
            tenants: 8,
            session_counts: vec![256, 512, 1024, 2048],
            max_groups: 30,
            prefetch_rate: 0.25,
            arrival_gap: SimDuration::from_millis(40),
            latency_budget: SimDuration::from_millis(500),
            workers: 8,
            threads: 4,
            chaos_intensity: 0.0,
            tenant_rate: 1.5,
            tenant_burst: 60.0,
            queue_limit: 16,
            pool_pages: DiskBackend::DEFAULT_POOL_PAGES,
        }
    }

    /// Reduced scale for tests and the golden snapshot.
    pub fn smoke_test() -> FleetConfig {
        FleetConfig {
            seed: 271,
            rows: 2_000,
            tenants: 4,
            session_counts: vec![4, 8, 16, 32],
            max_groups: 8,
            prefetch_rate: 0.25,
            arrival_gap: SimDuration::from_millis(500),
            latency_budget: SimDuration::from_millis(1_000),
            workers: 4,
            threads: 1,
            chaos_intensity: 0.0,
            tenant_rate: 3.0,
            tenant_burst: 20.0,
            queue_limit: 8,
            pool_pages: 512,
        }
    }

    /// Per-tuple cost multiplier keeping the latency regime invariant
    /// when tables are scaled down (same trick as the robustness
    /// experiment).
    fn cost_scale(&self) -> f64 {
        datasets::road_domain::ROWS as f64 / self.rows.max(1) as f64
    }
}

/// Scales the per-tuple charges of a cost calibration.
fn scale_params(mut p: CostParams, k: f64) -> CostParams {
    let mul = |ns: u64| ((ns as f64) * k).round() as u64;
    p.tuple_scan_ns = mul(p.tuple_scan_ns);
    p.tuple_agg_ns = mul(p.tuple_agg_ns);
    p.join_build_ns = mul(p.join_build_ns);
    p.join_probe_ns = mul(p.join_probe_ns);
    p.predicate_eval_ns = mul(p.predicate_eval_ns);
    p
}

/// One concurrency level's measurements.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Sessions served at this level.
    pub sessions: usize,
    /// Queries the fleet offered.
    pub offered: usize,
    /// Outcome under the admission policy.
    pub admission: FleetOutcome,
    /// Outcome with everything admitted.
    pub baseline: FleetOutcome,
}

/// The full concurrency-scaling report.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Configuration used.
    pub config: FleetConfig,
    /// One point per concurrency level, ascending.
    pub points: Vec<FleetPoint>,
}

/// Runs the sweep.
pub fn run(config: &FleetConfig) -> FleetReport {
    let _p = ids_obs::phase("fleet.sweep");
    let params = ServeParams {
        workers: config.workers,
        latency_budget: config.latency_budget,
    };
    let admission_policy = AdmissionPolicy {
        tenant_rate: config.tenant_rate,
        tenant_burst: config.tenant_burst,
        queue_limit: config.queue_limit,
        prefetch_queue_limit: 0,
    };
    let mut points = Vec::new();
    for &sessions in &config.session_counts {
        let spec = FleetSpec {
            seed: config.seed,
            sessions,
            tenants: config.tenants,
            arrival: ArrivalProcess::Poisson {
                mean_gap: config.arrival_gap,
            },
            max_groups: config.max_groups,
            prefetch_rate: config.prefetch_rate,
        };
        let offered = synthesize_fleet(&spec, config.threads);

        // One shared engine per level: every tenant's table goes through
        // the same buffer pool, so concurrency genuinely widens the
        // working set.
        let disk = DiskBackend::with_config(
            scale_params(CostParams::disk_default(), config.cost_scale()),
            config.pool_pages,
            EvictionPolicy::Lru,
        );
        let db = disk.database();
        for tenant in 0..config.tenants {
            db.register(datasets::road_network_named(
                &FleetSpec::tenant_table(tenant),
                config.seed,
                config.rows,
            ));
        }

        let horizon = offered
            .last()
            .map(|q| q.at.saturating_since(SimTime::ZERO))
            .unwrap_or(SimDuration::ZERO);
        let plan = if config.chaos_intensity > 0.0 {
            FaultPlan::storm_with_node_loss(
                config.seed,
                config.chaos_intensity,
                horizon,
                config.workers,
            )
        } else {
            FaultPlan::calm(config.seed)
        };

        let costs = measure_costs(&disk, Some(&disk), &offered, &plan, config.latency_budget);
        let admission = simulate_service(&offered, &costs, &admission_policy, &plan, &params);
        let baseline = simulate_service(
            &offered,
            &costs,
            &AdmissionPolicy::unlimited(),
            &plan,
            &params,
        );
        points.push(FleetPoint {
            sessions,
            offered: offered.len(),
            admission,
            baseline,
        });
    }
    FleetReport {
        config: config.clone(),
        points,
    }
}

impl FleetReport {
    /// Renders the concurrency-scaling table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "sessions", "offered", "adm q/s", "shed", "LCV adm", "LCV base", "p99 adm", "p99 base",
        ]);
        for p in &self.points {
            t.row([
                p.sessions.to_string(),
                p.offered.to_string(),
                format!("{:.1}", p.admission.admitted_qps),
                pct(p.admission.shed_fraction()),
                pct(p.admission.lcv.fraction()),
                pct(p.baseline.lcv.fraction()),
                format!("{}ms", p.admission.p99.as_millis()),
                format!("{}ms", p.baseline.p99.as_millis()),
            ]);
        }
        format!(
            "Fleet serving: admission control vs open queueing \
             ({} tenants, {} workers, budget {} ms, chaos {:.2}):\n{}",
            self.config.tenants,
            self.config.workers,
            self.config.latency_budget.as_millis(),
            self.config.chaos_intensity,
            t.section("fleet: concurrency scaling")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> &'static FleetReport {
        use std::sync::OnceLock;
        static REPORT: OnceLock<FleetReport> = OnceLock::new();
        REPORT.get_or_init(|| run(&FleetConfig::smoke_test()))
    }

    #[test]
    fn offered_load_grows_with_concurrency() {
        let offered: Vec<usize> = report().points.iter().map(|p| p.offered).collect();
        assert!(offered.windows(2).all(|w| w[1] > w[0]), "{offered:?}");
    }

    #[test]
    fn conservation_holds_at_every_level() {
        for p in &report().points {
            assert_eq!(
                p.admission.admitted + p.admission.shed.total(),
                p.offered,
                "at {} sessions",
                p.sessions
            );
            assert_eq!(p.baseline.admitted, p.offered);
            assert_eq!(p.baseline.shed.total(), 0);
        }
    }

    #[test]
    fn admission_flattens_tail_at_high_concurrency() {
        let top = report().points.last().unwrap();
        assert!(
            top.admission.p99 < top.baseline.p99,
            "admission p99 {:?} must beat baseline {:?}",
            top.admission.p99,
            top.baseline.p99
        );
        assert!(
            top.admission.lcv.fraction() < top.baseline.lcv.fraction(),
            "admission LCV {} must beat baseline {}",
            top.admission.lcv.fraction(),
            top.baseline.lcv.fraction()
        );
        assert!(top.admission.shed.total() > 0, "overload must shed");
    }

    #[test]
    fn render_is_a_full_table() {
        let text = report().render();
        assert!(text.contains("fleet: concurrency scaling"));
        assert!(text.contains("LCV adm"));
        for p in &report().points {
            assert!(text.contains(&p.sessions.to_string()));
        }
    }
}
