//! Robustness under injected faults: LCV and QIF as a function of fault
//! intensity.
//!
//! The paper evaluates interactive systems under *nominal* conditions;
//! this experiment asks how its two novel metrics — latency constraint
//! violations and query issuing frequency — shift when the backend
//! misbehaves. A seeded [`ids_chaos::FaultPlan`] storm injects latency
//! spikes, stalls, and transient failures into a crossfilter replay at
//! increasing intensities, and three mitigation layers are measured:
//!
//! - **retries** ([`ids_engine::RetryingBackend`]) absorb transient
//!   failures before the scheduler sees them;
//! - **graceful degradation**
//!   ([`ids_engine::scheduler::ReplayScheduler::replay_resilient`])
//!   truncates over-budget queries into partial estimates instead of
//!   letting the Fig 2 latency cascade run unbounded;
//! - **adaptive throttling** ([`ids_opt::throttle::AdaptiveThrottle`]
//!   with stall reaction) sheds issue pressure while the backend is
//!   wedged, shifting the admitted QIF down.
//!
//! The storm generator derives window *positions* from the seed alone
//! and scales only widths, factors, and failure rates with intensity, so
//! a harsher storm strictly dominates a milder one and the rigid LCV
//! count is monotone in intensity — the experiment's sanity anchor.

use ids_chaos::{ChaosBackend, FaultPlan};
use ids_devices::DeviceKind;
use ids_engine::scheduler::{IssuedQuery, QueryTiming, ReplayScheduler, ResiliencePolicy};
use ids_engine::{
    Backend, Database, MemBackend, QueryOutcome, ResultQuality, RetryPolicy, RetryingBackend,
};
use ids_metrics::lcv::{budget_violations, LcvReport, QuerySpan};
use ids_metrics::qif::QifReport;
use ids_opt::throttle::AdaptiveThrottle;
use ids_simclock::{SimDuration, SimTime};
use ids_workload::crossfilter::{
    compile_query_groups, simulate_session, CrossfilterUi, QueryGroup,
};
use ids_workload::datasets;

use crate::report::{pct, Table};

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessConfig {
    /// RNG seed (drives the workload *and* the fault plans).
    pub seed: u64,
    /// Road-network cardinality.
    pub rows: usize,
    /// Cap on query groups replayed (keeps smoke tests fast).
    pub max_groups: usize,
    /// Fault intensities swept, ascending; `0.0` is the calm baseline.
    pub intensities: [f64; 4],
    /// Per-query latency budget for LCV and for the degraded condition.
    pub latency_budget: SimDuration,
    /// Scheduler worker slots.
    pub workers: usize,
}

impl RobustnessConfig {
    /// Full-scale sweep.
    pub fn paper() -> RobustnessConfig {
        RobustnessConfig {
            seed: 83,
            rows: datasets::road_domain::ROWS,
            max_groups: usize::MAX,
            intensities: [0.0, 0.33, 0.67, 1.0],
            latency_budget: SimDuration::from_millis(100),
            workers: 2,
        }
    }

    /// Reduced scale for tests.
    pub fn smoke_test() -> RobustnessConfig {
        RobustnessConfig {
            seed: 83,
            rows: 4_000,
            max_groups: 200,
            intensities: [0.0, 0.33, 0.67, 1.0],
            latency_budget: SimDuration::from_millis(100),
            workers: 2,
        }
    }

    /// Per-tuple cost multiplier keeping the latency regime
    /// scale-invariant (same trick as case study 2): a scaled-down table
    /// gets proportionally more expensive tuples.
    fn cost_scale(&self) -> f64 {
        datasets::road_domain::ROWS as f64 / self.rows.max(1) as f64
    }
}

/// Scales the per-tuple charges of a cost calibration.
fn scale_params(mut p: ids_engine::CostParams, k: f64) -> ids_engine::CostParams {
    let mul = |ns: u64| ((ns as f64) * k).round() as u64;
    p.tuple_scan_ns = mul(p.tuple_scan_ns);
    p.tuple_agg_ns = mul(p.tuple_agg_ns);
    p.join_build_ns = mul(p.join_build_ns);
    p.join_probe_ns = mul(p.join_probe_ns);
    p.predicate_eval_ns = mul(p.predicate_eval_ns);
    p
}

/// One intensity's measurements.
#[derive(Debug, Clone)]
pub struct RobustnessPoint {
    /// Storm intensity in `[0, 1]`.
    pub intensity: f64,
    /// Fault windows the storm put on the clock.
    pub fault_windows: usize,
    /// LCV without any degradation (full answers, latency cascades).
    pub rigid_lcv: LcvReport,
    /// LCV with graceful degradation under the same storm.
    pub degraded_lcv: LcvReport,
    /// Partial (truncated-and-extrapolated) answers in the degraded run.
    pub partial: usize,
    /// Terminally failed queries (placeholder answers) in the degraded run.
    pub failed: usize,
    /// Issued QIF of the raw stream, queries/s (intensity-invariant).
    pub issued_qps: f64,
    /// QIF actually admitted by the stall-reacting adaptive throttle.
    pub admitted_qps: f64,
    /// Stall reactions the throttle triggered.
    pub stall_reactions: usize,
}

/// The full robustness report.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Configuration used.
    pub config: RobustnessConfig,
    /// Query groups replayed per intensity.
    pub groups: usize,
    /// Individual queries per replay.
    pub queries: usize,
    /// One point per configured intensity, ascending.
    pub points: Vec<RobustnessPoint>,
}

/// Flattens query groups into the scheduler's issued stream.
fn issue_stream(groups: &[QueryGroup]) -> Vec<IssuedQuery> {
    let mut out = Vec::new();
    for g in groups {
        for q in &g.queries {
            let tag = out.len() as u64;
            out.push(IssuedQuery::new(g.at, q.clone(), tag));
        }
    }
    out
}

/// Measured spans for LCV.
fn spans(timings: &[(QueryTiming, QueryOutcome)]) -> Vec<QuerySpan> {
    timings
        .iter()
        .map(|(t, _)| QuerySpan {
            issued_at: t.issued_at,
            finished_at: t.finished_at,
        })
        .collect()
}

/// Runs the sweep.
pub fn run(config: &RobustnessConfig) -> RobustnessReport {
    let setup = ids_obs::phase("robustness.setup");
    let ui = CrossfilterUi::for_road();
    let session = simulate_session(DeviceKind::Mouse, 0, config.seed, &ui);
    let mut groups = compile_query_groups(&ui, &session.trace);
    groups.truncate(config.max_groups);
    let stream = issue_stream(&groups);
    let horizon = groups
        .last()
        .map(|g| g.at.saturating_since(SimTime::ZERO))
        .unwrap_or(SimDuration::ZERO);
    let issued_qps =
        QifReport::from_timestamps(&stream.iter().map(|iq| iq.issued_at).collect::<Vec<_>>())
            .queries_per_second();

    let db = Database::new();
    db.register(datasets::road_network_sized(config.seed, config.rows));
    let mem = MemBackend::over_with(
        db,
        scale_params(ids_engine::CostParams::mem_default(), config.cost_scale()),
    );
    // Calm-probe the first group so the throttle's initial estimate is
    // honest: a cold-start underestimate would read the very first real
    // observation as a stall.
    let baseline_estimate = groups
        .first()
        .map(|g| {
            g.queries
                .iter()
                .map(|q| mem.execute(q).expect("registered table").cost)
                .fold(SimDuration::ZERO, |acc, c| acc + c)
        })
        .unwrap_or(SimDuration::from_millis(5));
    drop(setup);

    let _p = ids_obs::phase("robustness.sweep");
    let sched = ReplayScheduler::new(config.workers);
    let mut points = Vec::new();
    for &intensity in &config.intensities {
        let plan = FaultPlan::storm(config.seed, intensity, horizon);
        let fault_windows = plan.windows().len();

        // Rigid: full answers, latency cascades, failures become
        // placeholders after retries. Fresh injector per condition so
        // attempt counters — and therefore injection decisions — are
        // identical across conditions.
        let rigid = {
            let chaos = ChaosBackend::new(&mem, plan.clone());
            let retrying = RetryingBackend::new(&chaos, RetryPolicy::interactive());
            sched
                .replay_resilient(&retrying, &stream, &ResiliencePolicy::rigid())
                .expect("replay over registered tables cannot fail")
        };
        let rigid_lcv = budget_violations(&spans(&rigid), config.latency_budget);

        // Degraded: same storm, but over-budget queries truncate to
        // partial estimates.
        let degraded = {
            let chaos = ChaosBackend::new(&mem, plan.clone());
            let retrying = RetryingBackend::new(&chaos, RetryPolicy::interactive());
            sched
                .replay_resilient(
                    &retrying,
                    &stream,
                    &ResiliencePolicy::degrade_after(config.latency_budget),
                )
                .expect("replay over registered tables cannot fail")
        };
        let degraded_lcv = budget_violations(&spans(&degraded), config.latency_budget);
        let partial = degraded
            .iter()
            .filter(|(_, o)| matches!(o.quality, ResultQuality::Partial { .. }))
            .count();
        let failed = degraded
            .iter()
            .filter(|(_, o)| o.quality == ResultQuality::Failed)
            .count();

        // Throttled admission: the closed-loop throttle probes the
        // chaotic backend and backs off through stall windows, shifting
        // the admitted QIF down as intensity grows.
        let (admitted_qps, stall_reactions) = {
            let chaos = ChaosBackend::new(&mem, plan.clone());
            let retrying = RetryingBackend::new(&chaos, RetryPolicy::interactive());
            let mut throttle =
                AdaptiveThrottle::new(baseline_estimate).with_stall_reaction(3.0, 2.0);
            let admitted = throttle.filter_stream(&groups, |g| {
                ids_obs::set_vnow(g.at);
                g.queries
                    .iter()
                    .map(|q| match retrying.execute(q) {
                        Ok(outcome) => outcome.cost,
                        // Retry-exhausted probe: the frontend waits out
                        // the budget before giving up.
                        Err(_) => config.latency_budget,
                    })
                    .fold(SimDuration::ZERO, |acc, c| acc + c)
            });
            let stamps: Vec<SimTime> = admitted.iter().map(|g| g.at).collect();
            (
                QifReport::from_timestamps(&stamps).queries_per_second(),
                throttle.stall_reactions(),
            )
        };

        points.push(RobustnessPoint {
            intensity,
            fault_windows,
            rigid_lcv,
            degraded_lcv,
            partial,
            failed,
            issued_qps,
            admitted_qps,
            stall_reactions,
        });
    }

    RobustnessReport {
        config: *config,
        groups: groups.len(),
        queries: stream.len(),
        points,
    }
}

impl RobustnessReport {
    /// Rigid-condition LCV fractions, ascending intensity.
    pub fn rigid_lcv_fractions(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.rigid_lcv.fraction()).collect()
    }

    /// Renders the robustness table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "intensity",
            "fault windows",
            "LCV rigid",
            "LCV degraded",
            "partial",
            "failed",
            "admitted q/s",
            "stall reactions",
        ]);
        for p in &self.points {
            t.row([
                format!("{:.2}", p.intensity),
                p.fault_windows.to_string(),
                pct(p.rigid_lcv.fraction()),
                pct(p.degraded_lcv.fraction()),
                p.partial.to_string(),
                p.failed.to_string(),
                format!("{:.1}", p.admitted_qps),
                p.stall_reactions.to_string(),
            ]);
        }
        format!(
            "Robustness under injected faults ({} queries in {} groups, budget {} ms, \
             issued {:.1} q/s):\n{}",
            self.queries,
            self.groups,
            self.config.latency_budget.as_millis(),
            self.points.first().map(|p| p.issued_qps).unwrap_or(0.0),
            t.render()
        )
    }
}

/// Parameters for the progressive-deadline tradeoff sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressiveConfig {
    /// RNG seed (drives the workload).
    pub seed: u64,
    /// Road-network cardinality.
    pub rows: usize,
    /// Cap on query groups replayed.
    pub max_groups: usize,
    /// Scheduler worker slots.
    pub workers: usize,
    /// Latency budgets swept, ascending, in milliseconds.
    pub budgets_ms: [u64; 5],
}

impl ProgressiveConfig {
    /// Full-scale sweep.
    pub fn paper() -> ProgressiveConfig {
        ProgressiveConfig {
            seed: 83,
            rows: datasets::road_domain::ROWS,
            max_groups: usize::MAX,
            workers: 2,
            budgets_ms: [1, 3, 10, 30, 100],
        }
    }

    /// Reduced scale for tests. Rows stay above 10×1024 so one block —
    /// deadline mode's minimum read — is finer than the degrade policy's
    /// 10% floor, keeping the two conditions comparable.
    pub fn smoke_test() -> ProgressiveConfig {
        ProgressiveConfig {
            seed: 83,
            rows: 16_384,
            max_groups: 200,
            workers: 2,
            budgets_ms: [1, 3, 10, 30, 100],
        }
    }

    fn cost_scale(&self) -> f64 {
        datasets::road_domain::ROWS as f64 / self.rows.max(1) as f64
    }
}

/// One latency budget's measurements in the tradeoff sweep.
#[derive(Debug, Clone)]
pub struct ProgressivePoint {
    /// Per-query latency budget, ms.
    pub budget_ms: u64,
    /// LCV when over-budget queries simulate a truncated scan
    /// ([`ResiliencePolicy::degrade_after`]).
    pub degrade_lcv: LcvReport,
    /// LCV when over-budget queries spend the remaining budget on real
    /// block-sampled refinement ([`ResiliencePolicy::deadline`]).
    pub deadline_lcv: LcvReport,
    /// Partial answers in the degrade run.
    pub degrade_partial: usize,
    /// Partial answers in the deadline run.
    pub deadline_partial: usize,
    /// Mean covered fraction over the deadline run's partial answers
    /// (1.0 when nothing was cut short).
    pub mean_fraction: f64,
    /// Mean measured relative error of deadline answers against the
    /// exact replay (per-value worst case, relative to the exact
    /// answer's largest value).
    pub mean_rel_error: f64,
    /// Worst measured relative error in the deadline run.
    pub max_rel_error: f64,
    /// Mean *reported* absolute error bound over the deadline run's
    /// partial answers, as a fraction of the table's rows — what the
    /// frontend could display. (The deterministic bound is denominated
    /// in rows; relative to a highly selective answer it would look
    /// absurdly conservative.)
    pub mean_bound_frac: f64,
    /// Deadline partials whose measured error exceeded the reported
    /// bound. The bound is sound, so this must be 0.
    pub bound_violations: usize,
}

/// The LCV-vs-relative-error tradeoff report.
#[derive(Debug, Clone)]
pub struct ProgressiveReport {
    /// Configuration used.
    pub config: ProgressiveConfig,
    /// Query groups replayed per budget.
    pub groups: usize,
    /// Individual queries per replay.
    pub queries: usize,
    /// One point per configured budget, ascending.
    pub points: Vec<ProgressivePoint>,
}

/// Per-value worst-case absolute difference between two result sets of
/// the same shape (the units [`ResultQuality::Partial`] bounds promise).
fn max_abs_error(estimate: &ids_engine::ResultSet, exact: &ids_engine::ResultSet) -> f64 {
    use ids_engine::ResultSet;
    match (estimate, exact) {
        (ResultSet::Count(a), ResultSet::Count(b)) => (*a as f64 - *b as f64).abs(),
        (ResultSet::Histogram(a), ResultSet::Histogram(b)) if a.bins() == b.bins() => a
            .counts()
            .iter()
            .zip(b.counts())
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .fold(0.0, f64::max),
        (ResultSet::Rows(a), ResultSet::Rows(b)) => (a.len() as f64 - b.len() as f64).abs(),
        _ => f64::INFINITY,
    }
}

/// Largest value in a result set, ≥ 1 — the denominator that turns
/// absolute row-count errors into relative ones.
fn result_magnitude(r: &ids_engine::ResultSet) -> f64 {
    use ids_engine::ResultSet;
    let m = match r {
        ResultSet::Count(c) => *c as f64,
        ResultSet::Histogram(h) => h.counts().iter().copied().max().unwrap_or(0) as f64,
        ResultSet::Rows(rows) => rows.len() as f64,
    };
    m.max(1.0)
}

/// Runs the LCV-vs-relative-error tradeoff sweep.
///
/// The same calm (fault-free) crossfilter replay is driven at a range of
/// latency budgets under two policies: *degrade* simulates truncating an
/// over-budget scan, *deadline* spends the remaining budget on real
/// block-sampled progressive refinement and reports a sound error bound
/// alongside the estimate. Each point records both LCVs and the measured
/// vs. reported error of the deadline answers against the exact replay —
/// the interactivity/accuracy tradeoff the paper's latency guideline
/// leaves implicit.
pub fn run_progressive(config: &ProgressiveConfig) -> ProgressiveReport {
    let setup = ids_obs::phase("progressive.setup");
    let ui = CrossfilterUi::for_road();
    let session = simulate_session(DeviceKind::Mouse, 0, config.seed, &ui);
    let mut groups = compile_query_groups(&ui, &session.trace);
    groups.truncate(config.max_groups);
    let stream = issue_stream(&groups);

    let db = Database::new();
    db.register(datasets::road_network_sized(config.seed, config.rows));
    let mem = MemBackend::over_with(
        db,
        scale_params(ids_engine::CostParams::mem_default(), config.cost_scale()),
    );
    let sched = ReplayScheduler::new(config.workers);
    // The untruncated replay: exact answers every deadline estimate is
    // measured against.
    let exact = sched
        .replay_with_outcomes(&mem, &stream)
        .expect("replay over registered tables cannot fail");
    drop(setup);

    let _p = ids_obs::phase("progressive.sweep");
    let mut points = Vec::new();
    for &budget_ms in &config.budgets_ms {
        let budget = SimDuration::from_millis(budget_ms);
        let degrade = sched
            .replay_resilient(&mem, &stream, &ResiliencePolicy::degrade_after(budget))
            .expect("replay over registered tables cannot fail");
        let deadline = sched
            .replay_resilient(&mem, &stream, &ResiliencePolicy::deadline(budget))
            .expect("replay over registered tables cannot fail");

        let degrade_partial = degrade
            .iter()
            .filter(|(_, o)| matches!(o.quality, ResultQuality::Partial { .. }))
            .count();

        let mut deadline_partial = 0usize;
        let mut fraction_sum = 0.0;
        let mut bound_sum = 0.0;
        let mut err_sum = 0.0;
        let mut err_max = 0.0f64;
        let mut bound_violations = 0usize;
        for ((_, o), (_, e)) in deadline.iter().zip(&exact) {
            let denom = result_magnitude(&e.result);
            let err = max_abs_error(&o.result, &e.result);
            err_sum += err / denom;
            err_max = err_max.max(err / denom);
            if let ResultQuality::Partial {
                fraction,
                error_bound,
            } = o.quality
            {
                deadline_partial += 1;
                fraction_sum += fraction;
                bound_sum += error_bound / config.rows.max(1) as f64;
                if err > error_bound {
                    bound_violations += 1;
                }
            }
        }
        let n = deadline.len().max(1) as f64;
        points.push(ProgressivePoint {
            budget_ms,
            degrade_lcv: budget_violations(&spans(&degrade), budget),
            deadline_lcv: budget_violations(&spans(&deadline), budget),
            degrade_partial,
            deadline_partial,
            mean_fraction: if deadline_partial == 0 {
                1.0
            } else {
                fraction_sum / deadline_partial as f64
            },
            mean_rel_error: err_sum / n,
            max_rel_error: err_max,
            mean_bound_frac: if deadline_partial == 0 {
                0.0
            } else {
                bound_sum / deadline_partial as f64
            },
            bound_violations,
        });
    }

    ProgressiveReport {
        config: *config,
        groups: groups.len(),
        queries: stream.len(),
        points,
    }
}

impl ProgressiveReport {
    /// Deadline-condition LCV fractions, ascending budget.
    pub fn deadline_lcv_fractions(&self) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| p.deadline_lcv.fraction())
            .collect()
    }

    /// Renders the tradeoff table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "budget ms",
            "LCV degrade",
            "LCV deadline",
            "partial dg",
            "partial dl",
            "mean frac",
            "mean err",
            "max err",
            "bound/rows",
        ]);
        for p in &self.points {
            t.row([
                p.budget_ms.to_string(),
                pct(p.degrade_lcv.fraction()),
                pct(p.deadline_lcv.fraction()),
                p.degrade_partial.to_string(),
                p.deadline_partial.to_string(),
                format!("{:.3}", p.mean_fraction),
                pct(p.mean_rel_error),
                pct(p.max_rel_error),
                pct(p.mean_bound_frac),
            ]);
        }
        format!(
            "Progressive deadline tradeoff ({} queries in {} groups, calm backend):\n{}",
            self.queries,
            self.groups,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> &'static RobustnessReport {
        use std::sync::OnceLock;
        static REPORT: OnceLock<RobustnessReport> = OnceLock::new();
        REPORT.get_or_init(|| run(&RobustnessConfig::smoke_test()))
    }

    #[test]
    fn calm_baseline_is_fault_free() {
        let p = &report().points[0];
        assert_eq!(p.intensity, 0.0);
        assert_eq!(p.fault_windows, 0);
        assert_eq!(p.partial + p.failed, 0, "no degradation without faults");
    }

    #[test]
    fn rigid_lcv_rate_is_monotone_in_intensity() {
        let fractions = report().rigid_lcv_fractions();
        assert!(
            fractions.windows(2).all(|w| w[1] >= w[0]),
            "harsher storms must violate at least as often: {fractions:?}"
        );
        assert!(
            fractions.last().unwrap() > fractions.first().unwrap(),
            "the sweep must actually produce violations: {fractions:?}"
        );
    }

    #[test]
    fn degradation_rescues_violations_under_storms() {
        for p in &report().points {
            if p.intensity == 0.0 {
                continue;
            }
            assert!(
                p.degraded_lcv.violations <= p.rigid_lcv.violations,
                "at intensity {}: degraded {} vs rigid {}",
                p.intensity,
                p.degraded_lcv.violations,
                p.rigid_lcv.violations
            );
        }
        let worst = report().points.last().unwrap();
        assert!(
            worst.degraded_lcv.violations < worst.rigid_lcv.violations,
            "at full intensity degradation must pay off: {} vs {}",
            worst.degraded_lcv.violations,
            worst.rigid_lcv.violations
        );
        assert!(worst.partial > 0, "full-intensity storm truncates queries");
    }

    #[test]
    fn throttle_sheds_load_as_storms_worsen() {
        let points = &report().points;
        let calm = &points[0];
        let worst = points.last().unwrap();
        assert_eq!(calm.stall_reactions, 0, "no stalls to react to when calm");
        assert!(worst.stall_reactions > 0, "storm stalls must be noticed");
        assert!(
            worst.admitted_qps <= calm.admitted_qps,
            "admitted QIF must not rise under faults: {:.1} vs {:.1}",
            worst.admitted_qps,
            calm.admitted_qps
        );
    }

    #[test]
    fn render_is_a_full_table() {
        let text = report().render();
        assert!(text.contains("Robustness under injected faults"));
        assert!(text.contains("LCV rigid"));
        for p in &report().points {
            assert!(text.contains(&format!("{:.2}", p.intensity)));
        }
    }

    fn progressive_report() -> &'static ProgressiveReport {
        use std::sync::OnceLock;
        static REPORT: OnceLock<ProgressiveReport> = OnceLock::new();
        REPORT.get_or_init(|| run_progressive(&ProgressiveConfig::smoke_test()))
    }

    #[test]
    fn deadline_mode_never_violates_more_than_degrade() {
        for p in &progressive_report().points {
            assert!(
                p.deadline_lcv.violations <= p.degrade_lcv.violations,
                "budget {} ms: deadline {} vs degrade {}",
                p.budget_ms,
                p.deadline_lcv.violations,
                p.degrade_lcv.violations
            );
        }
    }

    #[test]
    fn deadline_mode_drives_lcv_to_zero_with_bounded_error() {
        let r = progressive_report();
        let last = r.points.last().unwrap();
        assert_eq!(
            last.deadline_lcv.violations, 0,
            "the widest budget must be met"
        );
        let tight = &r.points[0];
        assert!(
            tight.deadline_partial > 0,
            "the tightest budget must cut queries short"
        );
        assert!(tight.mean_fraction < 1.0);
        assert!(tight.mean_bound_frac > 0.0 && tight.mean_bound_frac.is_finite());
        for p in &r.points {
            assert_eq!(
                p.bound_violations, 0,
                "budget {} ms: reported bounds must hold",
                p.budget_ms
            );
            assert!(p.max_rel_error.is_finite());
        }
    }

    #[test]
    fn reported_bound_shrinks_with_budget() {
        // Wider budgets cover more blocks, so the mean reported bound over
        // partials — and the measured error — must not grow.
        let r = progressive_report();
        let bounds: Vec<f64> = r.points.iter().map(|p| p.mean_bound_frac).collect();
        assert!(
            bounds.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "mean reported bound must be non-increasing in budget: {bounds:?}"
        );
        let errs: Vec<f64> = r.points.iter().map(|p| p.mean_rel_error).collect();
        assert!(
            errs.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "mean measured error must be non-increasing in budget: {errs:?}"
        );
    }

    #[test]
    fn progressive_render_is_a_full_table() {
        let text = progressive_report().render();
        assert!(text.contains("Progressive deadline tradeoff"));
        assert!(text.contains("LCV deadline"));
        assert!(text.contains("bound/rows"));
        for p in &progressive_report().points {
            assert!(text.contains(&p.budget_ms.to_string()));
        }
    }
}
