//! Open-loop vs closed-loop workloads under service policies.
//!
//! The paper replays *recorded* interaction traces: whatever the system
//! does, the user model issues the same actions at the same instants.
//! Purich-style closed-loop evaluation replaces the recording with a
//! behavior model that reacts to each answer — zooming into dense bins,
//! drilling on outliers, backtracking out of empty regions, and
//! abandoning the session when answers stay slow. This experiment runs
//! both workload families through the same serving stack under four
//! service policies and contrasts LCV, QIF, and tail latency:
//!
//! - **open-door** — everything admitted, exact answers (the baseline);
//! - **throttled** — a tight per-tenant token bucket sheds queries, and
//!   the shed feeds back into the closed-loop model as failed answers;
//! - **deadline** — a degrade-after budget truncates slow queries into
//!   `Partial` answers, which the closed-loop model then reacts to;
//! - **congested** — injected transport latency above the abandon
//!   threshold, which only a closed-loop user can walk away from.
//!
//! The contrast the table makes precise: the open-loop action stream is
//! *identical* in all four rows (a recording cannot react), while the
//! closed-loop stream sheds, degrades, and abandons differently under
//! each policy — the measurement error incurred by evaluating an
//! interactive system against a recording.

use ids_devices::DeviceKind;
use ids_engine::scheduler::ResiliencePolicy;
use ids_engine::{Database, MemBackend};
use ids_metrics::lcv::{budget_violations, LcvReport, QuerySpan};
use ids_metrics::qif::QifReport;
use ids_serve::{drive_session, AdmissionPolicy, ClosedLoopOutcome, ClosedLoopParams};
use ids_simclock::SimDuration;
use ids_workload::adaptive::{BehaviorConfig, BehaviorPolicy};
use ids_workload::crossfilter::CrossfilterUi;
use ids_workload::datasets;

use crate::report::{pct, Table};

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// RNG seed (drives both workload families).
    pub seed: u64,
    /// Road-network cardinality.
    pub rows: usize,
    /// Closed-loop session length, in actions.
    pub max_actions: usize,
    /// Latency above which the closed-loop user loses patience.
    pub abandon_after: SimDuration,
    /// Per-query latency budget for LCV and the deadline policy.
    pub latency_budget: SimDuration,
    /// Scheduler worker slots.
    pub workers: usize,
}

impl AdaptiveConfig {
    /// Full-scale sweep.
    pub fn paper() -> AdaptiveConfig {
        AdaptiveConfig {
            seed: 83,
            rows: datasets::road_domain::ROWS,
            max_actions: 24,
            abandon_after: SimDuration::from_millis(400),
            latency_budget: SimDuration::from_millis(15),
            workers: 2,
        }
    }

    /// Reduced scale for tests.
    pub fn smoke_test() -> AdaptiveConfig {
        AdaptiveConfig {
            seed: 83,
            rows: 4_000,
            max_actions: 16,
            abandon_after: SimDuration::from_millis(400),
            latency_budget: SimDuration::from_millis(15),
            workers: 2,
        }
    }

    /// Per-tuple cost multiplier keeping the latency regime
    /// scale-invariant (same trick as case study 2).
    fn cost_scale(&self) -> f64 {
        datasets::road_domain::ROWS as f64 / self.rows.max(1) as f64
    }
}

/// Scales the per-tuple charges of a cost calibration.
fn scale_params(mut p: ids_engine::CostParams, k: f64) -> ids_engine::CostParams {
    let mul = |ns: u64| ((ns as f64) * k).round() as u64;
    p.tuple_scan_ns = mul(p.tuple_scan_ns);
    p.tuple_agg_ns = mul(p.tuple_agg_ns);
    p.join_build_ns = mul(p.join_build_ns);
    p.join_probe_ns = mul(p.join_probe_ns);
    p.predicate_eval_ns = mul(p.predicate_eval_ns);
    p
}

/// The four service policies, in table order.
fn policies(config: &AdaptiveConfig) -> Vec<(&'static str, ClosedLoopParams)> {
    let base = ClosedLoopParams {
        workers: config.workers.max(1),
        ..ClosedLoopParams::default()
    };
    let throttled = ClosedLoopParams {
        admission: AdmissionPolicy {
            tenant_rate: 1.0,
            tenant_burst: 2.0,
            queue_limit: 2,
            prefetch_queue_limit: 0,
        },
        ..base.clone()
    };
    let deadline = ClosedLoopParams {
        resilience: ResiliencePolicy::degrade_after(config.latency_budget),
        ..base.clone()
    };
    let congested = ClosedLoopParams {
        extra_latency: config.abandon_after + config.abandon_after.mul_f64(0.5),
        ..base.clone()
    };
    vec![
        ("open-door", base),
        ("throttled", throttled),
        ("deadline", deadline),
        ("congested", congested),
    ]
}

/// One `(family, policy)` cell's measurements.
#[derive(Debug, Clone)]
pub struct AdaptiveCell {
    /// `"open-loop"` or `"closed-loop"`.
    pub family: &'static str,
    /// Service-policy name.
    pub policy: &'static str,
    /// Actions the session emitted.
    pub actions: usize,
    /// Queries actually admitted and executed.
    pub queries: usize,
    /// Queries shed by admission.
    pub shed: usize,
    /// Degraded (`Partial` or `Failed`) answers.
    pub degraded: usize,
    /// Whether the session abandoned before its action budget.
    pub abandoned: bool,
    /// Latency-constraint violations at the configured budget.
    pub lcv: LcvReport,
    /// 99th-percentile query latency.
    pub p99: SimDuration,
    /// Admitted query issuing frequency, queries/s.
    pub qps: f64,
    /// Canonical digest of the session (action stream + results).
    pub digest: String,
}

/// The open-loop vs closed-loop comparison report.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Configuration used.
    pub config: AdaptiveConfig,
    /// One cell per `(family, policy)`, families outermost.
    pub cells: Vec<AdaptiveCell>,
}

/// `p`-th percentile of a latency set (nearest-rank).
fn percentile(latencies: &mut [SimDuration], p: f64) -> SimDuration {
    if latencies.is_empty() {
        return SimDuration::ZERO;
    }
    latencies.sort();
    let rank = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
    latencies[rank - 1]
}

fn measure(
    family: &'static str,
    policy: &'static str,
    config: &AdaptiveConfig,
    outcome: &ClosedLoopOutcome,
) -> AdaptiveCell {
    let spans: Vec<QuerySpan> = outcome
        .queries
        .iter()
        .map(|q| QuerySpan {
            issued_at: q.timing.issued_at,
            finished_at: q.timing.finished_at,
        })
        .collect();
    let stamps: Vec<_> = outcome.queries.iter().map(|q| q.timing.issued_at).collect();
    let mut latencies = outcome.latencies();
    AdaptiveCell {
        family,
        policy,
        actions: outcome.actions.len(),
        queries: outcome.queries.len(),
        shed: outcome.shed.total(),
        degraded: outcome.degraded(),
        abandoned: outcome.abandoned,
        lcv: budget_violations(&spans, config.latency_budget),
        p99: percentile(&mut latencies, 0.99),
        qps: QifReport::from_timestamps(&stamps).queries_per_second(),
        digest: outcome.digest(),
    }
}

/// Runs both families under every policy.
pub fn run(config: &AdaptiveConfig) -> AdaptiveReport {
    let _p = ids_obs::phase("adaptive.sweep");
    let db = Database::new();
    db.register(datasets::road_network_sized(config.seed, config.rows));
    let mem = MemBackend::over_with(
        db,
        scale_params(ids_engine::CostParams::mem_default(), config.cost_scale()),
    );
    let ui = CrossfilterUi::for_road();
    let behavior = BehaviorConfig {
        max_actions: config.max_actions,
        abandon_after: config.abandon_after,
        ..BehaviorConfig::default()
    };
    let families: [(&'static str, BehaviorPolicy); 2] = [
        (
            "open-loop",
            BehaviorPolicy::static_replay(DeviceKind::Mouse, 0, config.seed, ui.clone()),
        ),
        (
            "closed-loop",
            BehaviorPolicy::adaptive(config.seed, ui.clone()).with_config(behavior),
        ),
    ];

    let mut cells = Vec::new();
    for (family, policy) in &families {
        for (name, params) in policies(config) {
            let outcome = drive_session(&mem, policy, &params);
            cells.push(measure(family, name, config, &outcome));
        }
    }
    AdaptiveReport {
        config: *config,
        cells,
    }
}

impl AdaptiveReport {
    /// The cells of one family, in policy order.
    pub fn family(&self, name: &str) -> Vec<&AdaptiveCell> {
        self.cells.iter().filter(|c| c.family == name).collect()
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "family",
            "policy",
            "actions",
            "queries",
            "shed",
            "degraded",
            "abandoned",
            "LCV",
            "p99 ms",
            "q/s",
        ]);
        for c in &self.cells {
            t.row([
                c.family.to_string(),
                c.policy.to_string(),
                c.actions.to_string(),
                c.queries.to_string(),
                c.shed.to_string(),
                c.degraded.to_string(),
                if c.abandoned { "yes" } else { "no" }.to_string(),
                pct(c.lcv.fraction()),
                format!("{:.1}", c.p99.as_micros() as f64 / 1_000.0),
                format!("{:.2}", c.qps),
            ]);
        }
        format!(
            "Open-loop vs closed-loop workloads under service policies \
             (budget {} ms, abandon after {} ms):\n{}",
            self.config.latency_budget.as_millis(),
            self.config.abandon_after.as_millis(),
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> &'static AdaptiveReport {
        use std::sync::OnceLock;
        static REPORT: OnceLock<AdaptiveReport> = OnceLock::new();
        REPORT.get_or_init(|| run(&AdaptiveConfig::smoke_test()))
    }

    /// The first digest line block covering only the action stream.
    fn action_lines(cell: &AdaptiveCell) -> Vec<&str> {
        cell.digest
            .lines()
            .filter(|l| l.starts_with("action\t"))
            .collect()
    }

    #[test]
    fn open_loop_actions_are_policy_invariant() {
        let open = report().family("open-loop");
        assert_eq!(open.len(), 4);
        let base = action_lines(open[0]);
        assert!(!base.is_empty());
        for cell in &open[1..] {
            assert_eq!(
                action_lines(cell),
                base,
                "a recording cannot react to policy {}",
                cell.policy
            );
            assert!(!cell.abandoned, "open-loop replay never abandons");
        }
    }

    #[test]
    fn closed_loop_responds_to_every_policy() {
        let closed = report().family("closed-loop");
        assert_eq!(closed.len(), 4);
        let base = action_lines(closed[0]);
        for cell in &closed[1..] {
            assert_ne!(
                action_lines(cell),
                base,
                "closed loop must react to policy {}",
                cell.policy
            );
        }
    }

    #[test]
    fn throttling_sheds_and_deadline_degrades() {
        let closed = report().family("closed-loop");
        let throttled = closed.iter().find(|c| c.policy == "throttled").unwrap();
        assert!(throttled.shed > 0, "tight admission must shed");
        let deadline = closed.iter().find(|c| c.policy == "deadline").unwrap();
        assert!(deadline.degraded > 0, "deadline policy must degrade");
        assert!(
            deadline.lcv.violations <= closed[0].lcv.violations,
            "degradation cannot raise LCV: {} vs {}",
            deadline.lcv.violations,
            closed[0].lcv.violations
        );
    }

    #[test]
    fn only_the_closed_loop_user_abandons_congestion() {
        let closed = report().family("closed-loop");
        let congested = closed.iter().find(|c| c.policy == "congested").unwrap();
        assert!(
            congested.abandoned,
            "sustained slowness must drive them off"
        );
        assert!(
            congested.actions < closed[0].actions,
            "abandoning must cut the session short: {} vs {}",
            congested.actions,
            closed[0].actions
        );
        let open = report().family("open-loop");
        let open_congested = open.iter().find(|c| c.policy == "congested").unwrap();
        assert_eq!(open_congested.actions, open[0].actions);
    }

    #[test]
    fn render_is_a_full_table() {
        let text = report().render();
        assert!(text.contains("Open-loop vs closed-loop"));
        for name in ["open-door", "throttled", "deadline", "congested"] {
            assert!(text.contains(name), "missing policy {name}");
        }
        assert!(text.contains("open-loop") && text.contains("closed-loop"));
    }
}
