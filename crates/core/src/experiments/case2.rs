//! Case study 2: crossfiltering (Section 7).
//!
//! Reproduces: Fig 11 (device jitter traces), Fig 13 (latency over time
//! per backend × optimization × device), Fig 14 (query-issuing-interval
//! histograms), Fig 15 (latency-constraint-violation percentages).

use std::collections::HashMap;

use ids_devices::pointer::{path_wobble, Point, PointerSimulator};
use ids_devices::{DeviceKind, DeviceProfile};
use ids_engine::{
    Backend, Database, DiskBackend, EngineResult, MemBackend, Predicate, Query, QueryOutcome,
};
use ids_metrics::qif::QifReport;
use ids_opt::klfilter::{replay_kl, HistogramSketch, PERCEPTIBLE_KL};
use ids_opt::skip::{replay_raw, replay_skip, ReplayOutcome};
use ids_simclock::rng::SimRng;
use ids_simclock::SimTime;
use ids_workload::crossfilter::{
    compile_query_groups, simulate_session, CrossfilterUi, QueryGroup,
};
use ids_workload::datasets;
use parking_lot::Mutex;

use crate::report::{downsample, pct, sparkline, Table};

/// The optimization strategies compared (Fig 13/15 legend).
pub const OPTS: [&str; 4] = ["raw", "kl>0", "kl>0.2", "skip"];

/// The devices compared.
pub const DEVICES: [DeviceKind; 3] = [DeviceKind::Mouse, DeviceKind::Touch, DeviceKind::LeapMotion];

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Case2Config {
    /// RNG seed.
    pub seed: u64,
    /// Road-network cardinality.
    pub rows: usize,
    /// Cap on query groups replayed per session (keeps smoke tests fast).
    pub max_groups: usize,
    /// Rows sampled by the KL sketch.
    pub kl_sample: usize,
}

impl Case2Config {
    /// The paper's scale: the full 434,874-row road network.
    pub fn paper() -> Case2Config {
        Case2Config {
            seed: 72,
            rows: datasets::road_domain::ROWS,
            max_groups: usize::MAX,
            kl_sample: 4_000,
        }
    }

    /// A fast scale for unit tests and doctests.
    pub fn smoke_test() -> Case2Config {
        Case2Config {
            seed: 72,
            rows: 4_000,
            max_groups: 250,
            kl_sample: 800,
        }
    }

    /// Per-tuple cost multiplier that keeps the latency *regime*
    /// scale-invariant: a scaled-down table gets proportionally more
    /// expensive tuples, so smoke tests exercise the same fast/slow
    /// backend contrast as the full 434,874-row study.
    pub fn cost_scale(&self) -> f64 {
        datasets::road_domain::ROWS as f64 / self.rows.max(1) as f64
    }
}

/// Scales the per-tuple charges of a cost calibration.
fn scale_params(mut p: ids_engine::CostParams, k: f64) -> ids_engine::CostParams {
    let mul = |ns: u64| ((ns as f64) * k).round() as u64;
    p.tuple_scan_ns = mul(p.tuple_scan_ns);
    p.tuple_agg_ns = mul(p.tuple_agg_ns);
    p.join_build_ns = mul(p.join_build_ns);
    p.join_probe_ns = mul(p.join_probe_ns);
    p.predicate_eval_ns = mul(p.predicate_eval_ns);
    p
}

/// One `(backend, optimization, device)` condition's results.
#[derive(Debug, Clone)]
pub struct ConditionResult {
    /// Backend name ("disk" / "mem").
    pub backend: &'static str,
    /// Optimization name (see [`OPTS`]).
    pub opt: &'static str,
    /// Input device.
    pub device: DeviceKind,
    /// `(issue time ms, perceived latency ms)` for executed groups (Fig 13).
    pub latency_series: Vec<(f64, f64)>,
    /// Groups executed.
    pub executed: usize,
    /// Groups skipped by the optimization.
    pub skipped: usize,
    /// Fraction of issued groups violating the latency constraint (Fig 15).
    pub lcv_fraction: f64,
}

impl ConditionResult {
    /// Median perceived latency of executed groups, ms.
    pub fn median_latency_ms(&self) -> f64 {
        if self.latency_series.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<f64> = self.latency_series.iter().map(|&(_, l)| l).collect();
        lat.sort_by(f64::total_cmp);
        lat[lat.len() / 2]
    }
}

/// The full case-study-2 report.
#[derive(Debug, Clone)]
pub struct Case2Report {
    /// Configuration used.
    pub config: Case2Config,
    /// All condition results (2 backends × 4 opts × 3 devices).
    pub conditions: Vec<ConditionResult>,
    /// Per device: total slider events captured.
    pub events_per_device: Vec<(DeviceKind, usize)>,
    /// Per device × opt: QIF over the *executed* query stream (Fig 14).
    pub qif: Vec<(DeviceKind, &'static str, QifReport)>,
    /// Fig 11: mean squared path deviation per device for one range
    /// gesture.
    pub fig11_wobble: Vec<(DeviceKind, f64)>,
}

/// A memoizing backend wrapper: the same logical query replayed under a
/// different optimization reuses its first outcome (the buffer pool is
/// pre-warmed, so disk costs are steady-state, as in the paper's warm
/// measurements).
struct MemoBackend<'a> {
    inner: &'a dyn Backend,
    cache: Mutex<HashMap<String, QueryOutcome>>,
}

impl<'a> MemoBackend<'a> {
    fn new(inner: &'a dyn Backend) -> MemoBackend<'a> {
        MemoBackend {
            inner,
            cache: Mutex::new(HashMap::new()),
        }
    }
}

impl Backend for MemoBackend<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn database(&self) -> Database {
        self.inner.database()
    }

    fn execute(&self, query: &Query) -> EngineResult<QueryOutcome> {
        let key = query.to_string();
        if let Some(hit) = self.cache.lock().get(&key).cloned() {
            return Ok(hit);
        }
        let outcome = self.inner.execute(query)?;
        self.cache.lock().insert(key, outcome.clone());
        Ok(outcome)
    }
}

/// Runs the full case study.
pub fn run(config: &Case2Config) -> Case2Report {
    let setup_phase = ids_obs::phase("case2.setup");
    let ui = CrossfilterUi::for_road();
    let road = datasets::road_network_sized(config.seed, config.rows);

    // Shared table registry; both backends see the same data. Costs are
    // scaled so smaller tables keep the paper's latency regimes.
    let k = config.cost_scale();
    let db = Database::new();
    db.register(road.clone());
    let disk = DiskBackend::over_with(
        db.clone(),
        scale_params(ids_engine::CostParams::disk_default(), k),
    );
    let mem = MemBackend::over_with(db, scale_params(ids_engine::CostParams::mem_default(), k));
    // Pre-warm the disk buffer pool (steady-state measurements).
    disk.execute(&Query::count("dataroad", Predicate::True))
        .expect("warmup query");
    let disk_memo = MemoBackend::new(&disk);
    let mem_memo = MemoBackend::new(&mem);

    let sketch = HistogramSketch::new(road, config.kl_sample, config.seed);
    drop(setup_phase);

    let _p = ids_obs::phase("case2.replay");
    let mut conditions = Vec::new();
    let mut events_per_device = Vec::new();
    let mut qif = Vec::new();
    for device in DEVICES {
        let session = simulate_session(device, 0, config.seed, &ui);
        let mut groups = compile_query_groups(&ui, &session.trace);
        groups.truncate(config.max_groups);
        events_per_device.push((device, groups.len()));

        for (backend_name, backend) in [
            ("disk", &disk_memo as &dyn Backend),
            ("mem", &mem_memo as &dyn Backend),
        ] {
            for opt in OPTS {
                let outcome = replay_condition(backend, &groups, &sketch, opt);
                // Fig 14 uses the executed-query stream per device × opt
                // (identical across backends; record once, from disk).
                if backend_name == "disk" && opt != "skip" {
                    let stamps: Vec<SimTime> =
                        outcome.executed().iter().map(|t| t.issued_at).collect();
                    qif.push((device, opt, QifReport::from_timestamps(&stamps)));
                }
                conditions.push(summarize(backend_name, opt, device, &outcome));
            }
        }
    }

    Case2Report {
        config: *config,
        conditions,
        events_per_device,
        qif,
        fig11_wobble: fig11(config.seed),
    }
}

fn replay_condition(
    backend: &dyn Backend,
    groups: &[QueryGroup],
    sketch: &HistogramSketch,
    opt: &str,
) -> ReplayOutcome {
    match opt {
        "raw" => replay_raw(backend, groups),
        "kl>0" => replay_kl(backend, groups, sketch, 0.0),
        "kl>0.2" => replay_kl(backend, groups, sketch, PERCEPTIBLE_KL),
        "skip" => replay_skip(backend, groups),
        other => panic!("unknown optimization `{other}`"),
    }
    .expect("replay over registered tables cannot fail")
}

fn summarize(
    backend: &'static str,
    opt: &'static str,
    device: DeviceKind,
    outcome: &ReplayOutcome,
) -> ConditionResult {
    let latency_series: Vec<(f64, f64)> = outcome
        .latency_series()
        .into_iter()
        .map(|(t, l)| (t.as_millis() as f64, l.as_millis_f64()))
        .collect();
    let total = outcome.timings.len().max(1);
    let lcv_fraction = outcome.lcv().violations as f64 / total as f64;
    ConditionResult {
        backend,
        opt,
        device,
        latency_series,
        executed: outcome.executed().len(),
        skipped: outcome.skipped(),
        lcv_fraction,
    }
}

/// Fig 11: one range-specification reach per device; reports mean squared
/// deviation from the intended path.
fn fig11(seed: u64) -> Vec<(DeviceKind, f64)> {
    DEVICES
        .iter()
        .map(|&device| {
            let rng = SimRng::seed(seed).split(&format!("fig11/{device}"));
            let mut sim = PointerSimulator::new(DeviceProfile::for_kind(device), rng);
            let trace = sim.reach(
                SimTime::ZERO,
                Point::new(700.0, 80.0),
                Point::new(1_050.0, 85.0),
                24.0,
            );
            (device, path_wobble(&trace))
        })
        .collect()
}

impl Case2Report {
    /// Looks up one condition.
    pub fn condition(
        &self,
        backend: &str,
        opt: &str,
        device: DeviceKind,
    ) -> Option<&ConditionResult> {
        self.conditions
            .iter()
            .find(|c| c.backend == backend && c.opt == opt && c.device == device)
    }

    /// Mean LCV fraction for a `(backend, opt)` pair across devices.
    pub fn lcv_fraction(&self, backend: &str, opt: &str) -> Option<f64> {
        let matching: Vec<f64> = self
            .conditions
            .iter()
            .filter(|c| c.backend == backend && c.opt == opt)
            .map(|c| c.lcv_fraction)
            .collect();
        if matching.is_empty() {
            None
        } else {
            Some(matching.iter().sum::<f64>() / matching.len() as f64)
        }
    }

    /// Fig 11 rendering.
    pub fn render_fig11(&self) -> String {
        let mut t = Table::new(["device", "path wobble (mean sq. px)"]);
        for &(d, w) in &self.fig11_wobble {
            t.row([d.label().to_string(), format!("{w:.1}")]);
        }
        format!(
            "Fig 11: Range-specification jitter per device\n{}",
            t.render()
        )
    }

    /// Fig 13 rendering: median latency and a latency-over-time sparkline
    /// per condition.
    pub fn render_fig13(&self) -> String {
        let mut t = Table::new([
            "device",
            "backend:opt",
            "median latency (ms)",
            "latency over time",
        ]);
        for c in &self.conditions {
            let series: Vec<f64> = c
                .latency_series
                .iter()
                .map(|&(_, l)| (l + 1.0).log10())
                .collect();
            t.row([
                c.device.label().to_string(),
                format!("{}:{}", c.backend, c.opt),
                format!("{:.1}", c.median_latency_ms()),
                sparkline(&downsample(&series, 40)),
            ]);
        }
        format!(
            "Fig 13: Latency under different factors (log-scale sparklines)\n{}",
            t.render()
        )
    }

    /// Fig 14 rendering: QIF summaries per device × optimization.
    pub fn render_fig14(&self) -> String {
        let mut t = Table::new([
            "device:opt",
            "queries",
            "mean interval (ms)",
            "modal interval (ms)",
            "qif (q/s)",
        ]);
        for (device, opt, report) in &self.qif {
            t.row([
                format!("{}:{}", device.label(), opt),
                report.queries.to_string(),
                format!("{:.1}", report.intervals_ms.mean()),
                report
                    .modal_interval_ms()
                    .map(|m| format!("{m:.0}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}", report.queries_per_second()),
            ]);
        }
        format!(
            "Fig 14: Query issuing intervals per device and optimization\n{}",
            t.render()
        )
    }

    /// Fig 15 rendering: violation percentages.
    pub fn render_fig15(&self) -> String {
        let mut t = Table::new(["condition", "postgreSQL-role (disk)", "memSQL-role (mem)"]);
        for opt in OPTS {
            for device in DEVICES {
                let disk = self
                    .condition("disk", opt, device)
                    .map(|c| pct(c.lcv_fraction))
                    .unwrap_or_default();
                let mem = self
                    .condition("mem", opt, device)
                    .map(|c| pct(c.lcv_fraction))
                    .unwrap_or_default();
                t.row([format!("{}:{}", opt, device.label()), disk, mem]);
            }
        }
        format!(
            "Fig 15: Queries violating the latency constraint\n{}",
            t.render()
        )
    }

    /// Full report.
    pub fn render(&self) -> String {
        let mut events = String::from("slider events per device: ");
        for (d, n) in &self.events_per_device {
            events.push_str(&format!("{}={} ", d.label(), n));
        }
        format!(
            "{}\n{}\n{}\n{}\n{}\n",
            self.render_fig11(),
            self.render_fig13(),
            self.render_fig14(),
            self.render_fig15(),
            events.trim_end(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> &'static Case2Report {
        use std::sync::OnceLock;
        static REPORT: OnceLock<Case2Report> = OnceLock::new();
        REPORT.get_or_init(|| run(&Case2Config::smoke_test()))
    }

    #[test]
    fn all_conditions_present() {
        let r = report();
        assert_eq!(r.conditions.len(), 2 * 4 * 3);
        for backend in ["disk", "mem"] {
            for opt in OPTS {
                for device in DEVICES {
                    assert!(
                        r.condition(backend, opt, device).is_some(),
                        "{backend}:{opt}:{device}"
                    );
                }
            }
        }
    }

    #[test]
    fn fig11_leap_wobbles_most() {
        let r = report();
        let get = |d: DeviceKind| r.fig11_wobble.iter().find(|&&(x, _)| x == d).unwrap().1;
        assert!(get(DeviceKind::LeapMotion) > get(DeviceKind::Mouse) * 10.0);
        assert!(get(DeviceKind::LeapMotion) > get(DeviceKind::Touch) * 10.0);
    }

    #[test]
    fn fig13_mem_is_interactive_disk_raw_is_not() {
        let r = report();
        for device in DEVICES {
            let mem_raw = r.condition("mem", "raw", device).unwrap();
            let disk_raw = r.condition("disk", "raw", device).unwrap();
            assert!(
                mem_raw.median_latency_ms() < disk_raw.median_latency_ms(),
                "{device}: mem {} vs disk {}",
                mem_raw.median_latency_ms(),
                disk_raw.median_latency_ms()
            );
            assert!(
                mem_raw.median_latency_ms() < 100.0,
                "{device}: mem median {}",
                mem_raw.median_latency_ms()
            );
        }
    }

    #[test]
    fn fig13_disk_optimizations_restore_subsecond_latency() {
        let r = report();
        for device in DEVICES {
            for opt in ["kl>0.2", "skip"] {
                let c = r.condition("disk", opt, device).unwrap();
                let raw = r.condition("disk", "raw", device).unwrap();
                assert!(
                    c.median_latency_ms() < raw.median_latency_ms(),
                    "{device} {opt}: {} vs raw {}",
                    c.median_latency_ms(),
                    raw.median_latency_ms()
                );
            }
        }
    }

    #[test]
    fn fig14_leap_issues_most_queries() {
        let r = report();
        let count = |d: DeviceKind| {
            r.events_per_device
                .iter()
                .find(|&&(x, _)| x == d)
                .unwrap()
                .1
        };
        // At smoke scale traces are truncated to the same cap; compare
        // raw QIF report query rates instead.
        let rate = |d: DeviceKind| {
            r.qif
                .iter()
                .find(|(x, opt, _)| *x == d && *opt == "raw")
                .unwrap()
                .2
                .queries_per_second()
        };
        assert!(rate(DeviceKind::LeapMotion) >= rate(DeviceKind::Mouse) * 0.9);
        let _ = count(DeviceKind::Mouse);
    }

    #[test]
    fn fig14_kl_filters_reduce_the_stream() {
        let r = report();
        for device in DEVICES {
            let raw = r.condition("disk", "raw", device).unwrap();
            let kl = r.condition("disk", "kl>0.2", device).unwrap();
            assert!(
                kl.executed < raw.executed,
                "{device}: kl executed {} vs raw {}",
                kl.executed,
                raw.executed
            );
            assert_eq!(raw.skipped, 0);
        }
    }

    #[test]
    fn fig15_shapes() {
        let r = report();
        // Mem violates less than disk under raw.
        let mem_raw = r.lcv_fraction("mem", "raw").unwrap();
        let disk_raw = r.lcv_fraction("disk", "raw").unwrap();
        assert!(mem_raw < disk_raw, "mem {mem_raw:.2} vs disk {disk_raw:.2}");
        assert!(
            disk_raw > 0.5,
            "raw disk should violate heavily: {disk_raw:.2}"
        );
        // KL>0.2 reduces disk violations vs raw.
        let disk_kl = r.lcv_fraction("disk", "kl>0.2").unwrap();
        assert!(disk_kl < disk_raw);
    }

    #[test]
    fn render_contains_all_artifacts() {
        let r = report();
        let text = r.render();
        for needle in ["Fig 11", "Fig 13", "Fig 14", "Fig 15", "slider events"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
