//! Plain-text rendering of experiment results: aligned tables and
//! sparkline series, in the spirit of the paper's tables and figures.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// Former name of [`Table`], kept so downstream code and examples keep
/// compiling.
pub type TextTable = Table;

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (w, h) in widths.iter_mut().zip(&self.header) {
            *w = (*w).max(h.chars().count());
        }
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cols);
            for (i, &width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                parts.push(format!("{cell:<width$}"));
            }
            let _ = writeln!(out, "{}", parts.join("  ").trim_end());
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders the table under a `== title ==` banner — the shared
    /// end-of-run section format used by the telemetry summaries and
    /// the fleet report.
    pub fn section(&self, title: &str) -> String {
        format!("== {title} ==\n{}", self.render())
    }
}

/// Renders a numeric series as a unicode sparkline (one glyph per point),
/// useful for eyeballing latency-over-time shapes in terminal reports.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// Downsamples a series to at most `points` values (mean per bucket), so
/// long latency series fit on one terminal line.
pub fn downsample(values: &[f64], points: usize) -> Vec<f64> {
    if values.len() <= points || points == 0 {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(points);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Renders an `ids-obs` metrics snapshot as aligned text tables — the
/// end-of-run telemetry summary printed by `repro`. Empty sections are
/// omitted; an entirely empty snapshot renders to an empty string.
pub fn metrics_summary(snap: &ids_obs::MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        let mut t = Table::new(["counter", "value"]);
        for (name, v) in &snap.counters {
            t.row([name.clone(), v.to_string()]);
        }
        let _ = writeln!(out, "{}", t.section("telemetry: counters"));
    }
    if !snap.gauges.is_empty() {
        let mut t = Table::new(["gauge", "value", "high-water"]);
        for (name, v, hwm) in &snap.gauges {
            t.row([name.clone(), v.to_string(), hwm.to_string()]);
        }
        let _ = writeln!(out, "{}", t.section("telemetry: gauges"));
    }
    let active: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !active.is_empty() {
        let mut t = Table::new(["histogram", "count", "mean", "p50", "p90", "p99", "max"]);
        for (name, h) in active {
            t.row([
                name.clone(),
                h.count.to_string(),
                format!("{:.1}", h.mean),
                h.p50.to_string(),
                h.p90.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]);
        }
        let _ = writeln!(out, "{}", t.section("telemetry: histograms"));
    }
    out
}

/// Renders the per-phase wall-clock + virtual-time table sourced from
/// `ids-obs` phase records (not hand-rolled `Instant` timers). Virtual
/// time is the span of simulated time the phase's trace events covered —
/// zero when the recorder was off or the phase recorded no events.
pub fn phase_summary(phases: &[ids_obs::PhaseRecord]) -> String {
    if phases.is_empty() {
        return String::new();
    }
    let mut t = Table::new(["phase", "wall", "virtual", "events"]);
    for p in phases {
        t.row([
            p.name.clone(),
            format!("{:.1}ms", p.wall.as_secs_f64() * 1e3),
            if p.virtual_span.is_zero() {
                "-".to_string()
            } else {
                p.virtual_span.to_string()
            },
            p.events.to_string(),
        ]);
    }
    t.section("run phases")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find('2').unwrap(), col);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]); // alias still works
        t.row(["only"]);
        assert!(t.render().contains("only"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn section_wraps_render_in_banner() {
        let mut t = Table::new(["k", "v"]);
        t.row(["a", "1"]);
        let s = t.section("fleet");
        assert!(s.starts_with("== fleet ==\n"));
        assert!(s.contains('a'));
        assert_eq!(s.trim_start_matches("== fleet ==\n"), t.render());
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        // Constant series does not panic on zero span.
        let flat = sparkline(&[2.0, 2.0]);
        assert_eq!(flat.chars().count(), 2);
    }

    #[test]
    fn downsample_preserves_short_series() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(downsample(&v, 10), v);
        let d = downsample(&(0..100).map(f64::from).collect::<Vec<_>>(), 10);
        assert_eq!(d.len(), 10);
        assert!((d[0] - 4.5).abs() < 1e-9);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn metrics_summary_renders_nonempty_sections_only() {
        let empty = ids_obs::MetricsSnapshot::default();
        assert_eq!(metrics_summary(&empty), "");

        let snap = ids_obs::MetricsSnapshot {
            counters: vec![("engine.buffer.hits".to_string(), 42)],
            gauges: vec![],
            histograms: vec![(
                "sched.latency_us".to_string(),
                ids_obs::HistogramSummary {
                    count: 2,
                    sum: 30,
                    min: 10,
                    max: 20,
                    mean: 15.0,
                    p50: 10,
                    p90: 20,
                    p99: 20,
                },
            )],
        };
        let s = metrics_summary(&snap);
        assert!(s.contains("engine.buffer.hits"));
        assert!(s.contains("42"));
        assert!(s.contains("sched.latency_us"));
        assert!(!s.contains("gauges"));
    }

    #[test]
    fn phase_summary_renders_wall_and_virtual() {
        assert_eq!(phase_summary(&[]), "");
        let phases = vec![ids_obs::PhaseRecord {
            name: "case2.replay".to_string(),
            wall: std::time::Duration::from_millis(12),
            virtual_span: ids_simclock::SimDuration::from_secs(90),
            events: 7,
        }];
        let s = phase_summary(&phases);
        assert!(s.contains("case2.replay"));
        assert!(s.contains("90.000s"));
        assert!(s.contains("7"));
    }
}
