//! Plain-text rendering of experiment results: aligned tables and
//! sparkline series, in the spirit of the paper's tables and figures.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (w, h) in widths.iter_mut().zip(&self.header) {
            *w = (*w).max(h.chars().count());
        }
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cols);
            for (i, &width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                parts.push(format!("{cell:<width$}"));
            }
            let _ = writeln!(out, "{}", parts.join("  ").trim_end());
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Renders a numeric series as a unicode sparkline (one glyph per point),
/// useful for eyeballing latency-over-time shapes in terminal reports.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// Downsamples a series to at most `points` values (mean per bucket), so
/// long latency series fit on one terminal line.
pub fn downsample(values: &[f64], points: usize) -> Vec<f64> {
    if values.len() <= points || points == 0 {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(points);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find('2').unwrap(), col);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only"]);
        assert!(t.render().contains("only"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        // Constant series does not panic on zero span.
        let flat = sparkline(&[2.0, 2.0]);
        assert_eq!(flat.chars().count(), 2);
    }

    #[test]
    fn downsample_preserves_short_series() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(downsample(&v, 10), v);
        let d = downsample(&(0..100).map(f64::from).collect::<Vec<_>>(), 10);
        assert_eq!(d.len(), 10);
        assert!((d[0] - 4.5).abs() < 1e-9);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
