//! `ids-core`: the experiment harness and public facade of the `ids`
//! workspace — a toolkit for evaluating interactive data systems, after
//! *Evaluating Interactive Data Systems: Survey and Case Studies*
//! (Rahman, Jiang, Nandi).
//!
//! The crate wires the substrates together:
//!
//! | layer | crate |
//! |---|---|
//! | virtual time & RNG | [`ids_simclock`] |
//! | query engine (disk + mem backends) | [`ids_engine`] |
//! | device models | [`ids_devices`] |
//! | user behavior & datasets | [`ids_workload`] |
//! | metric taxonomy (LCV, QIF, ...) | [`ids_metrics`] |
//! | study-design toolkit | [`ids_study`] |
//! | behavior-driven optimizations | [`ids_opt`] |
//!
//! and exposes, per case study, an *experiment*: a deterministic,
//! parameterized reproduction of every table and figure in the paper
//! ([`experiments`]), a [`registry`] mapping each paper artifact to the
//! code that regenerates it, and plain-text [`report`] rendering.
//!
//! # Quickstart
//!
//! ```
//! use ids_core::experiments::case2::{Case2Config, run as run_case2};
//!
//! // A scaled-down crossfiltering study (full scale in the benches).
//! let report = run_case2(&Case2Config::smoke_test());
//! // Fig 15: the in-memory backend violates the latency constraint far
//! // less often than the disk backend under the raw workload.
//! let disk_raw = report.lcv_fraction("disk", "raw").unwrap();
//! let mem_raw = report.lcv_fraction("mem", "raw").unwrap();
//! assert!(mem_raw <= disk_raw);
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod registry;
pub mod report;

pub use ids_devices as devices;
pub use ids_engine as engine;
pub use ids_metrics as metrics;
pub use ids_opt as opt;
pub use ids_simclock as simclock;
pub use ids_study as study;
pub use ids_workload as workload;
