//! Property tests for the behavior-driven optimizations.

use ids_engine::{Backend, ColumnBuilder, CostParams, MemBackend, Predicate, Query, TableBuilder};
use ids_opt::klfilter::{replay_kl, HistogramSketch};
use ids_opt::loading::{event_fetch, lazy_loading, timer_fetch, LoadingConfig};
use ids_opt::skip::{replay_raw, replay_skip};
use ids_simclock::{SimDuration, SimTime};
use ids_workload::crossfilter::QueryGroup;
use proptest::prelude::*;

fn fixed_backend(cost_ms: u64) -> MemBackend {
    let params = CostParams {
        startup_ns: cost_ms.max(1) * 1_000_000,
        page_cold_ns: 0,
        page_hot_ns: 0,
        tuple_scan_ns: 0,
        tuple_agg_ns: 0,
        join_build_ns: 0,
        join_probe_ns: 0,
        row_output_ns: 0,
        predicate_eval_ns: 0,
    };
    let b = MemBackend::with_params(params);
    b.database().register(
        TableBuilder::new("t")
            .column("x", ColumnBuilder::float((0..64).map(|i| i as f64)))
            .build()
            .expect("table"),
    );
    b
}

fn group_stream(intervals_ms: &[u64]) -> Vec<QueryGroup> {
    let mut t = 0u64;
    intervals_ms
        .iter()
        .map(|&dt| {
            t += dt;
            QueryGroup {
                at: SimTime::from_millis(t),
                slider: 0,
                queries: vec![Query::count("t", Predicate::True)],
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Skip never executes more groups than raw, never loses the last
    /// group, and bounds the worst executed latency by raw's worst.
    #[test]
    fn skip_dominates_raw(
        intervals in prop::collection::vec(1u64..60, 1..80),
        cost_ms in 1u64..120,
    ) {
        let backend = fixed_backend(cost_ms);
        let groups = group_stream(&intervals);
        let raw = replay_raw(&backend, &groups).expect("raw");
        let skip = replay_skip(&backend, &groups).expect("skip");
        prop_assert!(skip.executed().len() <= raw.executed().len());
        prop_assert_eq!(skip.timings.len(), groups.len());
        // The stream's final group always executes under skip.
        prop_assert!(skip.timings.last().expect("non-empty").executed);
        let worst = |o: &ids_opt::skip::ReplayOutcome| {
            o.executed().iter().map(|t| t.latency().as_millis()).max().unwrap_or(0)
        };
        prop_assert!(worst(&skip) <= worst(&raw));
    }

    /// Raw latency is monotone non-decreasing when the backend is slower
    /// than the issue rate everywhere.
    #[test]
    fn raw_cascade_monotone(intervals in prop::collection::vec(1u64..20, 2..60)) {
        let backend = fixed_backend(25); // always slower than max interval
        let groups = group_stream(&intervals);
        let raw = replay_raw(&backend, &groups).expect("raw");
        let lats: Vec<u64> = raw.timings.iter().map(|t| t.latency().as_millis()).collect();
        prop_assert!(lats.windows(2).all(|w| w[1] >= w[0]), "{lats:?}");
    }

    /// KL threshold monotonicity: a higher threshold never executes more.
    #[test]
    fn kl_threshold_monotone(seed in 0u64..500) {
        let table = TableBuilder::new("dataroad")
            .column("x", ColumnBuilder::float((0..5_000).map(|i| (i % 100) as f64)))
            .column("y", ColumnBuilder::float((0..5_000).map(|i| ((i % 100) as f64) / 2.0)))
            .build()
            .expect("table");
        let backend = MemBackend::new();
        backend.database().register(table.clone());
        let sketch = HistogramSketch::new(table, 800, seed);
        let groups: Vec<QueryGroup> = (0..20)
            .map(|i| QueryGroup {
                at: SimTime::from_millis(20 * (i as u64 + 1)),
                slider: 0,
                queries: vec![Query::histogram(
                    "dataroad",
                    ids_engine::BinSpec::new("y", 0.0, 50.0, 10),
                    Predicate::between("x", 0.0, 99.0 - i as f64 * 2.0),
                )],
            })
            .collect();
        let mut prev_executed = usize::MAX;
        for threshold in [0.0, 0.1, 0.3, 1.0, 5.0] {
            let out = replay_kl(&backend, &groups, &sketch, threshold).expect("kl");
            let executed = out.executed().len();
            prop_assert!(executed <= prev_executed, "threshold {threshold}");
            prop_assert!(executed >= 1, "first group always executes");
            prev_executed = executed;
        }
    }

    /// Loading strategies always produce monotone supply and stay within
    /// the table's capacity.
    #[test]
    fn loading_supply_invariants(
        steps in prop::collection::vec((1u64..500, 1u64..40), 1..60),
        fetch_size in 1u64..120,
        exec_ms in 1u64..200,
        total in 50u64..2_000,
    ) {
        // Build a monotone demand curve from positive increments.
        let mut t = 0u64;
        let mut cum = 0u64;
        let demand: Vec<(SimTime, u64)> = steps
            .iter()
            .map(|&(dt, dd)| {
                t += dt;
                cum += dd;
                (SimTime::from_millis(t), cum)
            })
            .collect();
        let cfg = LoadingConfig {
            fetch_size,
            fetch_exec: SimDuration::from_millis(exec_ms),
            total_tuples: total,
        };
        for outcome in [
            lazy_loading(&demand, &cfg),
            event_fetch(&demand, &cfg, fetch_size),
            timer_fetch(&demand, &cfg, SimDuration::from_millis(500)),
        ] {
            prop_assert!(outcome
                .supply
                .windows(2)
                .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
            prop_assert!(outcome.supply.iter().all(|&(_, c)| c <= total));
            prop_assert_eq!(outcome.waits.len(), demand.len());
            let lcv = outcome.lcv(&demand);
            prop_assert_eq!(lcv.total, demand.len());
            prop_assert!(lcv.violations <= lcv.total);
        }
    }

    /// Faster backends never increase loading violations (event fetch).
    #[test]
    fn faster_fetch_never_hurts(
        steps in prop::collection::vec((5u64..200, 1u64..30), 2..40),
        exec_fast in 1u64..50,
        extra in 1u64..300,
    ) {
        let mut t = 0u64;
        let mut cum = 0u64;
        let demand: Vec<(SimTime, u64)> = steps
            .iter()
            .map(|&(dt, dd)| {
                t += dt;
                cum += dd;
                (SimTime::from_millis(t), cum)
            })
            .collect();
        let mk = |exec: u64| LoadingConfig {
            fetch_size: 20,
            fetch_exec: SimDuration::from_millis(exec),
            total_tuples: 5_000,
        };
        let fast = event_fetch(&demand, &mk(exec_fast), 20);
        let slow = event_fetch(&demand, &mk(exec_fast + extra), 20);
        prop_assert!(fast.lcv(&demand).violations <= slow.lcv(&demand).violations);
    }
}
