//! Session result reuse (the Sesame approach).
//!
//! In session-based querying, consecutive queries are related and often
//! *repeat* — a slider returns to a previous position, a filter toggles
//! off and on. Caching results keyed by query identity within the session
//! turns those repeats into constant-time lookups; the paper cites
//! speedups of up to 25× from this family of techniques.

use std::collections::HashMap;

use ids_engine::{Backend, EngineResult, Query, QueryFootprint, QueryOutcome, ResultSet};
use ids_simclock::SimDuration;
use parking_lot::Mutex;

/// The (virtual) cost of serving a result from the session cache.
pub const CACHE_LOOKUP_COST: SimDuration = SimDuration::from_micros(100);

/// A session-scoped result cache in front of a backend.
pub struct SessionCache<'b> {
    backend: &'b dyn Backend,
    entries: Mutex<HashMap<String, ResultSet>>,
    stats: Mutex<ReuseStats>,
}

/// Accounting for a session: virtual time actually spent vs what the raw
/// backend would have spent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Queries served from the cache.
    pub hits: u64,
    /// Queries executed on the backend.
    pub misses: u64,
    /// Virtual time spent with reuse enabled.
    pub actual_cost: SimDuration,
    /// Virtual time the raw backend would have spent (every query
    /// executed).
    pub raw_cost: SimDuration,
    /// Physical work (scans, predicate evaluations, page reads) that
    /// cache hits avoided — the engine-side counterpart of the virtual
    /// `raw_cost - actual_cost` saving.
    pub avoided: QueryFootprint,
}

impl ReuseStats {
    /// Speedup factor of the session with reuse vs without.
    pub fn speedup(&self) -> f64 {
        let actual = self.actual_cost.as_secs_f64();
        if actual <= 0.0 {
            return 1.0;
        }
        self.raw_cost.as_secs_f64() / actual
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<'b> SessionCache<'b> {
    /// Wraps a backend for one user session.
    pub fn new(backend: &'b dyn Backend) -> SessionCache<'b> {
        SessionCache {
            backend,
            entries: Mutex::new(HashMap::new()),
            stats: Mutex::new(ReuseStats::default()),
        }
    }

    /// Executes a query, reusing a previous identical query's result if
    /// the session has one.
    pub fn execute(&self, query: &Query) -> EngineResult<QueryOutcome> {
        // Query identity: the rendered SQL-ish form is canonical enough
        // for the shapes this engine supports (constructors normalize).
        let key = query.to_string();
        if let Some(result) = self.entries.lock().get(&key).cloned() {
            let mut stats = self.stats.lock();
            stats.hits += 1;
            stats.actual_cost += CACHE_LOOKUP_COST;
            // Raw cost still accrues what the backend *would* have paid;
            // use the real execution cost for fidelity.
            let raw = self.backend.execute(query)?;
            stats.raw_cost += raw.cost;
            stats.avoided = stats.avoided.merge(raw.footprint);
            return Ok(QueryOutcome {
                result,
                footprint: Default::default(),
                cost: CACHE_LOOKUP_COST,
                quality: ids_engine::ResultQuality::Exact,
            });
        }
        let outcome = self.backend.execute(query)?;
        let mut stats = self.stats.lock();
        stats.misses += 1;
        stats.actual_cost += outcome.cost;
        stats.raw_cost += outcome.cost;
        self.entries.lock().insert(key, outcome.result.clone());
        Ok(outcome)
    }

    /// Session accounting so far.
    pub fn stats(&self) -> ReuseStats {
        *self.stats.lock()
    }

    /// Ends the session: clears entries and statistics.
    pub fn reset(&self) {
        self.entries.lock().clear();
        *self.stats.lock() = ReuseStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::{ColumnBuilder, MemBackend, Predicate, TableBuilder};

    fn backend() -> MemBackend {
        let b = MemBackend::new();
        b.database().register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..100_000).map(|i| i as f64)))
                .build()
                .unwrap(),
        );
        b
    }

    #[test]
    fn repeats_hit_the_cache() {
        let b = backend();
        let cache = SessionCache::new(&b);
        let q = Query::count("t", Predicate::between("x", 10.0, 5_000.0));
        let first = cache.execute(&q).unwrap();
        let second = cache.execute(&q).unwrap();
        assert_eq!(first.result, second.result);
        assert_eq!(second.cost, CACHE_LOOKUP_COST);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
        // The hit avoided a full scan of the 100k-row table.
        assert_eq!(stats.avoided.rows_scanned, 100_000);
    }

    #[test]
    fn different_queries_miss() {
        let b = backend();
        let cache = SessionCache::new(&b);
        cache
            .execute(&Query::count("t", Predicate::between("x", 0.0, 10.0)))
            .unwrap();
        cache
            .execute(&Query::count("t", Predicate::between("x", 0.0, 20.0)))
            .unwrap();
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn slider_returning_to_old_positions_speeds_up() {
        // A session that oscillates among 5 slider positions, 50 queries:
        // 45 of them are repeats.
        let b = backend();
        let cache = SessionCache::new(&b);
        for i in 0..50 {
            let pos = (i % 5) as f64 * 100.0;
            let q = Query::count("t", Predicate::between("x", pos, pos + 5_000.0));
            cache.execute(&q).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 45);
        assert!(
            stats.speedup() > 5.0,
            "session reuse speedup {:.1}x",
            stats.speedup()
        );
    }

    #[test]
    fn reset_clears_the_session() {
        let b = backend();
        let cache = SessionCache::new(&b);
        let q = Query::count("t", Predicate::True);
        cache.execute(&q).unwrap();
        cache.reset();
        cache.execute(&q).unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn empty_session_speedup_is_one() {
        let b = backend();
        let cache = SessionCache::new(&b);
        assert_eq!(cache.stats().speedup(), 1.0);
    }
}
