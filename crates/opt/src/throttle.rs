//! QIF throttling: matching the frontend's issue rate to the backend.
//!
//! Fig 3's bottom-right quadrant — high query issuing frequency against a
//! slow backend — calls for throttling: "even if the user issues queries
//! at a high rate, they are limited in the amount of information they can
//! process, so progressively presenting them with results is adequate."
//! This module implements two throttles over a query-group stream:
//!
//! - [`throttle_fixed`] — enforce a minimum inter-issue interval
//!   (classic debounce-to-rate);
//! - [`AdaptiveThrottle`] — measure the backend's recent service times
//!   and track its capacity, the closed-loop version of
//!   [`ids_metrics::qif::throttle_suggestion`].
//!
//! Throttles *drop* intermediate groups (the slider's newest position
//! supersedes older ones), so the surviving stream keeps the latest
//! state, like the skip optimization but applied before the backend.

use ids_simclock::{SimDuration, SimTime};
use ids_workload::crossfilter::QueryGroup;

/// Keeps at most one group per `min_interval`, always preferring the
/// latest group within each window (and always keeping the final group).
pub fn throttle_fixed(groups: &[QueryGroup], min_interval: SimDuration) -> Vec<QueryGroup> {
    if groups.is_empty() {
        return Vec::new();
    }
    let mut out: Vec<QueryGroup> = Vec::new();
    let mut window_end = groups[0].at + min_interval;
    let mut pending: Option<&QueryGroup> = None;
    for g in groups {
        if g.at >= window_end {
            if let Some(p) = pending.take() {
                out.push(p.clone());
            }
            // Advance the window to contain g.
            while g.at >= window_end {
                window_end += min_interval;
            }
        }
        pending = Some(g);
    }
    if let Some(p) = pending {
        out.push(p.clone());
    }
    let reg = ids_obs::metrics();
    reg.counter("opt.throttle.fixed.kept").add(out.len() as u64);
    reg.counter("opt.throttle.fixed.dropped")
        .add((groups.len() - out.len()) as u64);
    out
}

/// A closed-loop throttle: it observes each executed group's service
/// time (exponential moving average) and only admits a group when the
/// backend is predicted free.
#[derive(Debug, Clone)]
pub struct AdaptiveThrottle {
    /// EMA smoothing factor in `(0, 1]`; higher = more reactive.
    alpha: f64,
    /// Current service-time estimate.
    estimate: SimDuration,
    /// Predicted time the backend frees up.
    busy_until: SimTime,
    admitted: usize,
    dropped: usize,
    /// A service time this many times over the running estimate counts
    /// as a stall; `0` disables stall reaction.
    stall_factor: f64,
    /// Extra back-off on a detected stall, as a multiple of the observed
    /// service time.
    stall_hold: f64,
    stall_reactions: usize,
}

impl AdaptiveThrottle {
    /// Creates a throttle with an initial service-time guess.
    pub fn new(initial_estimate: SimDuration) -> AdaptiveThrottle {
        AdaptiveThrottle {
            alpha: 0.3,
            estimate: initial_estimate,
            busy_until: SimTime::ZERO,
            admitted: 0,
            dropped: 0,
            stall_factor: 0.0,
            stall_hold: 0.0,
            stall_reactions: 0,
        }
    }

    /// Enables stall reaction: when an observed service time exceeds
    /// `stall_factor ×` the running estimate (the signature of a fault
    /// window, not ordinary load), the throttle backs off for an extra
    /// `stall_hold ×` that service time instead of hammering a wedged
    /// backend with queries it would only queue.
    pub fn with_stall_reaction(mut self, stall_factor: f64, stall_hold: f64) -> AdaptiveThrottle {
        self.stall_factor = stall_factor.max(0.0);
        self.stall_hold = stall_hold.max(0.0);
        self
    }

    /// Current service-time estimate.
    pub fn estimate(&self) -> SimDuration {
        self.estimate
    }

    /// `(admitted, dropped)` counts so far.
    pub fn counts(&self) -> (usize, usize) {
        (self.admitted, self.dropped)
    }

    /// Number of stall reactions triggered so far.
    pub fn stall_reactions(&self) -> usize {
        self.stall_reactions
    }

    /// Decides whether a group issued at `at` should reach the backend.
    pub fn admit(&mut self, at: SimTime) -> bool {
        if at >= self.busy_until {
            self.admitted += 1;
            // Reserve the predicted service window.
            self.busy_until = at + self.estimate;
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Feeds back an observed service time for an admitted group.
    pub fn observe(&mut self, service: SimDuration) {
        let est = self.estimate.as_secs_f64();
        let obs = service.as_secs_f64();
        self.estimate = SimDuration::from_secs_f64(est + self.alpha * (obs - est));
    }

    /// Filters a whole stream, using `service_of` to learn each admitted
    /// group's cost (e.g. a backend probe).
    pub fn filter_stream<F>(&mut self, groups: &[QueryGroup], mut service_of: F) -> Vec<QueryGroup>
    where
        F: FnMut(&QueryGroup) -> SimDuration,
    {
        let reg = ids_obs::metrics();
        let admitted_ctr = reg.counter("opt.throttle.adaptive.admitted");
        let dropped_ctr = reg.counter("opt.throttle.adaptive.dropped");
        let stall_ctr = reg.counter("opt.throttle.stall_reactions");
        let rec = ids_obs::recorder();
        let mut out = Vec::new();
        for g in groups {
            if self.admit(g.at) {
                admitted_ctr.inc();
                let service = service_of(g);
                let prior = self.estimate;
                // Correct the reservation with the real cost.
                self.busy_until = g.at + service;
                self.observe(service);
                if self.stall_factor > 0.0
                    && service.as_secs_f64() > prior.as_secs_f64() * self.stall_factor
                {
                    // The backend is stalling, not just loaded: back off
                    // beyond the observed service before the next probe.
                    self.busy_until += service.mul_f64(self.stall_hold);
                    self.stall_reactions += 1;
                    stall_ctr.inc();
                    if rec.is_enabled() {
                        let track = rec.track("opt/throttle");
                        rec.record_instant(
                            "opt",
                            "throttle.stall_reaction",
                            track,
                            g.at,
                            vec![(
                                "service_ms",
                                ids_obs::ArgValue::F64(service.as_millis_f64()),
                            )],
                        );
                    }
                }
                if rec.is_enabled() {
                    rec.record_counter(
                        "opt.throttle.estimate_ms",
                        g.at,
                        self.estimate.as_millis_f64(),
                    );
                }
                out.push(g.clone());
            } else {
                dropped_ctr.inc();
                if rec.is_enabled() {
                    let track = rec.track("opt/throttle");
                    rec.record_instant(
                        "opt",
                        "throttle.drop",
                        track,
                        g.at,
                        vec![(
                            "busy_for_ms",
                            ids_obs::ArgValue::F64(
                                self.busy_until.saturating_since(g.at).as_millis_f64(),
                            ),
                        )],
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::{Predicate, Query};

    fn groups(interval_ms: u64, n: usize) -> Vec<QueryGroup> {
        (0..n)
            .map(|i| QueryGroup {
                at: SimTime::from_millis(interval_ms * (i as u64 + 1)),
                slider: 0,
                queries: vec![Query::count("t", Predicate::True)],
            })
            .collect()
    }

    #[test]
    fn fixed_throttle_caps_the_rate() {
        // 50 q/s throttled to 10 q/s.
        let input = groups(20, 100);
        let out = throttle_fixed(&input, SimDuration::from_millis(100));
        assert!(out.len() <= 22, "kept {} groups", out.len());
        assert!(out.len() >= 18);
        // Surviving stream is sorted and keeps the final group.
        assert!(out.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(out.last().unwrap().at, input.last().unwrap().at);
    }

    #[test]
    fn fixed_throttle_is_identity_for_slow_streams() {
        let input = groups(500, 10);
        let out = throttle_fixed(&input, SimDuration::from_millis(100));
        assert_eq!(out.len(), input.len());
    }

    #[test]
    fn fixed_throttle_empty() {
        assert!(throttle_fixed(&[], SimDuration::from_millis(100)).is_empty());
    }

    #[test]
    fn adaptive_throttle_converges_to_backend_capacity() {
        // Backend takes a constant 80 ms; stream arrives at 20 ms.
        let input = groups(20, 200);
        let mut throttle = AdaptiveThrottle::new(SimDuration::from_millis(5));
        let out = throttle.filter_stream(&input, |_| SimDuration::from_millis(80));
        // Admitted rate ≈ one per 80 ms = one per 4 input groups.
        let (admitted, dropped) = throttle.counts();
        assert_eq!(admitted, out.len());
        assert!(admitted + dropped == input.len());
        assert!(
            (40..=60).contains(&admitted),
            "admitted {admitted} of 200 (expected ~50)"
        );
        // The estimate converged to the true service time.
        let est = throttle.estimate().as_millis_f64();
        assert!((est - 80.0).abs() < 8.0, "estimate {est:.1} ms");
    }

    #[test]
    fn adaptive_throttle_admits_everything_when_fast() {
        let input = groups(50, 40);
        let mut throttle = AdaptiveThrottle::new(SimDuration::from_millis(5));
        let out = throttle.filter_stream(&input, |_| SimDuration::from_millis(2));
        assert_eq!(out.len(), input.len());
    }

    #[test]
    fn stall_reaction_backs_off_through_a_fault_window() {
        // Steady 10 ms service, except a stall burst at 10× between
        // groups 40 and 60 (by issue time).
        let input = groups(20, 100);
        let service = |g: &QueryGroup| {
            if (SimTime::from_millis(800)..SimTime::from_millis(1_200)).contains(&g.at) {
                SimDuration::from_millis(100)
            } else {
                SimDuration::from_millis(10)
            }
        };
        let mut plain = AdaptiveThrottle::new(SimDuration::from_millis(10));
        let kept_plain = plain.filter_stream(&input, service).len();
        let mut reactive =
            AdaptiveThrottle::new(SimDuration::from_millis(10)).with_stall_reaction(3.0, 2.0);
        let kept_reactive = reactive.filter_stream(&input, service).len();
        assert!(reactive.stall_reactions() > 0, "the burst must be noticed");
        assert!(
            kept_reactive < kept_plain,
            "backing off must shed probes during the stall: {kept_reactive} vs {kept_plain}"
        );
        assert_eq!(plain.stall_reactions(), 0, "disabled by default");
    }

    #[test]
    fn admitted_stream_respects_backend_freeness() {
        let input = groups(10, 100);
        let mut throttle = AdaptiveThrottle::new(SimDuration::from_millis(30));
        let out = throttle.filter_stream(&input, |_| SimDuration::from_millis(30));
        for w in out.windows(2) {
            assert!(
                w[1].at.saturating_since(w[0].at) >= SimDuration::from_millis(30),
                "admitted groups overlap the busy window"
            );
        }
    }
}
