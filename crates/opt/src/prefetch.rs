//! Predictive prefetching for composite interfaces.
//!
//! Case study 3's takeaways feed two techniques:
//!
//! - a **Markov action prefetcher** (the survey's Markov-chain family):
//!   learn order-1 transition probabilities between map actions from
//!   session traces, and prefetch the tiles the predicted next action
//!   would need during the user's ~18 s exploration window;
//! - a **zoom hotspot budget**: since zoom levels concentrate in 11–14
//!   (Fig 18), precomputation budget is split proportionally to observed
//!   zoom dwell.

use std::collections::HashMap;

use ids_workload::composite::{CompositeSession, MapState, Widget};

use ids_metrics::cache::{CacheLocation, HitRateCounter};

/// Discrete map actions for the Markov model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapAction {
    /// Zoom one level in.
    ZoomIn,
    /// Zoom one level out.
    ZoomOut,
    /// Pan dominantly north.
    PanNorth,
    /// Pan dominantly south.
    PanSouth,
    /// Pan dominantly east.
    PanEast,
    /// Pan dominantly west.
    PanWest,
}

impl MapAction {
    /// All actions.
    pub const ALL: [MapAction; 6] = [
        MapAction::ZoomIn,
        MapAction::ZoomOut,
        MapAction::PanNorth,
        MapAction::PanSouth,
        MapAction::PanEast,
        MapAction::PanWest,
    ];

    /// Applies the action to a map state, producing the next viewport.
    pub fn apply(self, state: &MapState) -> MapState {
        let mut next = *state;
        let lng_step = 360.0 / f64::powi(2.0, state.zoom) / 2.0;
        let lat_step = 170.0 / f64::powi(2.0, state.zoom) / 2.0;
        match self {
            MapAction::ZoomIn => next.zoom = (next.zoom + 1).min(18),
            MapAction::ZoomOut => next.zoom = (next.zoom - 1).max(1),
            MapAction::PanNorth => next.center_lat += lat_step,
            MapAction::PanSouth => next.center_lat -= lat_step,
            MapAction::PanEast => next.center_lng += lng_step,
            MapAction::PanWest => next.center_lng -= lng_step,
        }
        next
    }
}

/// Extracts the map-action sequence of one session (non-map steps are
/// transparent: the map state simply carries across them).
pub fn actions_of(session: &CompositeSession) -> Vec<(MapState, MapAction)> {
    let mut out = Vec::new();
    for w in session.steps.windows(2) {
        if w[1].widget != Widget::Map {
            continue;
        }
        let (a, b) = (&w[0].state.map, &w[1].state.map);
        let action = if b.zoom > a.zoom {
            MapAction::ZoomIn
        } else if b.zoom < a.zoom {
            MapAction::ZoomOut
        } else {
            let d_lat = b.center_lat - a.center_lat;
            let d_lng = b.center_lng - a.center_lng;
            if d_lat == 0.0 && d_lng == 0.0 {
                continue;
            }
            if d_lat.abs() >= d_lng.abs() {
                if d_lat > 0.0 {
                    MapAction::PanNorth
                } else {
                    MapAction::PanSouth
                }
            } else if d_lng > 0.0 {
                MapAction::PanEast
            } else {
                MapAction::PanWest
            }
        };
        out.push((*a, action));
    }
    out
}

/// Order-1 Markov model over map actions.
#[derive(Debug, Clone, Default)]
pub struct MarkovPrefetcher {
    transitions: HashMap<MapAction, HashMap<MapAction, u64>>,
    /// Unconditional action counts, the fallback for unseen contexts.
    marginals: HashMap<MapAction, u64>,
}

impl MarkovPrefetcher {
    /// An untrained model.
    pub fn new() -> MarkovPrefetcher {
        MarkovPrefetcher::default()
    }

    /// Accumulates transition counts from an action sequence.
    pub fn train(&mut self, actions: &[MapAction]) {
        for a in actions {
            *self.marginals.entry(*a).or_insert(0) += 1;
        }
        for w in actions.windows(2) {
            *self
                .transitions
                .entry(w[0])
                .or_default()
                .entry(w[1])
                .or_insert(0) += 1;
        }
    }

    /// Trains from whole sessions.
    pub fn train_sessions(&mut self, sessions: &[CompositeSession]) {
        for s in sessions {
            let seq: Vec<MapAction> = actions_of(s).into_iter().map(|(_, a)| a).collect();
            self.train(&seq);
        }
    }

    /// Predicted next actions after `prev`, most probable first.
    pub fn predict(&self, prev: MapAction) -> Vec<(MapAction, f64)> {
        let counts = self.transitions.get(&prev).unwrap_or(&self.marginals);
        let total: u64 = counts.values().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut out: Vec<(MapAction, f64)> = counts
            .iter()
            .map(|(&a, &c)| (a, c as f64 / total as f64))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probabilities"));
        out
    }
}

/// A map tile key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileId {
    /// Zoom level.
    pub zoom: i32,
    /// Tile column.
    pub x: i64,
    /// Tile row.
    pub y: i64,
}

/// Tiles covering a viewport (3×3 around the centre tile, like slippy-map
/// clients over-fetch one ring).
pub fn viewport_tiles(state: &MapState) -> Vec<TileId> {
    let n = f64::powi(2.0, state.zoom);
    let cx = ((state.center_lng + 180.0) / 360.0 * n).floor() as i64;
    let cy = ((90.0 - state.center_lat) / 180.0 * n).floor() as i64;
    let mut tiles = Vec::with_capacity(9);
    for dx in -1..=1 {
        for dy in -1..=1 {
            tiles.push(TileId {
                zoom: state.zoom,
                x: cx + dx,
                y: cy + dy,
            });
        }
    }
    tiles
}

/// Prefetch strategies compared by the tile-cache evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileStrategy {
    /// Demand fetching only (tiles cached after first use).
    DemandOnly,
    /// Demand fetching plus Markov prediction: after serving a step, the
    /// top-k predicted next viewports are prefetched during think time.
    Markov {
        /// How many predicted actions to prefetch for.
        top_k: usize,
    },
}

/// Replays the map steps of sessions through a tile cache and reports the
/// user-visible hit rate.
pub fn evaluate_tile_strategy(
    sessions: &[CompositeSession],
    model: &MarkovPrefetcher,
    strategy: TileStrategy,
    cache_capacity: usize,
) -> HitRateCounter {
    let reg = ids_obs::metrics();
    let hits_ctr = reg.counter("opt.prefetch.tile_hits");
    let miss_ctr = reg.counter("opt.prefetch.tile_misses");
    let prefetched_ctr = reg.counter("opt.prefetch.tiles_prefetched");
    let rec = ids_obs::recorder();

    let mut counter = HitRateCounter::new(CacheLocation::Frontend);
    for session in sessions {
        // Per-session cache (a fresh browser).
        let mut cache: lru::LruCache = lru::LruCache::new(cache_capacity);
        let actions = actions_of(session);
        let lookups_before = counter.lookups();
        let hits_before = counter.hits();
        let mut prefetched_this_session = 0u64;
        for (i, (state, action)) in actions.iter().enumerate() {
            let next_state = action.apply(state);
            // The user performs `action`: the next viewport's tiles load.
            for tile in viewport_tiles(&next_state) {
                let was_hit = cache.get(tile);
                counter.record(was_hit);
                if was_hit {
                    hits_ctr.inc();
                } else {
                    miss_ctr.inc();
                }
                cache.put(tile);
            }
            // During think time, prefetch for the predicted follow-up.
            if let TileStrategy::Markov { top_k } = strategy {
                let _ = i;
                for (predicted, _) in model.predict(*action).into_iter().take(top_k) {
                    let predicted_state = predicted.apply(&next_state);
                    for tile in viewport_tiles(&predicted_state) {
                        cache.put(tile);
                        prefetched_this_session += 1;
                    }
                }
            }
        }
        prefetched_ctr.add(prefetched_this_session);
        // One span per session covering its map activity, so prefetch
        // effectiveness is visible on the trace timeline.
        if rec.is_enabled() && !session.steps.is_empty() {
            let track = rec.track("opt/prefetch");
            let start = session.steps[0].at;
            let end = session.steps[session.steps.len() - 1].at;
            let hits = counter.hits() - hits_before;
            let lookups = counter.lookups() - lookups_before;
            rec.record_span(
                "opt",
                "prefetch.session",
                track,
                start,
                end.saturating_since(start),
                vec![
                    ("tile_hits", ids_obs::ArgValue::U64(hits)),
                    ("tile_misses", ids_obs::ArgValue::U64(lookups - hits)),
                    (
                        "tiles_prefetched",
                        ids_obs::ArgValue::U64(prefetched_this_session),
                    ),
                ],
            );
        }
    }
    counter
}

/// Gates speculative prefetch work on backend health.
///
/// Prefetching is the first thing to shed when the backend degrades:
/// speculative tile loads compete with the user's real queries for a
/// backend that is already missing its budget. The governor watches
/// observed service times (same EMA as [`crate::throttle::AdaptiveThrottle`])
/// and suppresses the prefetch budget while a stall is in effect,
/// restoring it only after `cooldown` consecutive healthy observations.
#[derive(Debug, Clone)]
pub struct PrefetchGovernor {
    alpha: f64,
    estimate: ids_simclock::SimDuration,
    /// Service times beyond `stress_factor ×` the estimate count as
    /// stress.
    stress_factor: f64,
    /// Healthy observations required before prefetch resumes.
    cooldown: u32,
    healthy_streak: u32,
    stressed: bool,
    suppressed: usize,
}

impl PrefetchGovernor {
    /// Creates a governor with an initial service-time guess. Stress is
    /// declared at `stress_factor ×` the running estimate and cleared
    /// after `cooldown` healthy observations.
    pub fn new(
        initial_estimate: ids_simclock::SimDuration,
        stress_factor: f64,
        cooldown: u32,
    ) -> PrefetchGovernor {
        PrefetchGovernor {
            alpha: 0.3,
            estimate: initial_estimate,
            stress_factor: stress_factor.max(1.0),
            cooldown: cooldown.max(1),
            healthy_streak: 0,
            stressed: false,
            suppressed: 0,
        }
    }

    /// Feeds back one observed service time.
    pub fn observe(&mut self, service: ids_simclock::SimDuration) {
        let est = self.estimate.as_secs_f64();
        let obs = service.as_secs_f64();
        if obs > est * self.stress_factor {
            self.stressed = true;
            self.healthy_streak = 0;
        } else if self.stressed {
            self.healthy_streak += 1;
            if self.healthy_streak >= self.cooldown {
                self.stressed = false;
                self.healthy_streak = 0;
            }
        }
        self.estimate = ids_simclock::SimDuration::from_secs_f64(est + self.alpha * (obs - est));
    }

    /// Whether the governor currently considers the backend stressed.
    pub fn is_stressed(&self) -> bool {
        self.stressed
    }

    /// The prefetch budget to use right now: `base` when healthy, `0`
    /// while stressed (each suppression is counted).
    pub fn budget(&mut self, base: usize) -> usize {
        if self.stressed {
            self.suppressed += 1;
            ids_obs::metrics().counter("opt.prefetch.suppressed").inc();
            0
        } else {
            base
        }
    }

    /// How many prefetch opportunities were suppressed so far.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }
}

/// Splits a precomputation budget across zoom levels proportionally to
/// observed dwell (the Fig 18 hotspot guidance). Returns
/// `(zoom, budget_share)` for each observed level, shares summing to 1.
pub fn zoom_budget(sessions: &[CompositeSession]) -> Vec<(i32, f64)> {
    let mut counts: HashMap<i32, u64> = HashMap::new();
    let mut total = 0u64;
    for s in sessions {
        for step in &s.steps {
            *counts.entry(step.state.map.zoom).or_insert(0) += 1;
            total += 1;
        }
    }
    let mut out: Vec<(i32, f64)> = counts
        .into_iter()
        .map(|(z, c)| (z, c as f64 / total.max(1) as f64))
        .collect();
    out.sort_by_key(|&(z, _)| z);
    out
}

/// A tiny internal LRU for tile caching (distinct from the engine's page
/// buffer pool, which manages pinned byte pages).
mod lru {
    use super::TileId;
    use std::collections::HashMap;

    #[derive(Debug)]
    pub struct LruCache {
        capacity: usize,
        stamp: u64,
        entries: HashMap<TileId, u64>,
    }

    impl LruCache {
        pub fn new(capacity: usize) -> LruCache {
            LruCache {
                capacity: capacity.max(1),
                stamp: 0,
                entries: HashMap::new(),
            }
        }

        /// Returns whether the tile was present (and refreshes it).
        pub fn get(&mut self, id: TileId) -> bool {
            self.stamp += 1;
            if let Some(t) = self.entries.get_mut(&id) {
                *t = self.stamp;
                true
            } else {
                false
            }
        }

        pub fn put(&mut self, id: TileId) {
            self.stamp += 1;
            if self.entries.len() >= self.capacity && !self.entries.contains_key(&id) {
                if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &t)| t) {
                    self.entries.remove(&victim);
                }
            }
            self.entries.insert(id, self.stamp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_simclock::SimDuration;
    use ids_workload::composite::{simulate_study, CompositeConfig};

    fn sessions() -> Vec<CompositeSession> {
        simulate_study(
            31,
            6,
            &CompositeConfig {
                min_duration: SimDuration::from_secs(900),
                request_model: None,
            },
        )
    }

    #[test]
    fn actions_extracted_from_map_steps_only() {
        let ss = sessions();
        let mut total = 0usize;
        for s in &ss {
            let acts = actions_of(s);
            total += acts.len();
            let map_steps = s
                .steps
                .iter()
                .skip(1)
                .filter(|st| st.widget == Widget::Map)
                .count();
            assert!(acts.len() <= map_steps);
        }
        assert!(total > 50, "enough actions to learn from: {total}");
    }

    #[test]
    fn markov_probabilities_are_normalized() {
        let mut m = MarkovPrefetcher::new();
        m.train_sessions(&sessions());
        for a in MapAction::ALL {
            let preds = m.predict(a);
            if preds.is_empty() {
                continue;
            }
            let total: f64 = preds.iter().map(|&(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "{a:?}: {total}");
            assert!(preds.windows(2).all(|w| w[0].1 >= w[1].1), "sorted desc");
        }
    }

    #[test]
    fn untrained_model_predicts_nothing() {
        let m = MarkovPrefetcher::new();
        assert!(m.predict(MapAction::ZoomIn).is_empty());
    }

    #[test]
    fn markov_prefetch_beats_demand_only() {
        let ss = sessions();
        let mut m = MarkovPrefetcher::new();
        m.train_sessions(&ss);
        let demand = evaluate_tile_strategy(&ss, &m, TileStrategy::DemandOnly, 512);
        let markov = evaluate_tile_strategy(&ss, &m, TileStrategy::Markov { top_k: 2 }, 512);
        assert!(
            markov.hit_rate() > demand.hit_rate(),
            "markov {:.3} vs demand {:.3}",
            markov.hit_rate(),
            demand.hit_rate()
        );
    }

    #[test]
    fn apply_is_consistent() {
        let s = MapState {
            zoom: 12,
            center_lat: 40.0,
            center_lng: -100.0,
        };
        assert_eq!(MapAction::ZoomIn.apply(&s).zoom, 13);
        assert_eq!(MapAction::ZoomOut.apply(&s).zoom, 11);
        assert!(MapAction::PanNorth.apply(&s).center_lat > s.center_lat);
        assert!(MapAction::PanWest.apply(&s).center_lng < s.center_lng);
    }

    #[test]
    fn viewport_tiles_form_a_ring() {
        let s = MapState {
            zoom: 12,
            center_lat: 40.0,
            center_lng: -100.0,
        };
        let tiles = viewport_tiles(&s);
        assert_eq!(tiles.len(), 9);
        let xs: std::collections::HashSet<i64> = tiles.iter().map(|t| t.x).collect();
        assert_eq!(xs.len(), 3);
        assert!(tiles.iter().all(|t| t.zoom == 12));
    }

    #[test]
    fn governor_suppresses_prefetch_during_stalls_then_recovers() {
        let mut gov = PrefetchGovernor::new(SimDuration::from_millis(10), 3.0, 3);
        // Healthy steady state: full budget.
        for _ in 0..5 {
            gov.observe(SimDuration::from_millis(10));
        }
        assert!(!gov.is_stressed());
        assert_eq!(gov.budget(4), 4);
        // A stall spike: prefetch goes to zero.
        gov.observe(SimDuration::from_millis(200));
        assert!(gov.is_stressed());
        assert_eq!(gov.budget(4), 0);
        assert_eq!(gov.suppressed(), 1);
        // Two healthy observations are not enough to clear the cooldown…
        gov.observe(SimDuration::from_millis(10));
        gov.observe(SimDuration::from_millis(10));
        assert_eq!(gov.budget(4), 0);
        // …the third is.
        gov.observe(SimDuration::from_millis(10));
        assert!(!gov.is_stressed());
        assert_eq!(gov.budget(4), 4);
        assert_eq!(gov.suppressed(), 2);
    }

    #[test]
    fn zoom_budget_concentrates_on_hotspots() {
        let budget = zoom_budget(&sessions());
        let total: f64 = budget.iter().map(|&(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let band: f64 = budget
            .iter()
            .filter(|&&(z, _)| (11..=14).contains(&z))
            .map(|&(_, s)| s)
            .sum();
        assert!(band > 0.8, "most budget in zoom 11-14, got {band:.2}");
    }
}
