//! The Skip optimization (Algorithm 1) and the raw baseline executor.
//!
//! In crossfiltering no dependency exists between adjacent queries: each
//! slider position is its own range query, and the user does not examine
//! ranges serially. When a new query group arrives while the database is
//! still busy, the stale pending groups can be *skipped* — the user has
//! already moved past them. This module replays a query-group stream
//! against a backend both ways:
//!
//! - [`replay_raw`] — every group executes, FIFO (the paper's "raw");
//! - [`replay_skip`] — when the backend frees up, only the *latest*
//!   issued group executes; intervening groups are dropped.
//!
//! Queries within a group run concurrently on separate connections (the
//! paper forks one process per coordinated view), so a group's execution
//! time is the maximum of its members' costs.

use ids_engine::{Backend, EngineResult};
use ids_simclock::{SimDuration, SimTime};
use ids_workload::crossfilter::QueryGroup;

use ids_metrics::lcv::{cascade_violations, LcvReport, QuerySpan};

/// Timing of one query group through the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupTiming {
    /// Index in the input stream.
    pub index: usize,
    /// Frontend issue time.
    pub issued_at: SimTime,
    /// Execution start (== issue for idle backend; later when queued).
    pub started_at: SimTime,
    /// Execution end.
    pub finished_at: SimTime,
    /// `false` when the skip policy dropped this group.
    pub executed: bool,
}

impl GroupTiming {
    /// Perceived latency from issue to completion (only meaningful for
    /// executed groups).
    pub fn latency(&self) -> SimDuration {
        self.finished_at.saturating_since(self.issued_at)
    }

    /// Pure execution time (excludes queueing).
    pub fn execution(&self) -> SimDuration {
        self.finished_at.saturating_since(self.started_at)
    }
}

/// Result of a replay: timings plus aggregate statistics.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Per-group timings, in stream order (skipped groups included with
    /// `executed == false`).
    pub timings: Vec<GroupTiming>,
}

impl ReplayOutcome {
    /// Timings of executed groups only.
    pub fn executed(&self) -> Vec<&GroupTiming> {
        self.timings.iter().filter(|t| t.executed).collect()
    }

    /// Number of skipped groups.
    pub fn skipped(&self) -> usize {
        self.timings.iter().filter(|t| !t.executed).count()
    }

    /// `(time, latency)` series for the Fig 13 plots (executed only).
    pub fn latency_series(&self) -> Vec<(SimTime, SimDuration)> {
        self.executed()
            .iter()
            .map(|t| (t.issued_at, t.latency()))
            .collect()
    }

    /// Cascade-form LCV over the *executed* groups (Fig 15): a violation
    /// when the next executed group was issued before this one finished.
    pub fn lcv(&self) -> LcvReport {
        let spans: Vec<QuerySpan> = self
            .executed()
            .iter()
            .map(|t| QuerySpan {
                issued_at: t.issued_at,
                finished_at: t.finished_at,
            })
            .collect();
        cascade_violations(&spans)
    }
}

/// Executes a group: members run concurrently, so the group's cost is the
/// max member cost.
fn group_cost(backend: &dyn Backend, group: &QueryGroup) -> EngineResult<SimDuration> {
    let mut max = SimDuration::ZERO;
    for q in &group.queries {
        let outcome = backend.execute(q)?;
        max = max.max(outcome.cost);
    }
    Ok(max)
}

/// Records one executed group as a trace span on the given track; no-op
/// while the recorder is disabled.
pub(crate) fn record_group_span(
    track: Option<ids_obs::TrackId>,
    timing: &GroupTiming,
    queries: usize,
) {
    let Some(track) = track else { return };
    ids_obs::recorder().record_span(
        "exec",
        "group",
        track,
        timing.started_at,
        timing.execution(),
        vec![
            ("group", ids_obs::ArgValue::U64(timing.index as u64)),
            ("queries", ids_obs::ArgValue::U64(queries as u64)),
            (
                "wait_ms",
                ids_obs::ArgValue::F64(
                    timing
                        .started_at
                        .saturating_since(timing.issued_at)
                        .as_millis_f64(),
                ),
            ),
        ],
    );
}

/// Interns the execution track for a replay policy over a backend, or
/// `None` when the recorder is off.
pub(crate) fn exec_track(backend: &dyn Backend, policy: &str) -> Option<ids_obs::TrackId> {
    let rec = ids_obs::recorder();
    rec.is_enabled()
        .then(|| rec.track(&format!("{}/{policy}", backend.name())))
}

/// FIFO baseline: every group executes in order; each waits for the
/// previous to finish.
pub fn replay_raw(backend: &dyn Backend, groups: &[QueryGroup]) -> EngineResult<ReplayOutcome> {
    let track = exec_track(backend, "raw");
    let mut busy_until = SimTime::ZERO;
    let mut timings = Vec::with_capacity(groups.len());
    for (index, g) in groups.iter().enumerate() {
        ids_obs::set_vnow(g.at);
        let cost = group_cost(backend, g)?;
        let started_at = g.at.max(busy_until);
        let finished_at = started_at + cost;
        busy_until = finished_at;
        let timing = GroupTiming {
            index,
            issued_at: g.at,
            started_at,
            finished_at,
            executed: true,
        };
        record_group_span(track, &timing, g.queries.len());
        timings.push(timing);
    }
    Ok(ReplayOutcome { timings })
}

/// Skip policy: when the backend becomes free, all but the most recent
/// pending group are dropped (Algorithm 1's busy-wait loop only ever
/// picks up the latest timestamped group).
pub fn replay_skip(backend: &dyn Backend, groups: &[QueryGroup]) -> EngineResult<ReplayOutcome> {
    let mut timings: Vec<GroupTiming> = groups
        .iter()
        .enumerate()
        .map(|(index, g)| GroupTiming {
            index,
            issued_at: g.at,
            started_at: g.at,
            finished_at: g.at,
            executed: false,
        })
        .collect();

    let reg = ids_obs::metrics();
    let executed_ctr = reg.counter("opt.skip.executed");
    let dropped_ctr = reg.counter("opt.skip.dropped");
    let rec = ids_obs::recorder();
    let track = exec_track(backend, "skip");

    let mut busy_until = SimTime::ZERO;
    let mut i = 0usize;
    while i < groups.len() {
        // The backend frees at `busy_until`; among the groups issued by
        // then (from i onward), only the latest executes.
        let mut latest = i;
        while latest + 1 < groups.len() && groups[latest + 1].at <= busy_until {
            latest += 1;
        }
        if latest > i {
            dropped_ctr.add((latest - i) as u64);
            if rec.is_enabled() {
                let track = rec.track("opt/skip");
                rec.record_instant(
                    "opt",
                    "skip.drop",
                    track,
                    groups[latest].at,
                    vec![
                        ("stale_groups", ids_obs::ArgValue::U64((latest - i) as u64)),
                        ("first", ids_obs::ArgValue::U64(i as u64)),
                    ],
                );
            }
        }
        executed_ctr.inc();
        let g = &groups[latest];
        ids_obs::set_vnow(g.at);
        let cost = group_cost(backend, g)?;
        let started_at = g.at.max(busy_until);
        let finished_at = started_at + cost;
        timings[latest].started_at = started_at;
        timings[latest].finished_at = finished_at;
        timings[latest].executed = true;
        record_group_span(track, &timings[latest], g.queries.len());
        busy_until = finished_at;
        i = latest + 1;
    }
    Ok(ReplayOutcome { timings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::{
        Backend, ColumnBuilder, CostParams, MemBackend, Predicate, Query, TableBuilder,
    };

    fn fixed_backend(cost_ms: u64) -> MemBackend {
        let params = CostParams {
            startup_ns: cost_ms * 1_000_000,
            page_cold_ns: 0,
            page_hot_ns: 0,
            tuple_scan_ns: 0,
            tuple_agg_ns: 0,
            join_build_ns: 0,
            join_probe_ns: 0,
            row_output_ns: 0,
            predicate_eval_ns: 0,
        };
        let b = MemBackend::with_params(params);
        b.database().register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..10).map(|i| i as f64)))
                .build()
                .unwrap(),
        );
        b
    }

    fn groups(interval_ms: u64, n: usize) -> Vec<QueryGroup> {
        (0..n)
            .map(|i| QueryGroup {
                at: SimTime::from_millis(interval_ms * (i as u64 + 1)),
                slider: 0,
                queries: vec![Query::count("t", Predicate::True)],
            })
            .collect()
    }

    #[test]
    fn raw_executes_everything_fifo() {
        let b = fixed_backend(50);
        let out = replay_raw(&b, &groups(10, 5)).unwrap();
        assert_eq!(out.skipped(), 0);
        assert_eq!(out.executed().len(), 5);
        // Latency cascades: each later group waits longer.
        let lats: Vec<u64> = out
            .timings
            .iter()
            .map(|t| t.latency().as_millis())
            .collect();
        assert!(lats.windows(2).all(|w| w[0] <= w[1]), "{lats:?}");
        assert_eq!(lats[0], 50);
        assert_eq!(lats[4], 50 * 5 - 4 * 10);
    }

    #[test]
    fn skip_drops_stale_groups_and_bounds_latency() {
        let b = fixed_backend(50);
        let out = replay_skip(&b, &groups(10, 20)).unwrap();
        assert!(out.skipped() > 0, "a slow backend must skip");
        // Executed groups have bounded latency (~ one execution).
        for t in out.executed() {
            assert!(
                t.latency().as_millis() <= 60,
                "latency {} ms",
                t.latency().as_millis()
            );
        }
        // Everything issued is accounted for.
        assert_eq!(out.timings.len(), 20);
    }

    #[test]
    fn skip_on_fast_backend_executes_everything() {
        let b = fixed_backend(2);
        let out = replay_skip(&b, &groups(10, 10)).unwrap();
        assert_eq!(out.skipped(), 0);
    }

    #[test]
    fn skip_reduces_lcv_fraction() {
        let b = fixed_backend(80);
        let gs = groups(20, 30);
        let raw = replay_raw(&b, &gs).unwrap();
        let skip = replay_skip(&b, &gs).unwrap();
        assert!(
            skip.lcv().fraction() <= raw.lcv().fraction(),
            "skip {:.2} vs raw {:.2}",
            skip.lcv().fraction(),
            raw.lcv().fraction()
        );
        assert!(
            raw.lcv().fraction() > 0.8,
            "slow raw should violate heavily"
        );
    }

    #[test]
    fn group_cost_is_max_of_members() {
        // Two identical queries in a group: group latency equals one
        // query's latency (parallel connections), not their sum.
        let b = fixed_backend(40);
        let g = vec![QueryGroup {
            at: SimTime::from_millis(1),
            slider: 0,
            queries: vec![
                Query::count("t", Predicate::True),
                Query::count("t", Predicate::True),
            ],
        }];
        let out = replay_raw(&b, &g).unwrap();
        assert_eq!(out.timings[0].latency().as_millis(), 40);
    }

    #[test]
    fn latency_series_covers_executed_groups() {
        let b = fixed_backend(50);
        let out = replay_skip(&b, &groups(10, 12)).unwrap();
        let series = out.latency_series();
        assert_eq!(series.len(), out.executed().len());
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn empty_stream() {
        let b = fixed_backend(10);
        let out = replay_raw(&b, &[]).unwrap();
        assert!(out.timings.is_empty());
        assert_eq!(out.lcv().total, 0);
    }
}
