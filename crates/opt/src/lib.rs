//! Behavior-driven optimizations for interactive data systems.
//!
//! Sections 5–8 of *Evaluating Interactive Data Systems* argue that
//! interactive backends should exploit what users actually do. This crate
//! implements every optimization the case studies evaluate, plus the
//! predictive techniques the survey recommends:
//!
//! - [`loading`] — result-loading strategies for scrolling interfaces:
//!   lazy loading, per-event prefetch ("event fetch"), and periodic
//!   prefetch ("timer fetch"), evaluated against a user's demand curve
//!   (Fig 10 / Table 8).
//! - [`skip`] — the Skip optimization (Algorithm 1): when a new query
//!   group arrives before the previous finished, abandon the stale ones —
//!   the user has already moved on.
//! - [`klfilter`] — the KL optimization (Algorithm 2): estimate each
//!   query's result histogram from a row sample and drop queries whose
//!   result barely differs from the last one shown.
//! - [`prefetch`] — Markov-chain action prefetching for composite
//!   interfaces, with the zoom-hotspot budget split of Section 8.
//! - [`reuse`] — Sesame-style session result reuse: cache results within
//!   a session keyed by query identity.
//! - [`throttle`] — QIF throttling (the Fig 3 "overwhelmed backend"
//!   remedy): fixed-rate and adaptive closed-loop variants.

#![warn(missing_docs)]

pub mod klfilter;
pub mod loading;
pub mod prefetch;
pub mod reuse;
pub mod skip;
pub mod throttle;
