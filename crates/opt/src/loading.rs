//! Result-loading strategies for scrolling interfaces (case study 1).
//!
//! The user's scroll trace defines a *demand curve* — how many tuples the
//! viewport has required by each instant. A loading strategy turns that
//! into a *supply curve* — how many tuples are cached by each instant —
//! given the backend's per-fetch execution time. The gap between the two
//! is what the user perceives: waits (latency) and latency-constraint
//! violations (Table 8).
//!
//! Three strategies from the paper:
//!
//! - **lazy** — fetch the next chunk only when the user reaches the end
//!   of what is loaded (the baseline inertial scrolling defeats);
//! - **event fetch** — on every scroll event, top the cache up to a
//!   lookahead margin; adds per-event work but reacts immediately;
//! - **timer fetch** — fetch a fixed chunk on a fixed period; cheap, and
//!   reaches zero perceived latency once the chunk size matches the
//!   population's scrolling speed (the paper's "median of max" finding).

use ids_simclock::{SimDuration, SimTime};

use ids_metrics::lcv::{supply_violations, LcvReport};

/// Outcome of replaying one strategy against one demand curve.
#[derive(Debug, Clone)]
pub struct LoadingOutcome {
    /// Supply curve: `(completion time, cumulative tuples cached)`.
    pub supply: Vec<(SimTime, u64)>,
    /// Per-demand-event wait: zero when the tuple was already cached,
    /// otherwise the time until supply catches up with that demand.
    pub waits: Vec<SimDuration>,
    /// Number of fetch queries issued.
    pub fetches: usize,
    /// Total rows that exist (demand beyond this can never be supplied
    /// and is not a violation — the list simply ends).
    pub capacity: u64,
}

impl LoadingOutcome {
    /// Mean wait over *violating* events (events that had to wait), as
    /// Fig 10 reports; zero if nothing waited.
    pub fn avg_violation_wait(&self) -> SimDuration {
        let waits: Vec<&SimDuration> = self.waits.iter().filter(|w| !w.is_zero()).collect();
        if waits.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = waits.iter().copied().copied().sum();
        total / waits.len() as u64
    }

    /// LCV report against the demand curve used to produce this outcome.
    /// Demand is clamped to the rows that exist, as during the replay.
    pub fn lcv(&self, demand: &[(SimTime, u64)]) -> LcvReport {
        let clamped: Vec<(SimTime, u64)> = demand
            .iter()
            .map(|&(t, d)| (t, d.min(self.capacity)))
            .collect();
        supply_violations(&clamped, &self.supply)
    }
}

/// Configuration shared by the strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadingConfig {
    /// Tuples fetched per query (`LIMIT`).
    pub fetch_size: u64,
    /// Backend execution time of one fetch of `fetch_size` tuples.
    pub fetch_exec: SimDuration,
    /// Total tuples in the result (fetches stop here).
    pub total_tuples: u64,
}

/// Clamps demand to the rows that actually exist: scrolling "past the
/// end" (viewport slack) demands nothing that can be supplied.
fn clamp_demand(demand: &[(SimTime, u64)], cfg: &LoadingConfig) -> Vec<(SimTime, u64)> {
    demand
        .iter()
        .map(|&(t, d)| (t, d.min(cfg.total_tuples)))
        .collect()
}

/// Lazy loading: a fetch is triggered only when demand first exceeds
/// supply; fetches are serial.
pub fn lazy_loading(demand: &[(SimTime, u64)], cfg: &LoadingConfig) -> LoadingOutcome {
    let demand = clamp_demand(demand, cfg);
    run_strategy(&demand, cfg, |state, t, demanded| {
        // Only start fetching when the user has outrun the cache.
        if demanded > state.cached && state.inflight_done.is_none() {
            state.start_fetch(t, cfg);
        }
    })
}

/// Event fetch: every scroll event tops the cache up to
/// `demand + lookahead` tuples. Missing chunks are requested immediately
/// and *concurrently* (one connection per chunk), so a burst's perceived
/// wait is one fetch execution — which is why the paper finds event fetch
/// "insensitive to the number of tuples fetched, ~80 ms", yet violating
/// for nearly every user: each burst of acceleration outruns the reactive
/// cache by construction.
pub fn event_fetch(
    demand: &[(SimTime, u64)],
    cfg: &LoadingConfig,
    lookahead: u64,
) -> LoadingOutcome {
    let demand = clamp_demand(demand, cfg);
    let mut supply = Vec::new();
    // The initial page renders before the user can scroll: the first
    // chunk is available at t = 0.
    let mut scheduled = cfg.fetch_size.min(cfg.total_tuples);
    let mut fetches = 1usize;
    supply.push((SimTime::ZERO, scheduled));
    for &(t, demanded) in &demand {
        let target = (demanded + lookahead).min(cfg.total_tuples);
        if target > scheduled {
            let missing = target - scheduled;
            fetches += missing.div_ceil(cfg.fetch_size.max(1)) as usize;
            scheduled = target;
            supply.push((t + cfg.fetch_exec, scheduled));
        }
    }
    let waits = compute_waits(&demand, &supply);
    LoadingOutcome {
        supply,
        waits,
        fetches,
        capacity: cfg.total_tuples,
    }
}

/// Timer fetch: a fetch of `fetch_size` tuples is issued every
/// `interval`, independent of user activity, until the table is loaded.
pub fn timer_fetch(
    demand: &[(SimTime, u64)],
    cfg: &LoadingConfig,
    interval: SimDuration,
) -> LoadingOutcome {
    let demand = clamp_demand(demand, cfg);
    // The supply curve is fully determined by the timer. The first chunk
    // ships with the initial page render (t = 0); later fetches complete
    // one execution after their tick.
    let mut supply = Vec::new();
    let mut cached = cfg.fetch_size.min(cfg.total_tuples);
    let mut fetches = 1usize;
    supply.push((SimTime::ZERO, cached));
    let mut t = SimTime::ZERO + interval;
    // Run the timer well past the last demand instant so late demands
    // have a catch-up time.
    let horizon = demand
        .last()
        .map(|&(t, _)| t + SimDuration::from_secs(600))
        .unwrap_or(SimTime::ZERO);
    while cached < cfg.total_tuples && t <= horizon {
        let done = t + cfg.fetch_exec;
        cached = (cached + cfg.fetch_size).min(cfg.total_tuples);
        fetches += 1;
        supply.push((done, cached));
        t += interval;
    }
    let waits = compute_waits(&demand, &supply);
    LoadingOutcome {
        supply,
        waits,
        fetches,
        capacity: cfg.total_tuples,
    }
}

/// Shared serial-fetch simulation driver. `policy` is consulted at every
/// demand event and may start a fetch via [`StrategyState::start_fetch`].
fn run_strategy<F>(demand: &[(SimTime, u64)], cfg: &LoadingConfig, mut policy: F) -> LoadingOutcome
where
    F: FnMut(&mut StrategyState, SimTime, u64),
{
    let mut state = StrategyState {
        cached: 0,
        inflight_done: None,
        inflight_target: 0,
        supply: Vec::new(),
        fetches: 0,
    };
    // The first chunk ships with the initial page render.
    state.cached = cfg.fetch_size.min(cfg.total_tuples);
    state.fetches = 1;
    state.supply.push((SimTime::ZERO, state.cached));
    for &(t, demanded) in demand {
        state.complete_due(t);
        policy(&mut state, t, demanded);
        // If the user is stalled (demand beyond cache), fetches chain
        // serially until supply catches up, regardless of policy.
        while state.cached < demanded.min(cfg.total_tuples) {
            if state.inflight_done.is_none() {
                state.start_fetch(t.max(state.last_supply_time()), cfg);
            }
            state.complete_now();
        }
    }
    // Drain any in-flight fetch.
    state.complete_now();
    let waits = compute_waits(demand, &state.supply);
    LoadingOutcome {
        supply: state.supply,
        waits,
        fetches: state.fetches,
        capacity: cfg.total_tuples,
    }
}

struct StrategyState {
    cached: u64,
    inflight_done: Option<SimTime>,
    inflight_target: u64,
    supply: Vec<(SimTime, u64)>,
    fetches: usize,
}

impl StrategyState {
    fn last_supply_time(&self) -> SimTime {
        self.supply.last().map(|&(t, _)| t).unwrap_or(SimTime::ZERO)
    }

    fn start_fetch(&mut self, at: SimTime, cfg: &LoadingConfig) {
        if self.cached >= cfg.total_tuples || self.inflight_done.is_some() {
            return;
        }
        // Fetches are serial: a new one cannot begin before the previous
        // completed.
        let at = at.max(self.last_supply_time());
        let done = at + cfg.fetch_exec;
        self.inflight_target = (self.cached + cfg.fetch_size).min(cfg.total_tuples);
        self.inflight_done = Some(done);
        self.fetches += 1;
    }

    fn complete_due(&mut self, now: SimTime) {
        if let Some(done) = self.inflight_done {
            if done <= now {
                self.cached = self.inflight_target;
                self.supply.push((done, self.cached));
                self.inflight_done = None;
            }
        }
    }

    fn complete_now(&mut self) {
        if let Some(done) = self.inflight_done.take() {
            self.cached = self.inflight_target;
            self.supply.push((done, self.cached));
        }
    }
}

/// Per-demand-event wait: how long after the event the supply curve first
/// reaches the demanded tuple count.
fn compute_waits(demand: &[(SimTime, u64)], supply: &[(SimTime, u64)]) -> Vec<SimDuration> {
    demand
        .iter()
        .map(|&(t, demanded)| {
            // Supply is monotone in both coordinates: binary search the
            // first point with cumulative >= demanded.
            let idx = supply.partition_point(|&(_, cached)| cached < demanded);
            match supply.get(idx) {
                // Already satisfied at (or before) event time → no wait.
                Some(&(ready, _)) if ready <= t => SimDuration::ZERO,
                Some(&(ready, _)) => ready.saturating_since(t),
                // Check whether an earlier point already satisfied it.
                None => {
                    if idx > 0 || demanded == 0 {
                        // demanded beyond everything ever supplied
                        if supply.last().is_some_and(|&(_, c)| c >= demanded) {
                            SimDuration::ZERO
                        } else {
                            SimDuration::MAX
                        }
                    } else {
                        SimDuration::MAX
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn cfg(fetch_size: u64, exec_ms: u64) -> LoadingConfig {
        LoadingConfig {
            fetch_size,
            fetch_exec: SimDuration::from_millis(exec_ms),
            total_tuples: 1_000,
        }
    }

    /// A steady reader: 10 tuples every 100 ms.
    fn steady_demand(events: u64) -> Vec<(SimTime, u64)> {
        (1..=events).map(|i| (t(i * 100), i * 10)).collect()
    }

    #[test]
    fn timer_fetch_keeps_up_when_rate_matches() {
        // Demand 100 tuples/s; timer supplies 120/s (12 per 100 ms).
        let demand = steady_demand(50);
        let out = timer_fetch(&demand, &cfg(12, 10), SimDuration::from_millis(100));
        assert_eq!(out.lcv(&demand).violations, 0);
        assert_eq!(out.avg_violation_wait(), SimDuration::ZERO);
    }

    #[test]
    fn timer_fetch_starves_fast_readers() {
        // Demand 100 tuples/s; timer supplies only 20/s.
        let demand = steady_demand(50);
        let out = timer_fetch(&demand, &cfg(2, 10), SimDuration::from_millis(100));
        let lcv = out.lcv(&demand);
        assert!(lcv.violations > 40, "violations {}", lcv.violations);
        assert!(out.avg_violation_wait() > SimDuration::from_secs(1));
    }

    #[test]
    fn timer_latency_decreases_with_fetch_size() {
        let demand = steady_demand(50);
        let mut last = SimDuration::MAX;
        for size in [2u64, 5, 8, 12] {
            let out = timer_fetch(&demand, &cfg(size, 10), SimDuration::from_millis(100));
            let w = out.avg_violation_wait();
            assert!(w <= last, "size {size}: wait {w} vs previous {last}");
            last = w;
        }
        assert_eq!(last, SimDuration::ZERO, "largest size reaches zero latency");
    }

    /// A bursty (inertial) reader: demand leaps 40 tuples per event.
    fn bursty_demand(events: u64) -> Vec<(SimTime, u64)> {
        (1..=events).map(|i| (t(i * 100), i * 40)).collect()
    }

    #[test]
    fn event_fetch_wait_is_about_one_exec_and_size_insensitive() {
        // Event fetch reacts per event; a burst's wait is one fetch
        // execution (the Fig 10 "insensitive ~80 ms" finding), no matter
        // the chunk size.
        let demand = bursty_demand(20);
        let small = event_fetch(&demand, &cfg(10, 80), 10);
        let big = event_fetch(&demand, &cfg(80, 80), 10);
        for out in [&small, &big] {
            let avg = out.avg_violation_wait();
            assert!(
                avg > SimDuration::from_millis(20) && avg <= SimDuration::from_millis(80),
                "avg violation wait {avg}"
            );
        }
        let ratio =
            small.avg_violation_wait().as_millis_f64() / big.avg_violation_wait().as_millis_f64();
        assert!(
            (0.8..1.25).contains(&ratio),
            "size sensitivity ratio {ratio:.2}"
        );
    }

    #[test]
    fn steady_reader_with_lookahead_never_waits_under_event_fetch() {
        let demand = steady_demand(50);
        let out = event_fetch(&demand, &cfg(10, 80), 10);
        assert_eq!(out.avg_violation_wait(), SimDuration::ZERO);
    }

    #[test]
    fn lazy_loading_always_makes_the_user_wait() {
        let demand = steady_demand(20);
        let out = lazy_loading(&demand, &cfg(10, 50));
        // The user hits the cache edge on every chunk boundary.
        let lcv = out.lcv(&demand);
        assert!(lcv.violations > 0);
        // But supply eventually covers all demand.
        assert!(out.supply.last().unwrap().1 >= 200);
    }

    #[test]
    fn event_fetch_issues_more_fetches_than_timer() {
        let demand = steady_demand(50);
        let ev = event_fetch(&demand, &cfg(10, 10), 20);
        let tm = timer_fetch(&demand, &cfg(50, 10), SimDuration::from_millis(500));
        assert!(ev.fetches > tm.fetches);
    }

    #[test]
    fn supply_is_monotone() {
        let demand = steady_demand(30);
        for out in [
            lazy_loading(&demand, &cfg(7, 25)),
            event_fetch(&demand, &cfg(7, 25), 14),
            timer_fetch(&demand, &cfg(7, 25), SimDuration::from_millis(200)),
        ] {
            assert!(out
                .supply
                .windows(2)
                .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn fetches_stop_at_total() {
        let demand = vec![(t(100), 5_000u64)]; // demands beyond the table
        let c = LoadingConfig {
            fetch_size: 100,
            fetch_exec: SimDuration::from_millis(1),
            total_tuples: 300,
        };
        let out = lazy_loading(&demand, &c);
        assert_eq!(out.supply.last().unwrap().1, 300);
        assert!(out.fetches <= 3);
    }

    #[test]
    fn empty_demand_is_fine() {
        let out = event_fetch(&[], &cfg(10, 10), 10);
        assert!(out.waits.is_empty());
        assert_eq!(out.lcv(&[]).total, 0);
    }
}
