//! The KL optimization (Algorithm 2): only execute queries whose results
//! differ enough from what the user is already seeing.
//!
//! Adjacent crossfilter queries usually return near-identical histograms —
//! the user nudged a slider by a pixel. Before sending a query to the
//! database, its result histogram is *approximated* from a fixed row
//! sample ([`HistogramSketch`], the paper cites hash/sampling/wavelet
//! sketches); if the Kullback–Leibler divergence from the previously
//! displayed result is at or below a threshold, the query is dropped.
//! `KL > 0` drops exact repeats; `KL > 0.2` (a human-perception-scale
//! threshold, per the graphical-perception study the paper cites) drops
//! imperceptible changes too.

use ids_engine::{Backend, EngineError, EngineResult, Histogram, Predicate, Query, Table};
use ids_simclock::rng::SimRng;
use ids_simclock::SimTime;
use ids_workload::crossfilter::QueryGroup;

use crate::skip::{GroupTiming, ReplayOutcome};

/// The KL threshold the paper uses for perceptible change.
pub const PERCEPTIBLE_KL: f64 = 0.2;

/// Quantized, smoothed KL divergence between two histograms (Eq 1).
///
/// Distributions are smoothed with a small epsilon so empty bins do not
/// produce infinities; `KL = 0` iff the histograms have identical
/// normalized shapes. Histograms of different bin counts are
/// incomparable and return `f64::INFINITY`.
pub fn kl_divergence(p: &Histogram, q: &Histogram) -> f64 {
    if p.bins() != q.bins() {
        return f64::INFINITY;
    }
    kl_of_dists(&p.to_distribution(), &q.to_distribution())
}

fn kl_of_dists(p: &[f64], q: &[f64]) -> f64 {
    const EPS: f64 = 1e-9;
    let norm = |d: &[f64]| {
        let total: f64 = d.iter().map(|x| x + EPS).sum();
        d.iter().map(|x| (x + EPS) / total).collect::<Vec<f64>>()
    };
    let ps = norm(p);
    let qs = norm(q);
    ps.iter()
        .zip(qs.iter())
        .map(|(&pi, &qi)| pi * (pi / qi).ln())
        .sum::<f64>()
        .max(0.0)
}

/// A fixed row sample of one table, used to approximate histogram-query
/// results without touching the database.
#[derive(Debug, Clone)]
pub struct HistogramSketch {
    table: Table,
    rows: Vec<usize>,
}

impl HistogramSketch {
    /// Samples `sample_size` rows of `table` (without replacement when
    /// the table is larger, with clamping otherwise).
    pub fn new(table: Table, sample_size: usize, seed: u64) -> HistogramSketch {
        let mut rng = SimRng::seed(seed).split("kl/sketch");
        let n = table.rows();
        let k = sample_size.min(n);
        // Partial Fisher-Yates over indices for an unbiased sample.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.uniform_usize(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        HistogramSketch { table, rows: idx }
    }

    /// Number of sampled rows.
    pub fn sample_size(&self) -> usize {
        self.rows.len()
    }

    /// Approximates a histogram query's result over the sample. Only
    /// `Query::Histogram` against the sketched table is supported.
    pub fn approx(&self, query: &Query) -> EngineResult<Histogram> {
        let Query::Histogram {
            table,
            bins,
            filter,
        } = query
        else {
            return Err(EngineError::InvalidBinSpec(
                "sketch approximation only supports histogram queries".into(),
            ));
        };
        if table.as_ref() != self.table.name() {
            return Err(EngineError::UnknownTable(table.to_string()));
        }
        let col = self.table.column(&bins.column)?;
        let mut hist = Histogram::zeros(bins.bucket_count());
        for &row in &self.rows {
            if filter_matches(filter, &self.table, row)? {
                if let Some(b) = col.f64_at(row).and_then(|x| bins.bin_of(x)) {
                    hist.bump(b);
                }
            }
        }
        Ok(hist)
    }

    /// Approximate signature of a whole query group: the concatenated
    /// distributions of its member histograms.
    pub fn group_signature(&self, group: &QueryGroup) -> EngineResult<Vec<f64>> {
        let mut sig = Vec::new();
        for q in &group.queries {
            sig.extend(self.approx(q)?.to_distribution());
        }
        Ok(sig)
    }
}

fn filter_matches(filter: &Predicate, table: &Table, row: usize) -> EngineResult<bool> {
    filter.matches(table, row)
}

/// Replays a query-group stream with the KL policy: a group executes only
/// when its sketched signature diverges from the last *executed* group's
/// by more than `threshold`. Executed groups queue FIFO as in the raw
/// executor; the sketch evaluation itself is charged zero virtual time
/// (it touches thousands of rows, not hundreds of thousands).
pub fn replay_kl(
    backend: &dyn Backend,
    groups: &[QueryGroup],
    sketch: &HistogramSketch,
    threshold: f64,
) -> EngineResult<ReplayOutcome> {
    let mut timings: Vec<GroupTiming> = groups
        .iter()
        .enumerate()
        .map(|(index, g)| GroupTiming {
            index,
            issued_at: g.at,
            started_at: g.at,
            finished_at: g.at,
            executed: false,
        })
        .collect();

    let reg = ids_obs::metrics();
    let executed_ctr = reg.counter("opt.kl.executed");
    let dropped_ctr = reg.counter("opt.kl.dropped");
    let rec = ids_obs::recorder();
    let track = crate::skip::exec_track(backend, "kl");

    let mut busy_until = SimTime::ZERO;
    let mut last_sig: Option<Vec<f64>> = None;
    for (i, g) in groups.iter().enumerate() {
        let sig = sketch.group_signature(g)?;
        let divergence = match &last_sig {
            Some(prev) if prev.len() == sig.len() => kl_of_dists(&sig, prev),
            Some(_) => f64::INFINITY, // dimension set changed: execute
            None => f64::INFINITY,    // first group always executes
        };
        if divergence <= threshold {
            dropped_ctr.inc();
            if rec.is_enabled() {
                let track = rec.track("opt/kl");
                rec.record_instant(
                    "opt",
                    "kl.drop",
                    track,
                    g.at,
                    vec![
                        ("group", ids_obs::ArgValue::U64(i as u64)),
                        ("divergence", ids_obs::ArgValue::F64(divergence)),
                        ("threshold", ids_obs::ArgValue::F64(threshold)),
                    ],
                );
            }
            continue;
        }
        executed_ctr.inc();
        ids_obs::set_vnow(g.at);
        let mut cost = ids_simclock::SimDuration::ZERO;
        for q in &g.queries {
            cost = cost.max(backend.execute(q)?.cost);
        }
        let started_at = g.at.max(busy_until);
        let finished_at = started_at + cost;
        busy_until = finished_at;
        timings[i] = GroupTiming {
            index: i,
            issued_at: g.at,
            started_at,
            finished_at,
            executed: true,
        };
        crate::skip::record_group_span(track, &timings[i], g.queries.len());
        last_sig = Some(sig);
    }
    Ok(ReplayOutcome { timings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::{BinSpec, ColumnBuilder, MemBackend, TableBuilder};

    fn table(n: usize) -> Table {
        // y is correlated with x (y = x/2), so restricting x genuinely
        // reshapes the y histogram — as with real clustered data.
        TableBuilder::new("dataroad")
            .column("x", ColumnBuilder::float((0..n).map(|i| i as f64 % 100.0)))
            .column(
                "y",
                ColumnBuilder::float((0..n).map(|i| (i as f64 % 100.0) / 2.0)),
            )
            .build()
            .unwrap()
    }

    fn hist_query(lo: f64, hi: f64) -> Query {
        Query::histogram(
            "dataroad",
            BinSpec::new("y", 0.0, 50.0, 20),
            Predicate::between("x", lo, hi),
        )
    }

    fn group(at_ms: u64, lo: f64, hi: f64) -> QueryGroup {
        QueryGroup {
            at: SimTime::from_millis(at_ms),
            slider: 0,
            queries: vec![hist_query(lo, hi)],
        }
    }

    #[test]
    fn kl_properties() {
        let a = Histogram::from_counts(vec![10, 20, 30]);
        let b = Histogram::from_counts(vec![10, 20, 30]);
        let c = Histogram::from_counts(vec![30, 20, 10]);
        assert!(kl_divergence(&a, &b) < 1e-9, "identical → 0");
        assert!(kl_divergence(&a, &c) > 0.1, "different → positive");
        // Scale invariance of shapes.
        let a2 = Histogram::from_counts(vec![100, 200, 300]);
        assert!(kl_divergence(&a, &a2) < 1e-6);
        // Mismatched bins are incomparable.
        let d = Histogram::from_counts(vec![1, 2]);
        assert_eq!(kl_divergence(&a, &d), f64::INFINITY);
    }

    #[test]
    fn kl_is_nonnegative_on_random_histograms() {
        let mut rng = SimRng::seed(5);
        for _ in 0..200 {
            let a =
                Histogram::from_counts((0..8).map(|_| rng.uniform_usize(0, 50) as u64).collect());
            let b =
                Histogram::from_counts((0..8).map(|_| rng.uniform_usize(0, 50) as u64).collect());
            assert!(kl_divergence(&a, &b) >= 0.0);
        }
    }

    #[test]
    fn sketch_approximates_true_histogram() {
        let t = table(50_000);
        let backend = MemBackend::new();
        backend.database().register(t.clone());
        let sketch = HistogramSketch::new(t, 4_000, 7);
        let q = hist_query(10.0, 60.0);
        let exact = backend.execute(&q).unwrap();
        let approx = sketch.approx(&q).unwrap();
        let kl = kl_divergence(&approx, exact.result.histogram().unwrap());
        assert!(kl < 0.05, "sketch diverges from exact by {kl}");
    }

    #[test]
    fn sketch_rejects_wrong_shapes() {
        let t = table(100);
        let sketch = HistogramSketch::new(t, 50, 1);
        assert!(sketch
            .approx(&Query::count("dataroad", Predicate::True))
            .is_err());
        let other = Query::histogram(
            "other_table",
            BinSpec::new("y", 0.0, 50.0, 10),
            Predicate::True,
        );
        assert!(sketch.approx(&other).is_err());
    }

    #[test]
    fn kl_replay_skips_near_identical_groups() {
        let t = table(20_000);
        let backend = MemBackend::new();
        backend.database().register(t.clone());
        let sketch = HistogramSketch::new(t, 3_000, 3);
        // Tiny nudges: ranges differ by 0.01 — imperceptible.
        let groups: Vec<QueryGroup> = (0..20)
            .map(|i| group(20 * (i as u64 + 1), 10.0, 60.0 + i as f64 * 0.01))
            .collect();
        let strict = replay_kl(&backend, &groups, &sketch, PERCEPTIBLE_KL).unwrap();
        assert!(
            strict.skipped() >= 18,
            "KL>0.2 should drop nudges, skipped {}",
            strict.skipped()
        );
        // First group always executes.
        assert!(strict.timings[0].executed);
    }

    #[test]
    fn kl_replay_keeps_real_changes() {
        let t = table(20_000);
        let backend = MemBackend::new();
        backend.database().register(t.clone());
        let sketch = HistogramSketch::new(t, 3_000, 3);
        // Large jumps: each group halves the range.
        let groups: Vec<QueryGroup> = vec![
            group(20, 0.0, 99.0),
            group(40, 0.0, 45.0),
            group(60, 0.0, 20.0),
            group(80, 0.0, 8.0),
        ];
        let out = replay_kl(&backend, &groups, &sketch, PERCEPTIBLE_KL).unwrap();
        assert_eq!(out.skipped(), 0, "perceptible changes must all execute");
    }

    #[test]
    fn threshold_zero_skips_only_exact_repeats() {
        let t = table(20_000);
        let backend = MemBackend::new();
        backend.database().register(t.clone());
        let sketch = HistogramSketch::new(t, 2_000, 3);
        let groups: Vec<QueryGroup> = vec![
            group(20, 10.0, 60.0),
            group(40, 10.0, 60.0), // exact repeat
            group(60, 10.0, 30.0),
        ];
        let out = replay_kl(&backend, &groups, &sketch, 0.0).unwrap();
        assert_eq!(out.skipped(), 1);
        assert!(!out.timings[1].executed);
    }

    #[test]
    fn sample_size_clamps_to_table() {
        let t = table(10);
        let sketch = HistogramSketch::new(t, 1_000, 1);
        assert_eq!(sketch.sample_size(), 10);
    }
}
