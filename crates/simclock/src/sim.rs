//! The simulation driver: pops events in time order and advances the clock.

use std::fmt;

use crate::{EventQueue, SimClock, SimTime};

/// Errors raised by the simulation driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A stepper scheduled an event in the past of the current clock.
    TimeRegression {
        /// Current clock value when the violation was detected.
        now: SimTime,
        /// Timestamp of the offending event.
        scheduled: SimTime,
    },
    /// The step budget was exhausted before the event queue drained
    /// (guards against steppers that reschedule themselves forever).
    BudgetExhausted {
        /// The configured maximum number of steps.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TimeRegression { now, scheduled } => write!(
                f,
                "event scheduled at {scheduled} is in the past of clock {now}"
            ),
            SimError::BudgetExhausted { budget } => {
                write!(f, "simulation exceeded its step budget of {budget}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Handler invoked for each popped event; may schedule follow-up events.
pub trait Stepper<E> {
    /// Processes `event` fired at `at`. New events may be pushed onto
    /// `queue`; they must not be earlier than `at`.
    fn step(&mut self, at: SimTime, event: E, queue: &mut EventQueue<E>);
}

impl<E, F> Stepper<E> for F
where
    F: FnMut(SimTime, E, &mut EventQueue<E>),
{
    fn step(&mut self, at: SimTime, event: E, queue: &mut EventQueue<E>) {
        self(at, event, queue)
    }
}

/// A discrete-event simulation: a clock plus a queue of pending events.
///
/// ```
/// use ids_simclock::{EventQueue, SimDuration, SimTime, Simulation};
///
/// // A process that emits ticks 1ms apart, five times.
/// let mut sim = Simulation::new();
/// sim.schedule(SimTime::ZERO, 0u32);
/// let mut seen = vec![];
/// sim.run(|at: SimTime, n: u32, queue: &mut EventQueue<u32>| {
///     seen.push((at.as_millis(), n));
///     if n < 4 {
///         queue.push(at + SimDuration::from_millis(1), n + 1);
///     }
/// })
/// .unwrap();
/// assert_eq!(seen.len(), 5);
/// assert_eq!(seen[4], (4, 4));
/// ```
#[derive(Debug)]
pub struct Simulation<E> {
    clock: SimClock,
    queue: EventQueue<E>,
    budget: u64,
    steps: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Simulation {
            clock: SimClock::new(),
            queue: EventQueue::new(),
            budget: u64::MAX,
            steps: 0,
        }
    }
}

impl<E> Simulation<E> {
    /// Creates a simulation with a fresh clock and empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a simulation sharing an existing clock (e.g. one also held
    /// by an engine's cost model).
    pub fn with_clock(clock: SimClock) -> Self {
        Simulation {
            clock,
            ..Self::default()
        }
    }

    /// Caps the total number of events processed by [`run`](Self::run).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// A handle to the simulation clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Schedules an event.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.push(at, event);
    }

    /// Number of events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Processes a single event, advancing the clock to its timestamp.
    /// Returns `Ok(false)` when the queue is empty.
    pub fn step_once<S: Stepper<E>>(&mut self, stepper: &mut S) -> Result<bool, SimError> {
        let Some((at, event)) = self.queue.pop() else {
            return Ok(false);
        };
        let now = self.clock.now();
        if at < now {
            return Err(SimError::TimeRegression { now, scheduled: at });
        }
        self.clock.advance_to(at);
        self.steps += 1;
        stepper.step(at, event, &mut self.queue);
        Ok(true)
    }

    /// Runs until the queue drains or the step budget is exhausted.
    pub fn run<S: Stepper<E>>(&mut self, mut stepper: S) -> Result<(), SimError> {
        while !self.queue.is_empty() {
            if self.steps >= self.budget {
                return Err(SimError::BudgetExhausted {
                    budget: self.budget,
                });
            }
            self.step_once(&mut stepper)?;
        }
        Ok(())
    }

    /// Runs until the clock would pass `deadline`; events after the
    /// deadline remain queued. Returns the number of events processed.
    pub fn run_until<S: Stepper<E>>(
        &mut self,
        deadline: SimTime,
        stepper: &mut S,
    ) -> Result<u64, SimError> {
        let start = self.steps;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            if self.steps >= self.budget {
                return Err(SimError::BudgetExhausted {
                    budget: self.budget,
                });
            }
            self.step_once(stepper)?;
        }
        Ok(self.steps - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn processes_in_order_and_advances_clock() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_millis(10), 'b');
        sim.schedule(SimTime::from_millis(5), 'a');
        let mut order = vec![];
        sim.run(|at: SimTime, e: char, _q: &mut EventQueue<char>| {
            order.push((at.as_millis(), e));
        })
        .unwrap();
        assert_eq!(order, vec![(5, 'a'), (10, 'b')]);
        assert_eq!(sim.now().as_millis(), 10);
        assert_eq!(sim.steps(), 2);
    }

    #[test]
    fn budget_stops_runaway_process() {
        let mut sim = Simulation::new().with_budget(100);
        sim.schedule(SimTime::ZERO, ());
        let err = sim
            .run(|at: SimTime, (): (), q: &mut EventQueue<()>| {
                q.push(at + SimDuration::from_micros(1), ());
            })
            .unwrap_err();
        assert_eq!(err, SimError::BudgetExhausted { budget: 100 });
    }

    #[test]
    fn scheduling_in_the_past_is_detected() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_millis(10), 0u8);
        // The stepper schedules an event before the current clock.
        sim.schedule(SimTime::from_millis(10), 1u8);
        let mut first = true;
        let result = sim.run(|_at: SimTime, _e: u8, q: &mut EventQueue<u8>| {
            if first {
                first = false;
                q.push(SimTime::from_millis(1), 9);
            }
        });
        assert!(matches!(result, Err(SimError::TimeRegression { .. })));
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut sim = Simulation::new();
        for ms in [1u64, 2, 3, 50] {
            sim.schedule(SimTime::from_millis(ms), ms);
        }
        let mut handler = |_: SimTime, _: u64, _: &mut EventQueue<u64>| {};
        let n = sim
            .run_until(SimTime::from_millis(10), &mut handler)
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now().as_millis(), 3);
    }

    #[test]
    fn shared_clock_is_visible() {
        let clock = SimClock::new();
        let mut sim: Simulation<()> = Simulation::with_clock(clock.clone());
        sim.schedule(SimTime::from_millis(42), ());
        sim.run(|_: SimTime, (): (), _: &mut EventQueue<()>| {})
            .unwrap();
        assert_eq!(clock.now().as_millis(), 42);
    }
}
