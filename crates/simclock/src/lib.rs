//! Discrete-event simulation substrate for the `ids` workspace.
//!
//! Every component of the evaluation framework runs on *virtual* time so
//! that experiments are deterministic and independent of the host machine.
//! This crate provides:
//!
//! - [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual
//!   timestamps and durations with saturating arithmetic.
//! - [`SimClock`] — a shareable, monotonically advancing virtual clock.
//! - [`EventQueue`] — a priority queue of timestamped events with stable
//!   FIFO ordering among simultaneous events.
//! - [`Simulation`] — a driver that pops events in time order and advances
//!   the clock, the core loop behind every case-study replay.
//! - [`rng`] — seeded random-number utilities (splittable streams and the
//!   distributions used by the behavior models: normal, log-normal,
//!   exponential, Zipf-like categorical draws).
//!
//! # Example
//!
//! ```
//! use ids_simclock::{EventQueue, SimDuration, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_millis(5), "later");
//! q.push(SimTime::ZERO, "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::ZERO, "first"));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t.as_millis(), 5);
//! assert_eq!(ev, "later");
//! ```

#![warn(missing_docs)]

mod clock;
mod events;
pub mod rng;
mod sim;
mod time;

pub use clock::SimClock;
pub use events::{EventQueue, QueuedEvent};
pub use sim::{SimError, Simulation, Stepper};
pub use time::{SimDuration, SimTime};
