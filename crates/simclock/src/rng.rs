//! Deterministic random-number utilities for behavior models.
//!
//! The behavior models in `ids-workload` and the jitter processes in
//! `ids-devices` need a handful of continuous distributions (normal,
//! log-normal, exponential) and weighted categorical draws. The `rand`
//! crate's core API only ships uniform sampling, so the transforms live
//! here: Box–Muller for normals, inverse CDF for exponentials.
//!
//! Streams are *splittable*: [`SimRng::split`] derives an independent child
//! generator from a label, so per-user / per-device substreams stay stable
//! when unrelated code consumes randomness.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random source with the distribution helpers used across the
/// workspace.
///
/// ```
/// use ids_simclock::rng::SimRng;
///
/// let mut a = SimRng::seed(7).split("user/0");
/// let mut b = SimRng::seed(7).split("user/0");
/// assert_eq!(a.normal(0.0, 1.0).to_bits(), b.normal(0.0, 1.0).to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child stream from a textual label.
    ///
    /// The child's seed mixes this generator's *seed-derived* state with a
    /// hash of the label, so splitting is order-independent with respect to
    /// other labels but deterministic per `(seed, label)` pair.
    pub fn split(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with fresh output from a clone so
        // the parent stream itself is not consumed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut probe = self.inner.clone();
        let base = probe.next_u64();
        SimRng::seed(base ^ h.rotate_left(17))
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.unit() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller (with spare caching).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev.max(0.0) * self.standard_normal()
    }

    /// Normal draw truncated to `[lo, hi]` by rejection (falls back to
    /// clamping after 64 rejections so pathological bounds still terminate).
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        for _ in 0..64 {
            let x = self.normal(mean, std_dev);
            if x >= lo && x <= hi {
                return x;
            }
        }
        self.normal(mean, std_dev).clamp(lo, hi)
    }

    /// Log-normal draw: `exp(N(mu, sigma))`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit(); // in (0, 1]
        -mean.max(0.0) * u.ln()
    }

    /// Weighted categorical draw; returns the index of the chosen weight.
    ///
    /// Zero or negative weights are treated as zero. Returns 0 when all
    /// weights vanish or the slice is empty is not allowed (panics), since
    /// a widget-choice model with no options is a programming error.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "weighted_index requires at least one weight"
        );
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return 0;
        }
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Raw access to the underlying `rand` generator.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..16 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn split_streams_are_stable_and_distinct() {
        let root = SimRng::seed(1);
        let mut u0 = root.split("user/0");
        let mut u0_again = root.split("user/0");
        let mut u1 = root.split("user/1");
        let x = u0.unit();
        assert_eq!(x.to_bits(), u0_again.unit().to_bits());
        assert_ne!(x.to_bits(), u1.unit().to_bits());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed(4);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = SimRng::seed(5);
        assert!((0..1000).all(|_| rng.exponential(0.5) >= 0.0));
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = SimRng::seed(6);
        for _ in 0..1000 {
            let x = rng.normal_clamped(0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut rng = SimRng::seed(7);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..8_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = f64::from(counts[2]) / f64::from(counts[1]);
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_all_zero_falls_back() {
        let mut rng = SimRng::seed(8);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(10);
        assert!((0..100).all(|_| rng.chance(1.1)));
        assert!((0..100).all(|_| !rng.chance(-0.5)));
    }
}
