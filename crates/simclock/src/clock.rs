//! A shareable, monotonically advancing virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{SimDuration, SimTime};

/// A monotone virtual clock shared by every component of a simulation.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying clock;
/// advancing through any handle is visible to all. The clock never moves
/// backwards: [`SimClock::advance_to`] with an earlier time is a no-op.
///
/// ```
/// use ids_simclock::{SimClock, SimDuration, SimTime};
///
/// let clock = SimClock::new();
/// let handle = clock.clone();
/// clock.advance(SimDuration::from_millis(20));
/// assert_eq!(handle.now(), SimTime::from_millis(20));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `t`.
    pub fn starting_at(t: SimTime) -> Self {
        SimClock {
            micros: Arc::new(AtomicU64::new(t.as_micros())),
        }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.micros.load(Ordering::Acquire))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let mut cur = self.micros.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_add(d.as_micros());
            match self
                .micros
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return SimTime::from_micros(next),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Advances the clock to `t` if `t` is in the future; never moves backwards.
    /// Returns the clock's time after the call.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_micros();
        let mut cur = self.micros.load(Ordering::Acquire);
        while cur < target {
            match self.micros.compare_exchange_weak(
                cur,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime::from_micros(cur)
    }

    /// Virtual time elapsed since `earlier` (zero if `earlier` is in the future).
    pub fn elapsed_since(&self, earlier: SimTime) -> SimDuration {
        self.now().saturating_since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn starting_at_offset() {
        let c = SimClock::starting_at(SimTime::from_secs(3));
        assert_eq!(c.now().as_millis(), 3_000);
    }

    #[test]
    fn advance_moves_all_handles() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_millis(5));
        b.advance(SimDuration::from_millis(7));
        assert_eq!(a.now().as_millis(), 12);
        assert_eq!(b.now().as_millis(), 12);
    }

    #[test]
    fn advance_to_never_regresses() {
        let c = SimClock::new();
        c.advance_to(SimTime::from_millis(10));
        let after = c.advance_to(SimTime::from_millis(4));
        assert_eq!(after.as_millis(), 10);
        assert_eq!(c.now().as_millis(), 10);
    }

    #[test]
    fn elapsed_since_saturates() {
        let c = SimClock::new();
        c.advance(SimDuration::from_millis(8));
        assert_eq!(c.elapsed_since(SimTime::from_millis(3)).as_millis(), 5);
        assert_eq!(c.elapsed_since(SimTime::from_millis(30)), SimDuration::ZERO);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.advance(SimDuration::from_micros(1));
                    }
                });
            }
        });
        assert_eq!(c.now().as_micros(), 4_000);
    }
}
