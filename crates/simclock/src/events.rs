//! Timestamped event queue with stable FIFO ordering for ties.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An event scheduled at a point in virtual time.
///
/// Equal-time events are delivered in insertion order (FIFO), which keeps
/// trace replays deterministic when a device emits several samples in the
/// same frame.
#[derive(Debug, Clone)]
pub struct QueuedEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number; breaks ties among simultaneous events.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for QueuedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for QueuedEvent<E> {}

impl<E> PartialOrd for QueuedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueuedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // timestamp, the first-inserted) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of timestamped events.
///
/// ```
/// use ids_simclock::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(1), 'b');
/// q.push(SimTime::from_millis(1), 'c');
/// q.push(SimTime::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<QueuedEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|q| (q.at, q.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|q| q.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drains every pending event in time order.
    pub fn drain_ordered(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        for (t, e) in iter {
            q.push(t, e);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(9), ());
        q.push(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn from_iterator_builds_queue() {
        let q: EventQueue<&str> = vec![
            (SimTime::from_millis(2), "b"),
            (SimTime::from_millis(1), "a"),
        ]
        .into_iter()
        .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
    }
}
