//! Virtual time primitives.
//!
//! All timestamps in the framework are [`SimTime`] values: microseconds
//! since the start of a simulation. Durations are [`SimDuration`]. Both are
//! thin wrappers over `u64` with saturating arithmetic, so a runaway
//! latency model degrades gracefully instead of panicking.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as an "infinitely late" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a timestamp from microseconds since simulation start.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a timestamp from milliseconds since simulation start.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Creates a timestamp from whole seconds since simulation start.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000))
    }

    /// Creates a timestamp from fractional seconds; negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_micros(s))
    }

    /// Microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `Some(self - earlier)` if `earlier <= self`, else `None`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000))
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000))
    }

    /// Creates a duration from fractional seconds; negatives clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_micros(s))
    }

    /// Creates a duration from fractional milliseconds; negatives clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration(secs_f64_to_micros(ms / 1e3))
    }

    /// Microseconds in this duration.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this duration (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional milliseconds in this duration.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds in this duration.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float, saturating at the representable range.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration(secs_f64_to_micros(self.as_secs_f64() * k.max(0.0)))
    }
}

/// Converts fractional seconds to saturated microseconds, clamping negatives to zero.
fn secs_f64_to_micros(s: f64) -> u64 {
    if !s.is_finite() {
        return if s > 0.0 { u64::MAX } else { 0 };
    }
    let us = s * 1e6;
    if us <= 0.0 {
        0
    } else if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Saturating difference: `later - earlier`, zero when reversed.
    #[inline]
    fn sub(self, earlier: SimTime) -> SimDuration {
        self.saturating_since(earlier)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_add(other.0);
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_sub(other.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.0 as f64 / 1e3)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(7).as_micros(), 7_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert!((SimDuration::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nonfinite_seconds_clamp() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn time_arithmetic_saturates() {
        let t = SimTime::from_millis(10);
        assert_eq!(t - SimDuration::from_millis(20), SimTime::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_millis(1), SimTime::MAX);
        let earlier = SimTime::from_millis(4);
        assert_eq!((t - earlier).as_millis(), 6);
        assert_eq!((earlier - t).as_millis(), 0);
        assert_eq!(earlier.checked_since(t), None);
        assert_eq!(t.checked_since(earlier), Some(SimDuration::from_millis(6)));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(5);
        let b = SimDuration::from_millis(3);
        assert_eq!((a + b).as_millis(), 8);
        assert_eq!(a.saturating_sub(b).as_millis(), 2);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!((a * 3).as_millis(), 15);
        assert_eq!((a / 2).as_micros(), 2_500);
        assert_eq!((a / 0).as_micros(), 5_000, "division by zero clamps to /1");
        assert_eq!(a.mul_f64(2.0).as_millis(), 10);
        assert_eq!(a.mul_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis(), 10);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1).to_string(), "t+1.000ms");
    }
}
