//! Property tests for the simulation substrate.

use ids_simclock::rng::SimRng;
use ids_simclock::{EventQueue, SimDuration, SimTime, Simulation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Time arithmetic is consistent: (t + d) - t == d (absent saturation).
    #[test]
    fn add_then_subtract_round_trips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur).saturating_since(time), dur);
    }

    /// Ordering of times is ordering of micros.
    #[test]
    fn time_ordering_matches_micros(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (ta, tb) = (SimTime::from_micros(a), SimTime::from_micros(b));
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta.max(tb).as_micros(), a.max(b));
    }

    /// Duration sums never lose time (saturating add is exact in range).
    #[test]
    fn duration_sum_is_exact(parts in prop::collection::vec(0u64..1_000_000, 0..50)) {
        let total: SimDuration = parts.iter().map(|&p| SimDuration::from_micros(p)).sum();
        prop_assert_eq!(total.as_micros(), parts.iter().sum::<u64>());
    }

    /// Seconds round trip through f64 with microsecond precision.
    #[test]
    fn secs_f64_round_trip(us in 0u64..10_000_000_000) {
        let d = SimDuration::from_micros(us);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let delta = back.as_micros().abs_diff(us);
        prop_assert!(delta <= 1, "lost {delta} microseconds");
    }

    /// A simulation drains exactly the scheduled events, in time order.
    #[test]
    fn simulation_processes_every_event(times in prop::collection::vec(0u64..100_000, 1..100)) {
        let mut sim = Simulation::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule(SimTime::from_micros(t), i);
        }
        let mut seen = Vec::new();
        sim.run(|at: SimTime, id: usize, _q: &mut EventQueue<usize>| {
            seen.push((at, id));
        })
        .expect("no regressions scheduled");
        prop_assert_eq!(seen.len(), times.len());
        prop_assert!(seen.windows(2).all(|w| w[0].0 <= w[1].0));
        // Clock ends at the latest event.
        prop_assert_eq!(sim.now().as_micros(), *times.iter().max().unwrap());
    }

    /// Split streams never collide for distinct labels.
    #[test]
    fn split_streams_differ(seed in 0u64..1_000_000, a in 0usize..50, b in 0usize..50) {
        prop_assume!(a != b);
        let root = SimRng::seed(seed);
        let mut ra = root.split(&format!("s/{a}"));
        let mut rb = root.split(&format!("s/{b}"));
        // 8 draws all equal would be a 2^-400 coincidence.
        let same = (0..8).all(|_| ra.unit().to_bits() == rb.unit().to_bits());
        prop_assert!(!same);
    }

    /// normal_clamped always respects its bounds.
    #[test]
    fn normal_clamped_in_bounds(
        seed in 0u64..10_000,
        mean in -100.0f64..100.0,
        sd in 0.0f64..50.0,
        lo in -200.0f64..0.0,
        width in 0.0f64..400.0,
    ) {
        let hi = lo + width;
        let mut rng = SimRng::seed(seed);
        for _ in 0..32 {
            let x = rng.normal_clamped(mean, sd, lo, hi);
            prop_assert!(x >= lo && x <= hi);
        }
    }

    /// weighted_index only returns indices with positive weight (when any
    /// weight is positive).
    #[test]
    fn weighted_index_respects_zeros(
        seed in 0u64..10_000,
        weights in prop::collection::vec(0.0f64..10.0, 1..12),
    ) {
        let mut rng = SimRng::seed(seed);
        let any_positive = weights.iter().any(|&w| w > 0.0);
        for _ in 0..64 {
            let i = rng.weighted_index(&weights);
            prop_assert!(i < weights.len());
            if any_positive {
                prop_assert!(weights[i] > 0.0, "picked zero-weight index {i}");
            }
        }
    }
}
