//! Engine micro-benches: scan, histogram, join, buffer pool, and
//! wall-clock parallel batch throughput.

use criterion::{BenchmarkId, Criterion, Throughput};
use ids_engine::{
    parallel::execute_batch, Backend, BinSpec, BufferPool, ColumnBuilder, DiskBackend,
    EvictionPolicy, MemBackend, PageId, Predicate, Projection, Query, TableBuilder,
};
use ids_workload::datasets;

fn benches(c: &mut Criterion) {
    let rows = 100_000usize;
    let road = datasets::road_network_sized(7, rows);
    let mem = MemBackend::new();
    mem.database().register(road.clone());
    let disk = DiskBackend::new();
    disk.database().register(road);

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Elements(rows as u64));

    group.bench_function("count_full_scan", |b| {
        let q = Query::count("dataroad", Predicate::True);
        b.iter(|| mem.execute(&q).expect("count"));
    });

    group.bench_function("filtered_histogram", |b| {
        let q = Query::histogram(
            "dataroad",
            BinSpec::new(
                "y",
                datasets::road_domain::Y_MIN,
                datasets::road_domain::Y_MAX,
                20,
            ),
            Predicate::and([
                Predicate::between("x", 8.5, 10.5),
                Predicate::between("z", 0.0, 100.0),
            ]),
        );
        b.iter(|| mem.execute(&q).expect("histogram"));
    });

    group.bench_function("disk_histogram_warm", |b| {
        let q = Query::histogram(
            "dataroad",
            BinSpec::new(
                "y",
                datasets::road_domain::Y_MIN,
                datasets::road_domain::Y_MAX,
                20,
            ),
            Predicate::between("x", 8.5, 10.5),
        );
        disk.execute(&q).expect("warmup");
        b.iter(|| disk.execute(&q).expect("histogram"));
    });

    // Paginated select + streaming join over the movie tables (Q1 / Q2).
    let (ratings, movie) = datasets::movie_join_tables(7, 4_000);
    let movies_backend = MemBackend::new();
    movies_backend.database().register(ratings);
    movies_backend.database().register(movie.clone());
    movies_backend.database().register({
        // Register the flat table under its own name for Q1.
        datasets::movies_sized(7, 4_000)
    });

    group.bench_function("q1_paginated_select", |b| {
        let q = Query::select(
            "imdb",
            vec![
                Projection::title_with_year("title", "year"),
                Projection::column("rating"),
            ],
            Predicate::True,
            Some(100),
            1_900,
        );
        b.iter(|| movies_backend.execute(&q).expect("select"));
    });

    group.bench_function("q2_streaming_join", |b| {
        let q = Query::Join(ids_engine::JoinSpec {
            left: "imdbrating".into(),
            right: "movie".into(),
            left_key: "id".into(),
            right_key: "id".into(),
            projection: vec![
                Projection::title_with_year("title", "year"),
                Projection::column("rating"),
            ],
            limit: Some(100),
            offset: 1_900,
        });
        b.iter(|| movies_backend.execute(&q).expect("join"));
    });

    group.bench_function("buffer_pool_touch", |b| {
        let pool = BufferPool::new(1_024, EvictionPolicy::Lru);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 2_048;
            pool.touch(PageId {
                table: 0,
                page_no: i,
            })
        });
    });
    group.finish();

    // Parallel batch throughput across thread counts.
    let mut par = c.benchmark_group("engine_parallel");
    par.sample_size(10);
    par.measurement_time(std::time::Duration::from_secs(3));
    par.warm_up_time(std::time::Duration::from_secs(1));
    let t = TableBuilder::new("wide")
        .column("x", ColumnBuilder::float((0..200_000).map(|i| i as f64)))
        .build()
        .expect("table");
    let pb = MemBackend::new();
    pb.database().register(t);
    let queries: Vec<Query> = (0..64)
        .map(|i| {
            Query::count(
                "wide",
                Predicate::between("x", 0.0, 1_000.0 * (i + 1) as f64),
            )
        })
        .collect();
    for threads in [1usize, 2, 4, 8] {
        par.bench_with_input(
            BenchmarkId::new("batch_64_queries", threads),
            &threads,
            |b, &t| {
                b.iter(|| execute_batch(&pb, &queries, t).expect("batch"));
            },
        );
    }
    par.finish();
}

fn distributed_benches(c: &mut Criterion) {
    use ids_engine::distributed::Cluster;
    use ids_engine::progressive::ProgressiveExecutor;
    use ids_engine::Database;

    let db = Database::new();
    db.register(datasets::listings(7, 100_000));
    let probe = Query::histogram(
        "listings",
        BinSpec::new("price", 0.0, 2_000.0, 20),
        Predicate::between("rating", 3.0, 5.0),
    );

    let mut group = c.benchmark_group("engine_distributed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for nodes in [1usize, 4, 16] {
        let cluster = Cluster::partition(&db, nodes).expect("partition");
        group.bench_with_input(BenchmarkId::new("histogram", nodes), &cluster, |b, cl| {
            b.iter(|| cl.execute(&probe).expect("mergeable"));
        });
    }
    group.bench_function("progressive_histogram", |b| {
        let exec = ProgressiveExecutor::new(db.clone());
        b.iter(|| exec.run(&probe).expect("progressive"));
    });
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    distributed_benches(&mut criterion);
    criterion.final_summary();
}
