//! Case study 1 bench: regenerates Figs 7–10 and Tables 7–8, then times
//! the pipelines behind them.

use criterion::{BenchmarkId, Criterion};
use ids_bench::Scale;
use ids_core::experiments::case1;
use ids_devices::scroll::{Flick, ScrollPhysics};
use ids_opt::loading::{event_fetch, timer_fetch, LoadingConfig};
use ids_simclock::{SimDuration, SimTime};
use ids_workload::scrolling::{demand_curve, simulate_session};

fn print_report() {
    let report = case1::run(&Scale::from_env().case1());
    println!("{}", report.render());
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("case1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    group.bench_function("fig7_inertial_roll", |b| {
        let phys = ScrollPhysics::inertial();
        let flicks: Vec<Flick> = (0..40)
            .map(|i| Flick {
                at: SimTime::from_millis(i * 500),
                velocity: 20_000.0,
            })
            .collect();
        b.iter(|| phys.roll(&flicks, SimTime::from_secs(30)));
    });

    group.bench_function("fig8_session_simulation", |b| {
        b.iter(|| simulate_session(0, 61, 1_200));
    });

    let session = simulate_session(0, 61, 1_200);
    let demand = demand_curve(&session);
    for size in [12u64, 30, 58, 80] {
        let cfg = LoadingConfig {
            fetch_size: size,
            fetch_exec: SimDuration::from_millis(80),
            total_tuples: 1_200,
        };
        group.bench_with_input(
            BenchmarkId::new("fig10_event_fetch", size),
            &cfg,
            |b, cfg| {
                b.iter(|| event_fetch(&demand, cfg, cfg.fetch_size));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fig10_timer_fetch", size),
            &cfg,
            |b, cfg| {
                b.iter(|| timer_fetch(&demand, cfg, SimDuration::from_secs(1)));
            },
        );
    }
    group.finish();
}

fn main() {
    print_report();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
