//! Case study 2 bench: regenerates Figs 11, 13, 14, 15, then times the
//! crossfilter replay under each optimization.

use criterion::Criterion;
use ids_bench::Scale;
use ids_core::experiments::case2;
use ids_devices::DeviceKind;
use ids_engine::{Backend, DiskBackend, MemBackend, Predicate, Query};
use ids_opt::klfilter::{replay_kl, HistogramSketch, PERCEPTIBLE_KL};
use ids_opt::skip::{replay_raw, replay_skip};
use ids_workload::crossfilter::{compile_query_groups, simulate_session, CrossfilterUi};
use ids_workload::datasets;

fn print_report() {
    let report = case2::run(&Scale::from_env().case2());
    println!("{}", report.render());
}

fn benches(c: &mut Criterion) {
    let rows = 40_000;
    let road = datasets::road_network_sized(72, rows);
    let mem = MemBackend::new();
    mem.database().register(road.clone());
    let disk = DiskBackend::new();
    disk.database().register(road.clone());
    disk.execute(&Query::count("dataroad", Predicate::True))
        .expect("warmup");

    let ui = CrossfilterUi::for_road();
    let session = simulate_session(DeviceKind::Mouse, 0, 72, &ui);
    let mut groups = compile_query_groups(&ui, &session.trace);
    groups.truncate(150);
    let sketch = HistogramSketch::new(road, 2_000, 72);

    let mut group = c.benchmark_group("case2");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("replay_raw_mem", |b| {
        b.iter(|| replay_raw(&mem, &groups).expect("replay"));
    });
    group.bench_function("replay_skip_mem", |b| {
        b.iter(|| replay_skip(&mem, &groups).expect("replay"));
    });
    group.bench_function("replay_kl02_mem", |b| {
        b.iter(|| replay_kl(&mem, &groups, &sketch, PERCEPTIBLE_KL).expect("replay"));
    });
    group.bench_function("replay_raw_disk", |b| {
        b.iter(|| replay_raw(&disk, &groups).expect("replay"));
    });
    group.bench_function("histogram_query_once", |b| {
        let q = &groups[0].queries[0];
        b.iter(|| mem.execute(q).expect("query"));
    });
    group.finish();
}

fn main() {
    print_report();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
