//! Ablations for the design choices DESIGN.md calls out: the KL
//! threshold, event-fetch lookahead, buffer-pool size and policy, Markov
//! prefetch depth, adaptive indexing (cracking), adaptive QIF
//! throttling, and session reuse. Each prints its sweep table, then a
//! few representative configurations are timed.

use criterion::Criterion;
use ids_devices::DeviceKind;
use ids_engine::{Backend, CostParams, DiskBackend, EvictionPolicy, MemBackend, Predicate, Query};
use ids_opt::klfilter::{replay_kl, HistogramSketch};
use ids_opt::loading::{event_fetch, LoadingConfig};
use ids_opt::prefetch::{evaluate_tile_strategy, MarkovPrefetcher, TileStrategy};
use ids_opt::reuse::SessionCache;
use ids_simclock::SimDuration;
use ids_workload::composite::{simulate_study, CompositeConfig};
use ids_workload::crossfilter::{compile_query_groups, simulate_session, CrossfilterUi};
use ids_workload::datasets;
use ids_workload::scrolling::{demand_curve, simulate_session as scroll_session};

fn kl_threshold_sweep() {
    println!("Ablation: KL threshold vs executed groups and LCV");
    let rows = 30_000;
    let road = datasets::road_network_sized(72, rows);
    let mem = MemBackend::new();
    mem.database().register(road.clone());
    let ui = CrossfilterUi::for_road();
    let session = simulate_session(DeviceKind::LeapMotion, 0, 72, &ui);
    let mut groups = compile_query_groups(&ui, &session.trace);
    groups.truncate(600);
    let sketch = HistogramSketch::new(road, 2_000, 72);
    println!(
        "{:>10} {:>10} {:>10} {:>8}",
        "threshold", "executed", "skipped", "lcv"
    );
    for threshold in [0.0, 0.05, 0.1, 0.2, 0.5, 1.0] {
        let out = replay_kl(&mem, &groups, &sketch, threshold).expect("replay");
        println!(
            "{threshold:>10.2} {:>10} {:>10} {:>7.1}%",
            out.executed().len(),
            out.skipped(),
            out.lcv().fraction() * 100.0
        );
    }
    println!();
}

fn lookahead_sweep() {
    println!("Ablation: event-fetch lookahead vs violations");
    let session = scroll_session(0, 61, 1_200);
    let demand = demand_curve(&session);
    println!(
        "{:>10} {:>12} {:>12}",
        "lookahead", "violations", "avg wait ms"
    );
    for lookahead in [0u64, 6, 12, 24, 48, 96] {
        let cfg = LoadingConfig {
            fetch_size: 30,
            fetch_exec: SimDuration::from_millis(80),
            total_tuples: 1_200,
        };
        let out = event_fetch(&demand, &cfg, lookahead);
        println!(
            "{lookahead:>10} {:>12} {:>12.1}",
            out.lcv(&demand).violations,
            out.avg_violation_wait().as_millis_f64()
        );
    }
    println!();
}

fn pool_sweep() {
    println!("Ablation: buffer-pool pages x policy vs hit rate (repeated scans)");
    let road = datasets::road_network_sized(7, 120_000);
    println!("{:>8} {:>8} {:>10}", "pages", "policy", "hit rate");
    for policy in [EvictionPolicy::Lru, EvictionPolicy::Fifo] {
        for pages in [64usize, 256, 1_024, 4_096] {
            let disk = DiskBackend::with_config(CostParams::disk_default(), pages, policy);
            disk.database().register(road.clone());
            let q = Query::count("dataroad", Predicate::True);
            for _ in 0..4 {
                disk.execute(&q).expect("scan");
            }
            println!(
                "{pages:>8} {:>8} {:>9.1}%",
                format!("{policy:?}"),
                disk.pool_stats().hit_rate() * 100.0
            );
        }
    }
    println!();
}

fn markov_depth_sweep() {
    println!("Ablation: Markov prefetch depth vs tile hit rate");
    let sessions = simulate_study(
        83,
        8,
        &CompositeConfig {
            min_duration: SimDuration::from_secs(600),
            request_model: None,
        },
    );
    let mut model = MarkovPrefetcher::new();
    model.train_sessions(&sessions);
    println!("{:>8} {:>10}", "top_k", "hit rate");
    let demand = evaluate_tile_strategy(&sessions, &model, TileStrategy::DemandOnly, 512);
    println!("{:>8} {:>9.1}%", "none", demand.hit_rate() * 100.0);
    for top_k in [1usize, 2, 3, 6] {
        let hit = evaluate_tile_strategy(&sessions, &model, TileStrategy::Markov { top_k }, 512);
        println!("{top_k:>8} {:>9.1}%", hit.hit_rate() * 100.0);
    }
    println!();
}

fn cracking_demo() {
    use ids_engine::adaptive::CrackedColumn;
    use ids_simclock::rng::SimRng;
    println!("Ablation: adaptive indexing (cracking) under a crossfilter session");
    let road = datasets::road_network_sized(7, 200_000);
    let column = road.column("x").expect("x");
    let mut cracked = CrackedColumn::new(column).expect("numeric");
    let mut rng = SimRng::seed(9);
    println!(
        "{:>8} {:>16} {:>12}",
        "queries", "work this block", "cracks"
    );
    let mut last_work = 0u64;
    for block in 0..5 {
        for _ in 0..100 {
            let lo = rng.uniform(8.2, 10.8);
            cracked.range(lo, lo + 0.3);
        }
        let w = cracked.total_work();
        println!(
            "{:>8} {:>16} {:>12}",
            (block + 1) * 100,
            w - last_work,
            cracked.crack_count()
        );
        last_work = w;
    }
    println!();
}

fn throttle_demo() {
    use ids_opt::throttle::AdaptiveThrottle;
    println!("Ablation: adaptive QIF throttling (Fig 3 'overwhelmed backend')");
    // A slow (disk-regime) backend facing a Leap Motion event stream.
    let rows = 150_000;
    let road = datasets::road_network_sized(72, rows);
    let disk = DiskBackend::new();
    disk.database().register(road);
    disk.execute(&Query::count("dataroad", Predicate::True))
        .expect("warmup");
    let ui = CrossfilterUi::for_road();
    let session = simulate_session(DeviceKind::LeapMotion, 1, 72, &ui);
    let mut groups = compile_query_groups(&ui, &session.trace);
    groups.truncate(800);
    let mut throttle = AdaptiveThrottle::new(SimDuration::from_millis(5));
    let admitted = throttle.filter_stream(&groups, |g| {
        g.queries
            .iter()
            .map(|q| disk.execute(q).expect("query").cost)
            .max()
            .unwrap_or(SimDuration::ZERO)
    });
    let (kept, dropped) = throttle.counts();
    println!(
        "issued {} -> admitted {} / dropped {} (service estimate {})
",
        groups.len(),
        kept,
        dropped,
        throttle.estimate()
    );
    let _ = admitted;
}

fn reuse_demo() {
    println!("Ablation: session result reuse (Sesame-style)");
    let mem = MemBackend::new();
    mem.database()
        .register(datasets::road_network_sized(7, 60_000));
    let cache = SessionCache::new(&mem);
    // An oscillating session: 8 distinct ranges revisited 10 times each.
    for i in 0..80 {
        let lo = 8.2 + (i % 8) as f64 * 0.3;
        let q = Query::count("dataroad", Predicate::between("x", lo, lo + 0.5));
        cache.execute(&q).expect("query");
    }
    let stats = cache.stats();
    println!(
        "hits {} / misses {}; speedup {:.1}x\n",
        stats.hits,
        stats.misses,
        stats.speedup()
    );
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    let road = datasets::road_network_sized(72, 30_000);
    let mem = MemBackend::new();
    mem.database().register(road.clone());
    let ui = CrossfilterUi::for_road();
    let session = simulate_session(DeviceKind::Mouse, 0, 72, &ui);
    let mut groups = compile_query_groups(&ui, &session.trace);
    groups.truncate(120);

    let sketch = HistogramSketch::new(road, 2_000, 72);
    for threshold in [0.0f64, 0.2, 1.0] {
        group.bench_function(format!("replay_kl_{threshold:.1}"), |b| {
            b.iter(|| replay_kl(&mem, &groups, &sketch, threshold).expect("replay"));
        });
    }
    group.finish();
}

fn main() {
    kl_threshold_sweep();
    lookahead_sweep();
    pool_sweep();
    markov_depth_sweep();
    cracking_demo();
    throttle_demo();
    reuse_demo();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
