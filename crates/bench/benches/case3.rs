//! Case study 3 bench: regenerates Table 9, Figs 18–21, Table 10, then
//! times session simulation and the Markov tile prefetcher.

use criterion::Criterion;
use ids_bench::Scale;
use ids_core::experiments::case3;
use ids_opt::prefetch::{evaluate_tile_strategy, MarkovPrefetcher, TileStrategy};
use ids_simclock::SimDuration;
use ids_workload::composite::{simulate_session, simulate_study, CompositeConfig};

fn print_report() {
    let report = case3::run(&Scale::from_env().case3());
    println!("{}", report.render());
}

fn benches(c: &mut Criterion) {
    let config = CompositeConfig {
        min_duration: SimDuration::from_secs(10 * 60),
        request_model: None,
    };
    let sessions = simulate_study(83, 10, &config);
    let mut model = MarkovPrefetcher::new();
    model.train_sessions(&sessions);

    let mut group = c.benchmark_group("case3");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("session_simulation_10min", |b| {
        b.iter(|| simulate_session(0, 83, &config));
    });
    group.bench_function("markov_training", |b| {
        b.iter(|| {
            let mut m = MarkovPrefetcher::new();
            m.train_sessions(&sessions);
            m
        });
    });
    group.bench_function("tile_eval_demand_only", |b| {
        b.iter(|| evaluate_tile_strategy(&sessions, &model, TileStrategy::DemandOnly, 512));
    });
    group.bench_function("tile_eval_markov_top2", |b| {
        b.iter(|| {
            evaluate_tile_strategy(&sessions, &model, TileStrategy::Markov { top_k: 2 }, 512)
        });
    });
    group.finish();
}

fn main() {
    print_report();
    let mut criterion = Criterion::default().configure_from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
