//! The fleet shard-scaling bench behind the `repro --fleet` curve and
//! the `fleet_p99_shard_*` entries of `BENCH_perf.json`.
//!
//! A **weak-scaling** sweep: each shard owns a fixed slice of data and
//! serves a fixed slice of sessions, so growing the fleet 1 → 4 → 16
//! shards grows the deployment to the acceptance scale — 10⁶ concurrent
//! sessions over 10⁸ rows at the top point — while per-shard work stays
//! constant. A scale-out that works shows a *flat* p99 across the
//! sweep: the only thing that grows with the shard count is the
//! scatter-gather coordination term, and the bench gates that creep.
//!
//! Everything is virtual-time deterministic: per-query costs come from
//! the real [`ScatterGather`] executor (slowest shard + coordination)
//! over a seeded table whose per-tuple charges are rescaled so each
//! physical shard prices like its 10⁸⁄16-row virtual slice, and the
//! serving simulation replays a seeded session fleet sampled at a fixed
//! sessions-per-shard ratio. Two runs are byte-identical, so the trend
//! gate can hold the curve to a >20% regression bound like any other
//! committed bench.

use ids_chaos::FaultPlan;
use ids_engine::{BinSpec, ColumnBuilder, CostParams, Database, Predicate, Query, TableBuilder};
use ids_serve::{
    simulate_service, synthesize_fleet, AdmissionPolicy, ArrivalProcess, FleetSpec, ServeParams,
};
use ids_shard::{partition_database, PartitionScheme, ScatterGather};
use ids_simclock::rng::SimRng;
use ids_simclock::SimDuration;

use crate::perf::{fnv1a, BenchReport};

/// Virtual sessions the top (16-shard) point serves.
pub const FLEET_SESSIONS: u64 = 1_000_000;
/// Virtual rows the top (16-shard) point holds.
pub const FLEET_ROWS: u64 = 100_000_000;
/// Shard counts swept, ascending.
pub const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
/// Deterministic seed (fixed: the committed curve must reproduce).
pub const SEED: u64 = 29;

/// Virtual rows each shard owns (10⁸ over 16 shards).
const ROWS_PER_SHARD: u64 = FLEET_ROWS / 16;
/// Virtual sessions each shard serves (10⁶ over 16 shards).
const SESSIONS_PER_SHARD: u64 = FLEET_SESSIONS / 16;
/// Physical rows standing in for one shard's virtual slice.
const PHYS_ROWS_PER_SHARD: usize = 25_000;
/// Sampled sessions standing in for one shard's virtual slice.
const SAMPLE_SESSIONS_PER_SHARD: usize = 128;
/// Sampled worker slots per shard group.
const WORKERS_PER_SHARD: usize = 4;
/// Tenants (divisible by every swept shard count, so tenant → shard
/// group striping is exact).
const TENANTS: usize = 16;
/// Session-arrival mean gap at one shard; a fleet `s×` bigger arrives
/// `s×` faster, keeping per-group load constant (weak scaling).
const BASE_GAP: SimDuration = SimDuration::from_millis(2_000);
/// Per-query latency budget for the LCV accounting.
const BUDGET: SimDuration = SimDuration::from_millis(1_000);

/// One point of the shard-scaling curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPoint {
    /// Shards at this point.
    pub shards: usize,
    /// Virtual sessions this point stands for.
    pub virtual_sessions: u64,
    /// Virtual rows this point stands for.
    pub virtual_rows: u64,
    /// Scatter-gather latency of the representative crossfilter query
    /// (slowest shard + coordination), virtual microseconds.
    pub query_cost_us: u64,
    /// Coordination share of that latency, virtual microseconds.
    pub coordination_us: u64,
    /// Queries the sampled fleet offered.
    pub offered: usize,
    /// Queries admitted.
    pub admitted: usize,
    /// Median admitted interactive latency, virtual microseconds.
    pub p50_us: u64,
    /// 99th-percentile admitted interactive latency, virtual
    /// microseconds.
    pub p99_us: u64,
    /// FNV-1a digest of the merged histogram counts (the byte-identity
    /// gate: sharded answers changing is a CI failure, not a trend).
    pub checksum: u64,
}

/// Per-tuple charges rescaled so `phys` physical rows price like
/// `virtual_rows` virtual ones (same trick as the core experiments).
fn scale_params(mut p: CostParams, virtual_rows: u64, phys: usize) -> CostParams {
    let k = virtual_rows as f64 / phys.max(1) as f64;
    let mul = |ns: u64| ((ns as f64) * k).round() as u64;
    p.tuple_scan_ns = mul(p.tuple_scan_ns);
    p.tuple_agg_ns = mul(p.tuple_agg_ns);
    p.join_build_ns = mul(p.join_build_ns);
    p.join_probe_ns = mul(p.join_probe_ns);
    p.predicate_eval_ns = mul(p.predicate_eval_ns);
    p
}

/// The seeded fleet table at `shards × PHYS_ROWS_PER_SHARD` rows: a
/// clustered time axis `t` (range partitioning keeps it clustered, so
/// per-shard zone maps prune the brush) and a uniform measure `v`.
fn fleet_table(shards: usize) -> Database {
    let rows = PHYS_ROWS_PER_SHARD * shards;
    let mut rng = SimRng::seed(SEED).split("fleetbench/table");
    let mut t = ColumnBuilder::float([]);
    let mut v = ColumnBuilder::float([]);
    for i in 0..rows {
        t.push_float(i as f64);
        v.push_float(rng.uniform(0.0, 100.0));
    }
    let db = Database::new();
    db.register(
        TableBuilder::new("fleet")
            .column("t", t)
            .column("v", v)
            .build()
            .expect("static schema"),
    );
    db
}

/// The representative crossfilter query: an 80% brush on the *uniform*
/// measure binned over itself — the shape the fleet's sessions issue.
/// Brushing `v` (not the clustered axis) keeps every shard's matched
/// fraction identical, so the slowest-shard cost is constant across
/// shard counts and the curve isolates the coordination term.
fn representative_query() -> Query {
    Query::histogram(
        "fleet",
        BinSpec::new("v", 0.0, 100.0, 20),
        Predicate::between("v", 10.0, 90.0),
    )
}

/// Runs the weak-scaling sweep. Deterministic: two calls return
/// identical points (the sweep is pure, so it is computed once per
/// process and cloned thereafter).
pub fn shard_curve() -> Vec<ShardPoint> {
    use std::sync::OnceLock;
    static CURVE: OnceLock<Vec<ShardPoint>> = OnceLock::new();
    CURVE
        .get_or_init(|| {
            SHARD_COUNTS
                .iter()
                .map(|&shards| shard_point(shards))
                .collect()
        })
        .clone()
}

fn shard_point(shards: usize) -> ShardPoint {
    // Per-query cost: the real scatter-gather executor over range
    // partitions, each shard priced as its 6.25M-row virtual slice.
    let db = fleet_table(shards);
    let parts = partition_database(&db, &PartitionScheme::range("t"), SEED, shards)
        .expect("numeric range column");
    let costs = scale_params(
        CostParams::mem_default(),
        ROWS_PER_SHARD,
        PHYS_ROWS_PER_SHARD,
    );
    let sg = ScatterGather::over(parts).with_costs(costs);
    let out = sg
        .execute(&representative_query())
        .expect("histograms merge");
    let slowest = out
        .per_shard
        .iter()
        .map(|s| s.cost)
        .max()
        .unwrap_or(SimDuration::ZERO);
    let checksum = match &out.result {
        ids_engine::ResultSet::Histogram(h) => fnv1a(h.counts()),
        other => unreachable!("histogram query returned {other:?}"),
    };

    // Fleet sampling: SAMPLE_SESSIONS_PER_SHARD sessions per shard at a
    // pace that quickens with the shard count (a bigger fleet arrives
    // faster), served by WORKERS_PER_SHARD slots per shard group.
    // Arrivals are evenly spaced (one-session bursts) rather than
    // Poisson: tenants stripe round-robin over groups, so every group
    // then sees one session start per `TENANTS × gap` at every shard
    // count, and the curve compares per-group regimes that differ only
    // in session content — not in one group's lucky or unlucky
    // arrival-clump draw.
    let sessions = SAMPLE_SESSIONS_PER_SHARD * shards;
    let gap = SimDuration::from_micros(BASE_GAP.as_micros() / shards as u64);
    let spec = FleetSpec {
        seed: SEED,
        sessions,
        tenants: TENANTS,
        arrival: ArrivalProcess::Bursts {
            count: sessions,
            spacing: gap,
            width: SimDuration::from_millis(250),
        },
        max_groups: 6,
        prefetch_rate: 0.2,
    };
    let offered = synthesize_fleet(&spec, 1);
    let per_query = vec![out.elapsed; offered.len()];
    let params = ServeParams {
        workers: WORKERS_PER_SHARD * shards,
        latency_budget: BUDGET,
        deadline: false,
        shards,
    };
    let outcome = simulate_service(
        &offered,
        &per_query,
        &AdmissionPolicy::unlimited(),
        &FaultPlan::calm(SEED),
        &params,
    );
    ShardPoint {
        shards,
        virtual_sessions: SESSIONS_PER_SHARD * shards as u64,
        virtual_rows: ROWS_PER_SHARD * shards as u64,
        query_cost_us: out.elapsed.as_micros(),
        coordination_us: out.elapsed.as_micros().saturating_sub(slowest.as_micros()),
        offered: offered.len(),
        admitted: outcome.admitted,
        p50_us: outcome.p50.as_micros(),
        p99_us: outcome.p99.as_micros(),
        checksum,
    }
}

/// Wraps the curve as perf-harness reports (`fleet_p99_shard_N`):
/// `virtual_cost_us` is the point's p99, the checksum is the merged
/// histogram digest, and wall fields stay `None` — the trend gate then
/// holds the committed curve to its regression bound.
pub fn to_reports(points: &[ShardPoint]) -> Vec<BenchReport> {
    points
        .iter()
        .map(|p| BenchReport {
            name: format!("fleet_p99_shard_{}", p.shards),
            rows_matched: p.admitted as u64,
            checksum: p.checksum,
            virtual_cost_us: p.p99_us,
            blocks_pruned: 0,
            blocks_scanned: 0,
            baseline_wall_ns: None,
            vectorized_wall_ns: None,
        })
        .collect()
}

/// Renders the curve as the `repro --fleet` shard-scaling table.
pub fn render(points: &[ShardPoint]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fleet shard scaling (weak scaling: {} sessions / {} rows per shard; \
         top point {}M sessions / {}M rows):",
        SESSIONS_PER_SHARD,
        ROWS_PER_SHARD,
        FLEET_SESSIONS / 1_000_000,
        FLEET_ROWS / 1_000_000,
    );
    let _ = writeln!(
        s,
        "{:>6} {:>12} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "shards", "sessions", "rows", "query", "coord", "p50", "p99"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>6} {:>12} {:>12} {:>8}ms {:>8}ms {:>7}ms {:>7}ms",
            p.shards,
            p.virtual_sessions,
            p.virtual_rows,
            p.query_cost_us / 1_000,
            p.coordination_us / 1_000,
            p.p50_us / 1_000,
            p.p99_us / 1_000,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trend;

    fn curve() -> &'static [ShardPoint] {
        use std::sync::OnceLock;
        static CURVE: OnceLock<Vec<ShardPoint>> = OnceLock::new();
        CURVE.get_or_init(shard_curve)
    }

    #[test]
    fn curve_is_deterministic() {
        assert_eq!(curve(), &shard_curve()[..]);
    }

    #[test]
    fn top_point_is_the_acceptance_scale() {
        let top = curve().last().unwrap();
        assert_eq!(top.shards, 16);
        assert_eq!(top.virtual_sessions, FLEET_SESSIONS);
        assert_eq!(top.virtual_rows, FLEET_ROWS);
    }

    #[test]
    fn p99_stays_flat_one_to_sixteen_shards() {
        let p99: Vec<u64> = curve().iter().map(|p| p.p99_us).collect();
        let (one, sixteen) = (p99[0] as f64, p99[2] as f64);
        assert!(
            sixteen <= one * 1.25,
            "p99 must stay flat under weak scaling: {p99:?} (16-shard point \
             more than 25% over the 1-shard point)"
        );
        assert!(
            sixteen >= one * 0.75,
            "suspiciously collapsing p99 under weak scaling: {p99:?}"
        );
    }

    #[test]
    fn coordination_grows_but_stays_minor() {
        let pts = curve();
        assert!(pts
            .windows(2)
            .all(|w| w[1].coordination_us > w[0].coordination_us));
        for p in pts {
            assert!(
                p.coordination_us * 2 < p.query_cost_us,
                "coordination must not dominate at {} shards: {}us of {}us",
                p.shards,
                p.coordination_us,
                p.query_cost_us
            );
        }
    }

    #[test]
    fn reports_feed_the_trend_gate() {
        let reports = to_reports(curve());
        assert_eq!(reports.len(), SHARD_COUNTS.len());
        let history = vec![trend::PerfReport::from_run("committed", true, 0, &reports)];
        let fresh = trend::PerfReport::from_run("fresh", true, 0, &reports);
        let t = trend::evaluate(&history, &fresh, 0.20).expect("trend evaluates");
        assert!(t.passed(), "identical curves must pass: {:?}", t.failures);
    }

    #[test]
    fn render_lists_every_point() {
        let text = render(curve());
        for p in curve() {
            assert!(text.contains(&format!("{:>6}", p.shards)));
        }
        assert!(text.contains("1000000"), "{text}");
        assert!(text.contains("100000000"), "{text}");
    }
}
