//! Perf-trend analysis: folds the committed `BENCH_*.json` history plus
//! a fresh `perf --quick` run into a regression table, gated in CI.
//!
//! The history is ingested into an [`ids_lakehouse::Lakehouse`] counters
//! table (one virtual-time tick per report, oldest first) and the trend
//! deltas are computed by querying that table with the engine's own
//! vectorized kernels — the perf trajectory of the system is itself an
//! ids query, per the dogfooding discipline.
//!
//! Two gates fail the run:
//!
//! 1. **Checksum drift** — a fresh bench result whose FNV-1a digest
//!    differs from the last committed report at the same table size.
//!    The kernels changed *answers*, not just speed.
//! 2. **Regression > `max_regression`** — the fresh deterministic
//!    virtual cost exceeds the committed baseline by more than the
//!    threshold (default 20%), or a committed full run's wall-clock
//!    speedup dropped by more than the threshold vs the previous one.

use std::collections::BTreeMap;

use ids_engine::{kernels, KernelOptions, KernelStats, Predicate};
use ids_lakehouse::{Lakehouse, LakehouseError};
use ids_obs::MetricsSnapshot;
use ids_simclock::SimTime;

use crate::perf::BenchReport;

/// Speedups are stored in the lakehouse counters table (u64 snapshot
/// counters) in centi-units: `4.20×` → `420`.
const SPEEDUP_SCALE: f64 = 100.0;

/// Errors from parsing or evaluating the trend history.
#[derive(Debug)]
pub enum TrendError {
    /// A `BENCH_*.json` file did not match the perf harness's shape.
    Parse {
        /// Which file (or label) failed to parse.
        source: String,
        /// What was wrong.
        detail: String,
    },
    /// The lakehouse rejected a table or query.
    Lakehouse(LakehouseError),
}

impl std::fmt::Display for TrendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrendError::Parse { source, detail } => {
                write!(f, "{source}: not a perf report: {detail}")
            }
            TrendError::Lakehouse(e) => write!(f, "trend query failed: {e}"),
        }
    }
}

impl std::error::Error for TrendError {}

impl From<LakehouseError> for TrendError {
    fn from(e: LakehouseError) -> TrendError {
        TrendError::Lakehouse(e)
    }
}

/// One bench's measurements as recorded in a `BENCH_*.json` report.
#[derive(Debug, Clone)]
pub struct BenchSample {
    /// Bench name.
    pub name: String,
    /// FNV-1a digest of the result counts, as the report's hex string.
    pub checksum: String,
    /// Simclock-priced cost, microseconds (deterministic per table size).
    pub virtual_cost_us: u64,
    /// Wall-clock speedup, present only in full-mode reports.
    pub speedup: Option<f64>,
}

/// One parsed `BENCH_*.json` report.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Where it came from (file name, or `fresh-quick`).
    pub source: String,
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// Table size the benches ran at.
    pub rows: u64,
    /// Per-bench samples.
    pub benches: Vec<BenchSample>,
}

impl PerfReport {
    /// Wraps an in-process [`crate::perf::run_all`] result as a report.
    pub fn from_run(source: &str, quick: bool, rows: usize, reports: &[BenchReport]) -> PerfReport {
        PerfReport {
            source: source.to_string(),
            mode: if quick { "quick" } else { "full" }.to_string(),
            rows: rows as u64,
            benches: reports
                .iter()
                .map(|r| BenchSample {
                    name: r.name.clone(),
                    checksum: format!("{:016x}", r.checksum),
                    virtual_cost_us: r.virtual_cost_us,
                    speedup: r.speedup(),
                })
                .collect(),
        }
    }
}

/// Extracts the value of `"key": value[,]` from a (trimmed) report
/// line, if the line defines exactly that key.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix('"')?.strip_prefix(key)?;
    let rest = rest.strip_prefix("\":")?.trim_start();
    Some(rest.trim_end_matches(',').trim_matches('"'))
}

/// Parses one `BENCH_*.json` file. This is deliberately a line-oriented
/// parser for the exact shape [`crate::perf::render_json`] emits (the
/// workspace has no JSON dependency); anything else is a parse error.
pub fn parse_report(source: &str, json: &str) -> Result<PerfReport, TrendError> {
    let err = |detail: &str| TrendError::Parse {
        source: source.to_string(),
        detail: detail.to_string(),
    };
    let mut mode: Option<String> = None;
    let mut rows: Option<u64> = None;
    let mut benches: Vec<BenchSample> = Vec::new();
    let mut cur: Option<BenchSample> = None;
    for line in json.lines() {
        let t = line.trim();
        if mode.is_none() {
            if let Some(v) = field(t, "mode") {
                mode = Some(v.to_string());
                continue;
            }
        }
        if rows.is_none() {
            if let Some(v) = field(t, "rows") {
                rows = Some(v.parse().map_err(|_| err("bad rows"))?);
                continue;
            }
        }
        if let Some(v) = field(t, "name") {
            if let Some(done) = cur.take() {
                benches.push(done);
            }
            cur = Some(BenchSample {
                name: v.to_string(),
                checksum: String::new(),
                virtual_cost_us: 0,
                speedup: None,
            });
        } else if let Some(b) = cur.as_mut() {
            if let Some(v) = field(t, "checksum") {
                b.checksum = v.to_string();
            } else if let Some(v) = field(t, "virtual_cost_us") {
                b.virtual_cost_us = v.parse().map_err(|_| err("bad virtual_cost_us"))?;
            } else if let Some(v) = field(t, "speedup") {
                b.speedup = Some(v.parse().map_err(|_| err("bad speedup"))?);
            }
        }
    }
    if let Some(done) = cur.take() {
        benches.push(done);
    }
    if benches.is_empty() {
        return Err(err("no benches"));
    }
    if benches.iter().any(|b| b.checksum.is_empty()) {
        return Err(err("bench without checksum"));
    }
    Ok(PerfReport {
        source: source.to_string(),
        mode: mode.ok_or_else(|| err("missing mode"))?,
        rows: rows.ok_or_else(|| err("missing rows"))?,
        benches,
    })
}

/// One line of the trend table: the fresh run vs its committed baseline
/// at the same table size.
#[derive(Debug, Clone)]
pub struct TrendRow {
    /// Bench name.
    pub bench: String,
    /// Table size both runs used.
    pub rows: u64,
    /// Fresh deterministic virtual cost.
    pub fresh_cost_us: u64,
    /// Last committed virtual cost at this size, if any report has one.
    pub baseline_cost_us: Option<u64>,
    /// Fresh-over-baseline cost change, percent (positive = slower).
    pub cost_delta_pct: Option<f64>,
    /// `Some(false)` when the fresh checksum drifted from the committed
    /// one; `None` when no committed baseline covers this (bench, rows).
    pub checksum_ok: Option<bool>,
}

/// One speedup-history line (committed full-mode reports only).
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Bench name.
    pub bench: String,
    /// Table size.
    pub rows: u64,
    /// Speedups in commit order, scaled back from centi-units.
    pub history: Vec<f64>,
}

/// The evaluated trend: table rows, speedup trajectories, and the gate
/// failures (empty ⇒ pass).
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// Committed report labels, oldest first, then the fresh label.
    pub sources: Vec<String>,
    /// Fresh-vs-baseline comparison per bench.
    pub rows: Vec<TrendRow>,
    /// Speedup trajectories across committed full runs.
    pub speedups: Vec<SpeedupRow>,
    /// Human-readable gate failures.
    pub failures: Vec<String>,
}

impl TrendReport {
    /// Whether every gate passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the regression table (deterministic — suitable for CI
    /// logs and golden tests).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# perf trend: {} committed report(s) + fresh run",
            self.sources.len().saturating_sub(1)
        );
        let _ = writeln!(out, "# history: {}", self.sources.join(" -> "));
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>12} {:>12} {:>8}  checksum",
            "bench", "rows", "baseline_us", "fresh_us", "delta"
        );
        for r in &self.rows {
            let baseline = r
                .baseline_cost_us
                .map_or_else(|| "-".to_string(), |v| v.to_string());
            let delta = r
                .cost_delta_pct
                .map_or_else(|| "-".to_string(), |d| format!("{d:+.1}%"));
            let checksum = match r.checksum_ok {
                Some(true) => "ok",
                Some(false) => "DRIFT",
                None => "no-baseline",
            };
            let _ = writeln!(
                out,
                "{:<22} {:>10} {:>12} {:>12} {:>8}  {}",
                r.bench, r.rows, baseline, r.fresh_cost_us, delta, checksum
            );
        }
        if !self.speedups.is_empty() {
            let _ = writeln!(out, "speedup history (committed full runs):");
            for s in &self.speedups {
                let path = s
                    .history
                    .iter()
                    .map(|v| format!("{v:.2}x"))
                    .collect::<Vec<_>>()
                    .join(" -> ");
                let _ = writeln!(out, "  {:<22} @{} rows: {}", s.bench, s.rows, path);
            }
        }
        if self.failures.is_empty() {
            let _ = writeln!(out, "PASS");
        } else {
            for f in &self.failures {
                let _ = writeln!(out, "FAIL: {f}");
            }
        }
        out
    }
}

/// Lakehouse counter key for a bench's virtual cost at a table size.
fn cost_key(bench: &str, rows: u64) -> String {
    format!("perf.cost_us/{bench}@{rows}")
}

/// Lakehouse counter key for a bench's centi-speedup at a table size.
fn speedup_key(bench: &str, rows: u64) -> String {
    format!("perf.speedup_c/{bench}@{rows}")
}

/// Folds one report into the lakehouse as a metrics snapshot at virtual
/// time `seq` (commit order becomes the virtual-time axis).
fn ingest_report(lake: &mut Lakehouse, seq: u64, report: &PerfReport) {
    let mut counters: Vec<(String, u64)> = Vec::new();
    for b in &report.benches {
        counters.push((cost_key(&b.name, report.rows), b.virtual_cost_us));
        if let Some(s) = b.speedup {
            counters.push((
                speedup_key(&b.name, report.rows),
                (s * SPEEDUP_SCALE).round() as u64,
            ));
        }
    }
    lake.ingest_snapshot(
        SimTime::from_micros(seq),
        &MetricsSnapshot {
            counters,
            gauges: Vec::new(),
            histograms: Vec::new(),
        },
    );
}

/// Gathers the `(ts, value)` samples for one counter key, in
/// virtual-time order, by querying the lakehouse counters table with
/// the vectorized selection kernel.
fn samples_for(
    table: &ids_engine::Table,
    key: &str,
    opts: &KernelOptions,
    stats: &mut KernelStats,
) -> Result<Vec<(i64, f64)>, TrendError> {
    let sel = kernels::select_vector_with(table, &Predicate::eq("name", key), opts, stats)
        .map_err(|e| TrendError::Lakehouse(LakehouseError::Engine(e)))?;
    let ts = table
        .column("ts_us")
        .ok()
        .and_then(|c| c.as_int())
        .ok_or_else(|| TrendError::Parse {
            source: "telemetry_counters".to_string(),
            detail: "ts_us column missing".to_string(),
        })?;
    let vals = table
        .column("value")
        .ok()
        .and_then(|c| c.as_float())
        .ok_or_else(|| TrendError::Parse {
            source: "telemetry_counters".to_string(),
            detail: "value column missing".to_string(),
        })?;
    let mut out: Vec<(i64, f64)> = sel.iter().map(|row| (ts[row], vals[row])).collect();
    out.sort_by_key(|&(t, _)| t);
    Ok(out)
}

/// Evaluates the trend gates: `history` is the committed reports in
/// commit order, `fresh` the just-run quick report, `max_regression`
/// the tolerated fractional slowdown (0.20 = 20%).
pub fn evaluate(
    history: &[PerfReport],
    fresh: &PerfReport,
    max_regression: f64,
) -> Result<TrendReport, TrendError> {
    let mut lake = Lakehouse::new();
    for (i, report) in history.iter().enumerate() {
        ingest_report(&mut lake, i as u64, report);
    }
    let fresh_seq = history.len() as i64;
    ingest_report(&mut lake, fresh_seq as u64, fresh);
    let counters = lake.counters_table()?;
    let opts = KernelOptions::default();
    let mut stats = KernelStats::default();

    let mut rows = Vec::new();
    let mut failures = Vec::new();

    // Gate 1+2a: fresh vs last committed baseline at the same table size.
    for b in &fresh.benches {
        let samples = samples_for(&counters, &cost_key(&b.name, fresh.rows), &opts, &mut stats)?;
        let baseline = samples
            .iter()
            .rev()
            .find(|&&(t, _)| t < fresh_seq)
            .map(|&(_, v)| v as u64);
        let cost_delta_pct = baseline
            .map(|base| (b.virtual_cost_us as f64 - base as f64) / (base.max(1) as f64) * 100.0);
        let committed_checksum = history
            .iter()
            .rev()
            .filter(|r| r.rows == fresh.rows)
            .find_map(|r| {
                r.benches
                    .iter()
                    .find(|h| h.name == b.name)
                    .map(|h| h.checksum.clone())
            });
        let checksum_ok = committed_checksum.as_deref().map(|c| c == b.checksum);
        if checksum_ok == Some(false) {
            failures.push(format!(
                "{} @{} rows: checksum drift ({} committed, {} fresh) — kernel answers changed",
                b.name,
                fresh.rows,
                committed_checksum.as_deref().unwrap_or("-"),
                b.checksum
            ));
        }
        if let (Some(base), Some(delta)) = (baseline, cost_delta_pct) {
            if delta > max_regression * 100.0 {
                failures.push(format!(
                    "{} @{} rows: virtual cost regressed {:+.1}% ({} -> {} us, limit {:.0}%)",
                    b.name,
                    fresh.rows,
                    delta,
                    base,
                    b.virtual_cost_us,
                    max_regression * 100.0
                ));
            }
        }
        rows.push(TrendRow {
            bench: b.name.clone(),
            rows: fresh.rows,
            fresh_cost_us: b.virtual_cost_us,
            baseline_cost_us: baseline,
            cost_delta_pct,
            checksum_ok,
        });
    }

    // Gate 2b: wall-clock speedup trajectory across committed full runs.
    let mut speedup_keys: BTreeMap<(String, u64), ()> = BTreeMap::new();
    for r in history {
        for b in &r.benches {
            if b.speedup.is_some() {
                speedup_keys.insert((b.name.clone(), r.rows), ());
            }
        }
    }
    let mut speedups = Vec::new();
    for (bench, nrows) in speedup_keys.into_keys() {
        let samples = samples_for(&counters, &speedup_key(&bench, nrows), &opts, &mut stats)?;
        let hist: Vec<f64> = samples
            .iter()
            .filter(|&&(t, _)| t < fresh_seq)
            .map(|&(_, v)| v / SPEEDUP_SCALE)
            .collect();
        if let [.., prev, last] = hist[..] {
            if last < prev * (1.0 - max_regression) {
                failures.push(format!(
                    "{bench} @{nrows} rows: speedup regressed {prev:.2}x -> {last:.2}x \
                     (limit {:.0}%)",
                    max_regression * 100.0
                ));
            }
        }
        speedups.push(SpeedupRow {
            bench,
            rows: nrows,
            history: hist,
        });
    }

    let mut sources: Vec<String> = history.iter().map(|r| r.source.clone()).collect();
    sources.push(fresh.source.clone());
    Ok(TrendReport {
        sources,
        rows,
        speedups,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf;

    fn report(
        source: &str,
        rows: u64,
        cost: u64,
        checksum: &str,
        speedup: Option<f64>,
    ) -> PerfReport {
        PerfReport {
            source: source.to_string(),
            mode: if speedup.is_some() { "full" } else { "quick" }.to_string(),
            rows,
            benches: vec![BenchSample {
                name: "hist_full_bin_v".to_string(),
                checksum: checksum.to_string(),
                virtual_cost_us: cost,
                speedup,
            }],
        }
    }

    #[test]
    fn parser_round_trips_the_perf_harness_output() {
        let runs = perf::run_all(true, 2_000, 1);
        let json = perf::render_json(true, 2_000, 1, &runs);
        let parsed = parse_report("BENCH_test.json", &json).expect("parse own output");
        assert_eq!(parsed.mode, "quick");
        assert_eq!(parsed.rows, 2_000);
        assert_eq!(parsed.benches.len(), runs.len());
        for (p, r) in parsed.benches.iter().zip(&runs) {
            assert_eq!(p.name, r.name);
            assert_eq!(p.checksum, format!("{:016x}", r.checksum));
            assert_eq!(p.virtual_cost_us, r.virtual_cost_us);
            assert!(p.speedup.is_none());
        }
    }

    #[test]
    fn parser_reads_speedups_from_full_reports() {
        let json = "{\n  \"mode\": \"full\",\n  \"rows\": 100,\n  \"benches\": [\n    {\n      \
                    \"name\": \"b\",\n      \"checksum\": \"00ff\",\n      \
                    \"virtual_cost_us\": 9,\n      \"speedup\": 4.25\n    }\n  ]\n}\n";
        let parsed = parse_report("x", json).expect("parse");
        assert_eq!(parsed.benches[0].speedup, Some(4.25));
    }

    #[test]
    fn rejects_non_reports() {
        assert!(parse_report("x", "hello").is_err());
        assert!(parse_report("x", "{\n  \"mode\": \"quick\"\n}").is_err());
    }

    #[test]
    fn clean_history_passes() {
        let history = vec![report("a.json", 100, 50, "abcd", None)];
        let fresh = report("fresh", 100, 52, "abcd", None);
        let t = evaluate(&history, &fresh, 0.20).expect("evaluate");
        assert!(t.passed(), "unexpected failures: {:?}", t.failures);
        assert_eq!(t.rows[0].baseline_cost_us, Some(50));
        assert_eq!(t.rows[0].checksum_ok, Some(true));
        assert!(t.render().contains("PASS"));
    }

    #[test]
    fn checksum_drift_fails_the_gate() {
        let history = vec![report("a.json", 100, 50, "abcd", None)];
        let fresh = report("fresh", 100, 50, "ffff", None);
        let t = evaluate(&history, &fresh, 0.20).expect("evaluate");
        assert!(!t.passed());
        assert!(t.failures[0].contains("checksum drift"));
        assert!(t.render().contains("DRIFT"));
    }

    #[test]
    fn seeded_cost_regression_fails_the_gate() {
        let history = vec![report("a.json", 100, 50, "abcd", None)];
        let fresh = report("fresh", 100, 100, "abcd", None);
        let t = evaluate(&history, &fresh, 0.20).expect("evaluate");
        assert!(!t.passed());
        assert!(t.failures[0].contains("virtual cost regressed"));
    }

    #[test]
    fn speedup_collapse_across_full_runs_fails_the_gate() {
        let history = vec![
            report("a.json", 1_000, 50, "abcd", Some(5.0)),
            report("b.json", 1_000, 50, "abcd", Some(2.0)),
        ];
        let fresh = report("fresh", 100, 10, "eeee", None);
        let t = evaluate(&history, &fresh, 0.20).expect("evaluate");
        assert!(!t.passed());
        assert!(t.failures.iter().any(|f| f.contains("speedup regressed")));
        // The fresh run at a different table size has no baseline — that
        // is informational, not a failure.
        assert_eq!(t.rows[0].checksum_ok, None);
    }

    #[test]
    fn mismatched_table_sizes_are_not_compared() {
        let history = vec![report("full.json", 10_000, 999, "abcd", Some(4.0))];
        let fresh = report("fresh", 100, 10, "eeee", None);
        let t = evaluate(&history, &fresh, 0.20).expect("evaluate");
        assert!(t.passed(), "unexpected failures: {:?}", t.failures);
        assert_eq!(t.rows[0].baseline_cost_us, None);
    }
}
