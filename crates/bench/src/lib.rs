//! Shared helpers for the `repro` binary and the Criterion benches.
//!
//! The experiment scale is selected by the `IDS_SCALE` environment
//! variable: `paper` runs the full study sizes (434,874-row road network,
//! 15 users, 20-minute sessions); anything else — the default — runs a
//! reduced "bench" scale whose cost model is rescaled so every latency
//! *regime* of the paper still reproduces (see
//! `Case2Config::cost_scale`).

#![warn(missing_docs)]

pub mod fleetbench;
pub mod perf;
pub mod sqlrepro;
pub mod trend;

use ids_core::experiments::{adaptive, case1, case2, case3, fleet, robustness, scalability};
use ids_simclock::SimDuration;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper scale.
    Paper,
    /// Reduced scale for CI and quick runs.
    Bench,
}

impl Scale {
    /// Reads the scale from `IDS_SCALE` (`paper` → [`Scale::Paper`]).
    pub fn from_env() -> Scale {
        match std::env::var("IDS_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Bench,
        }
    }

    /// Case-1 configuration at this scale.
    pub fn case1(self) -> case1::Case1Config {
        match self {
            Scale::Paper => case1::Case1Config::paper(),
            Scale::Bench => case1::Case1Config {
                seed: 61,
                users: 15,
                tuples: 1_200,
                fetch_sizes: [12, 30, 58, 80],
                client_overhead_ms: 75,
            },
        }
    }

    /// Case-2 configuration at this scale.
    pub fn case2(self) -> case2::Case2Config {
        match self {
            Scale::Paper => case2::Case2Config::paper(),
            Scale::Bench => case2::Case2Config {
                seed: 72,
                rows: 40_000,
                max_groups: 1_200,
                kl_sample: 2_000,
            },
        }
    }

    /// Scalability-sweep configuration at this scale.
    pub fn scalability(self) -> scalability::ScalabilityConfig {
        match self {
            Scale::Paper => scalability::ScalabilityConfig::paper(),
            Scale::Bench => scalability::ScalabilityConfig::smoke_test(),
        }
    }

    /// Robustness-sweep configuration at this scale.
    pub fn robustness(self) -> robustness::RobustnessConfig {
        match self {
            Scale::Paper => robustness::RobustnessConfig::paper(),
            Scale::Bench => robustness::RobustnessConfig {
                seed: 83,
                rows: 8_000,
                max_groups: 400,
                intensities: [0.0, 0.33, 0.67, 1.0],
                latency_budget: SimDuration::from_millis(100),
                workers: 2,
            },
        }
    }

    /// Progressive deadline-tradeoff sweep configuration at this scale.
    pub fn progressive(self) -> robustness::ProgressiveConfig {
        match self {
            Scale::Paper => robustness::ProgressiveConfig::paper(),
            Scale::Bench => robustness::ProgressiveConfig {
                seed: 83,
                rows: 16_384,
                max_groups: 400,
                workers: 2,
                budgets_ms: [1, 3, 10, 30, 100],
            },
        }
    }

    /// Closed-loop adaptive-workload comparison configuration at this
    /// scale.
    pub fn adaptive(self) -> adaptive::AdaptiveConfig {
        match self {
            Scale::Paper => adaptive::AdaptiveConfig::paper(),
            Scale::Bench => adaptive::AdaptiveConfig::smoke_test(),
        }
    }

    /// Fleet-serving sweep configuration at this scale.
    ///
    /// Three environment knobs adjust the sweep without changing code:
    /// `IDS_FLEET_SESSIONS` overrides the top concurrency level (the
    /// sweep keeps its 8×/4×/2× down-steps), `IDS_SHARDS` splits the
    /// fleet's data and workers into shard groups (per-query costs take
    /// their scatter-gather image), and `IDS_CHAOS_INTENSITY` — the
    /// same toggle the CI fault matrix uses elsewhere — storms the
    /// serving run, adding node-loss windows on top.
    pub fn fleet(self) -> fleet::FleetConfig {
        let mut config = match self {
            Scale::Paper => fleet::FleetConfig::paper(),
            Scale::Bench => fleet::FleetConfig::smoke_test(),
        };
        if let Some(top) = std::env::var("IDS_FLEET_SESSIONS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            let top = top.max(1);
            config.session_counts = vec![(top / 8).max(1), (top / 4).max(1), (top / 2).max(1), top];
            config.session_counts.dedup();
        }
        if let Some(shards) = std::env::var("IDS_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            config.shards = shards.max(1);
        }
        if let Some(intensity) = std::env::var("IDS_CHAOS_INTENSITY")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            config.chaos_intensity = intensity.clamp(0.0, 1.0);
        }
        config
    }

    /// Case-3 configuration at this scale.
    pub fn case3(self) -> case3::Case3Config {
        match self {
            Scale::Paper => case3::Case3Config::paper(),
            Scale::Bench => case3::Case3Config {
                seed: 83,
                users: 15,
                min_session: SimDuration::from_secs(10 * 60),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_bench() {
        // The env var is unset in tests.
        if std::env::var("IDS_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Bench);
        }
    }

    #[test]
    fn paper_scale_matches_study_sizes() {
        let c1 = Scale::Paper.case1();
        assert_eq!(c1.users, 15);
        assert_eq!(c1.tuples, 4_000);
        let c2 = Scale::Paper.case2();
        assert_eq!(c2.rows, 434_874);
        let c3 = Scale::Paper.case3();
        assert_eq!(c3.users, 15);
    }
}
