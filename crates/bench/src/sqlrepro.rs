//! `repro --sql`: the paper's case-study SQL parsed, bound, planned by
//! the cost-based planner, and executed — rendering each plan's
//! `EXPLAIN` tree next to a paper-style result summary.
//!
//! Every case runs at a fixed seed and size (never `IDS_SCALE`), so the
//! whole rendering is a pure function and golden-snapshottable: the
//! `EXPLAIN` text is byte-identical across runs and thread counts, and
//! the virtual cost of planned execution equals the unplanned kernel
//! path exactly (the planner's footprint-identity guarantee).

use ids_engine::{
    plan, sql, CostModel, CostParams, Database, JoinSpec, LinearCostModel, Projection, Query,
    ResultSet,
};
use ids_workload::datasets;

/// One case-study query: paper SQL (or a constructed join, the one
/// shape the SQL dialect does not spell) over a seeded dataset.
pub struct SqlCase {
    /// Stable case name (also the golden fixture key).
    pub name: &'static str,
    /// Which cost calibration prices the run (`"disk"` or `"mem"`).
    pub backend: &'static str,
    /// The SQL text, or a description for constructed queries.
    pub sql: &'static str,
}

/// The case-study queries, in fixed render order.
pub const CASES: &[SqlCase] = &[
    SqlCase {
        name: "q1-scroll",
        backend: "disk",
        sql: "SELECT poster, title || '(' || year || ')', director, genre, plot, rating \
              FROM imdb LIMIT 100 OFFSET 100",
    },
    SqlCase {
        name: "crossfilter-histogram",
        backend: "mem",
        sql: "SELECT HISTOGRAM(y, 56.582, 57.774, 20), COUNT(*) FROM dataroad \
              WHERE x >= 8.146 AND x <= 11.2616367163 \
              AND y >= 56.582 AND y <= 57.774 \
              AND z >= -8.608 AND z <= 137.361 \
              GROUP BY 1 ORDER BY 1",
    },
    SqlCase {
        name: "listings-cheap-count",
        backend: "mem",
        sql: "SELECT COUNT(*) FROM listings WHERE price <= 100 AND guests >= 2",
    },
    SqlCase {
        name: "listings-room-count",
        backend: "mem",
        sql: "SELECT COUNT(*) FROM listings WHERE room_type = 'entire_home'",
    },
    SqlCase {
        name: "movie-ratings-join",
        backend: "disk",
        sql: "(constructed) JOIN movie ON imdbrating.id = movie.id LIMIT 100 OFFSET 100",
    },
];

/// Registers the datasets a case queries and returns the database plus
/// the cost calibration of its paper backend.
fn environment(case: &SqlCase) -> (Database, CostParams) {
    let db = Database::new();
    match case.name {
        "q1-scroll" => {
            db.register(datasets::movies_sized(1, 1_000));
        }
        "crossfilter-histogram" => {
            db.register(datasets::road_network_sized(1, 50_000));
        }
        "listings-cheap-count" | "listings-room-count" => {
            db.register(datasets::listings(3, 20_000));
        }
        "movie-ratings-join" => {
            let (ratings, movie) = datasets::movie_join_tables(1, 1_000);
            db.register(ratings);
            db.register(movie);
        }
        other => unreachable!("unknown SQL case `{other}`"),
    }
    let costs = match case.backend {
        "disk" => CostParams::disk_default(),
        _ => CostParams::mem_default(),
    };
    (db, costs)
}

/// The logical query a case runs: parsed from its SQL, except the join
/// case, which the dialect cannot spell and constructs directly.
fn logical_query(case: &SqlCase) -> Query {
    if case.name == "movie-ratings-join" {
        return Query::Join(JoinSpec {
            left: "imdbrating".into(),
            right: "movie".into(),
            left_key: "id".into(),
            right_key: "id".into(),
            projection: vec![
                Projection::column("title"),
                Projection::column("year"),
                Projection::column("rating"),
            ],
            limit: Some(100),
            offset: 100,
        });
    }
    sql::parse(case.sql).expect("case-study SQL parses")
}

fn summarize(result: &ResultSet) -> String {
    match result {
        ResultSet::Count(n) => format!("count = {n}"),
        ResultSet::Histogram(h) => {
            format!("histogram: {} bins, {} rows binned", h.bins(), h.total())
        }
        ResultSet::Rows(rows) => format!(
            "{} rows x {} cols",
            rows.len(),
            rows.first().map_or(0, |r| r.len())
        ),
    }
}

/// Renders one case: SQL text, the planner's `EXPLAIN` with actual
/// counters, and the result/cost summary line. Pure and deterministic.
pub fn render_case(case: &SqlCase) -> String {
    let (db, costs) = environment(case);
    let query = logical_query(case);
    let plan = plan(&db, &query).expect("case-study query plans");
    let out = plan.execute(&db).expect("case-study query executes");
    let cost = LinearCostModel::new(costs).price(&out.footprint);
    let mut text = String::new();
    text.push_str(&format!(
        "== sql case: {} ({} backend) ==\n",
        case.name, case.backend
    ));
    text.push_str(&format!("sql: {}\n", case.sql));
    text.push_str(&plan.explain_analyzed(&out.footprint));
    text.push_str(&format!(
        "result: {} | virtual cost: {} us\n",
        summarize(&out.result),
        cost.as_micros()
    ));
    text
}

/// Renders every case-study query, in fixed order — the body of
/// `repro --sql`.
pub fn render_all() -> String {
    let mut text = String::new();
    for case in CASES {
        text.push_str(&render_case(case));
        text.push('\n');
    }
    text.push_str(
        "planned execution is footprint-identical to the unplanned kernel path;\n\
         EXPLAIN text is byte-stable across runs and thread counts.\n",
    );
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_engine::exec::run_query;

    #[test]
    fn every_case_plans_and_matches_unplanned_execution() {
        for case in CASES {
            let (db, _) = environment(case);
            let query = logical_query(case);
            let planned = plan(&db, &query).unwrap().execute(&db).unwrap();
            let (result, footprint) = run_query(&db, &query).unwrap();
            assert_eq!(planned.result, result, "{}", case.name);
            assert_eq!(planned.footprint, footprint, "{}", case.name);
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(render_all(), render_all());
    }
}
