//! The deterministic kernel micro-bench harness behind the `perf`
//! binary, exposed as a library so `trend` can fold a fresh quick run
//! into the committed `BENCH_*.json` history.
//!
//! Measures the vectorized engine (selection-vector kernels, zone-map
//! pruning, fused filter+bin) against the row-at-a-time baseline
//! (per-row `Predicate::matches` + `bin_of`) on seeded tables, reporting
//! both *virtual* cost (simclock-priced footprints — deterministic) and
//! *wall-clock* medians (hardware-dependent). Quick mode omits every
//! wall-clock field so two runs are byte-identical.

use std::time::Instant;

use ids_engine::{
    exec, BinSpec, ColumnBuilder, CostModel, CostParams, LinearCostModel, Predicate, Table,
    TableBuilder,
};
use ids_simclock::rng::SimRng;

/// Deterministic seed for the perf tables (fixed: the report must be
/// reproducible, so this is not configurable).
pub const SEED: u64 = 7;

/// One benchmark's measurements. Wall fields are `None` in quick mode.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark name.
    pub name: String,
    /// Rows the filter matched.
    pub rows_matched: u64,
    /// FNV-1a digest of the result counts (the byte-identity gate).
    pub checksum: u64,
    /// Simclock-priced cost of the vectorized run, microseconds.
    pub virtual_cost_us: u64,
    /// Blocks skipped via zone maps.
    pub blocks_pruned: u64,
    /// Blocks actually scanned.
    pub blocks_scanned: u64,
    /// Median row-at-a-time wall time (full mode only).
    pub baseline_wall_ns: Option<u64>,
    /// Median vectorized wall time (full mode only).
    pub vectorized_wall_ns: Option<u64>,
}

impl BenchReport {
    /// Baseline-over-vectorized speedup, when wall times were measured.
    pub fn speedup(&self) -> Option<f64> {
        match (self.baseline_wall_ns, self.vectorized_wall_ns) {
            (Some(base), Some(vec)) => Some(base as f64 / vec.max(1) as f64),
            _ => None,
        }
    }
}

/// The seeded perf table: a clustered time axis `t` (row index — zone
/// maps prune brushes on it), a uniform measure `v` (the binned axis),
/// and a low-cardinality key `k`.
pub fn perf_table(rows: usize) -> Table {
    let mut rng = SimRng::seed(SEED).split("perf/table");
    let mut t = ColumnBuilder::float([]);
    let mut v = ColumnBuilder::float([]);
    let mut k = ColumnBuilder::int([]);
    for i in 0..rows {
        t.push_float(i as f64);
        v.push_float(rng.uniform(0.0, 100.0));
        k.push_int((i % 1000) as i64);
    }
    TableBuilder::new("perf")
        .column("t", t)
        .column("v", v)
        .column("k", k)
        .build()
        .expect("static schema")
}

/// Runs the full bench suite over a fresh seeded table: the interactive
/// crossfilter shapes (a clustered brush, an unclustered range, a
/// full-table histogram, a 2-D crossfilter) plus a brushed count.
pub fn run_all(quick: bool, rows: usize, reps: usize) -> Vec<BenchReport> {
    let table = perf_table(rows);
    let n = rows as f64;
    let benches: Vec<(&str, BinSpec, Predicate)> = vec![
        (
            "hist_brush_t_bin_v",
            BinSpec::new("v", 0.0, 100.0, 20),
            Predicate::between("t", 0.45 * n, 0.55 * n),
        ),
        (
            "hist_full_bin_v",
            BinSpec::new("v", 0.0, 100.0, 20),
            Predicate::True,
        ),
        (
            "hist_range_v_bin_v",
            BinSpec::new("v", 0.0, 100.0, 20),
            Predicate::between("v", 5.0, 95.0),
        ),
        (
            "hist_crossfilter_2d",
            BinSpec::new("v", 0.0, 100.0, 20),
            Predicate::and([
                Predicate::between("t", 0.25 * n, 0.75 * n),
                Predicate::between("v", 10.0, 90.0),
            ]),
        ),
    ];

    let model = LinearCostModel::new(CostParams::mem_default());
    let mut reports = Vec::new();
    for (name, bins, filter) in &benches {
        reports.push(run_bench(name, &table, bins, filter, &model, reps, quick));
    }
    reports.push(run_count_bench(
        "count_brush_t",
        &table,
        &Predicate::between("t", 0.45 * n, 0.55 * n),
        &model,
        reps,
        quick,
    ));
    // The fleet shard-scaling curve rides along (virtual-only: wall
    // fields stay None in both modes), so the committed BENCH_*.json
    // history gates the million-session p99 like any kernel bench.
    reports.extend(crate::fleetbench::to_reports(
        &crate::fleetbench::shard_curve(),
    ));
    reports
}

/// The row-at-a-time baseline: evaluate the predicate per row with
/// [`Predicate::matches`] — the engine's ground-truth tuple-at-a-time
/// path, same execution model as `ids_simtest::reference` — then bin
/// matching rows through `f64_at` + `bin_of`. This is what the
/// vectorized kernels replaced.
fn rowwise_histogram(table: &Table, bins: &BinSpec, filter: &Predicate) -> Vec<u64> {
    let col = table.column(&bins.column).expect("bench column exists");
    let mut counts = vec![0u64; bins.bucket_count()];
    for row in 0..table.rows() {
        if filter.matches(table, row).expect("bench filter is valid") {
            if let Some(b) = col.f64_at(row).and_then(|x| bins.bin_of(x)) {
                counts[b] += 1;
            }
        }
    }
    counts
}

/// Row-at-a-time count baseline (see [`rowwise_histogram`]).
fn rowwise_count(table: &Table, filter: &Predicate) -> u64 {
    (0..table.rows())
        .filter(|&row| filter.matches(table, row).expect("bench filter is valid"))
        .count() as u64
}

fn run_bench(
    name: &str,
    table: &Table,
    bins: &BinSpec,
    filter: &Predicate,
    model: &LinearCostModel,
    reps: usize,
    quick: bool,
) -> BenchReport {
    let (rs, fp) = exec::run_histogram(table, bins, filter).expect("bench query is valid");
    let hist = rs.histogram().expect("histogram result");
    let rowwise = rowwise_histogram(table, bins, filter);
    assert_eq!(
        hist.counts(),
        &rowwise[..],
        "{name}: vectorized and row-at-a-time histograms diverged"
    );
    let mut report = BenchReport {
        name: name.to_string(),
        rows_matched: fp.rows_matched,
        checksum: fnv1a(hist.counts()),
        virtual_cost_us: model.price(&fp).as_micros(),
        blocks_pruned: fp.blocks_pruned,
        blocks_scanned: fp.blocks_scanned,
        baseline_wall_ns: None,
        vectorized_wall_ns: None,
    };
    if !quick {
        report.baseline_wall_ns = Some(median_wall_ns(reps, || {
            std::hint::black_box(rowwise_histogram(table, bins, filter));
        }));
        report.vectorized_wall_ns = Some(median_wall_ns(reps, || {
            std::hint::black_box(exec::run_histogram(table, bins, filter).unwrap());
        }));
    }
    report
}

fn run_count_bench(
    name: &str,
    table: &Table,
    filter: &Predicate,
    model: &LinearCostModel,
    reps: usize,
    quick: bool,
) -> BenchReport {
    let (rs, fp) = exec::run_count(table, filter).expect("bench query is valid");
    let count = rs.scalar_count().expect("count result");
    let rowwise = rowwise_count(table, filter);
    assert_eq!(
        count, rowwise,
        "{name}: vectorized and row-at-a-time counts diverged"
    );
    let mut report = BenchReport {
        name: name.to_string(),
        rows_matched: fp.rows_matched,
        checksum: fnv1a(&[count]),
        virtual_cost_us: model.price(&fp).as_micros(),
        blocks_pruned: fp.blocks_pruned,
        blocks_scanned: fp.blocks_scanned,
        baseline_wall_ns: None,
        vectorized_wall_ns: None,
    };
    if !quick {
        report.baseline_wall_ns = Some(median_wall_ns(reps, || {
            std::hint::black_box(rowwise_count(table, filter));
        }));
        report.vectorized_wall_ns = Some(median_wall_ns(reps, || {
            std::hint::black_box(exec::run_count(table, filter).unwrap());
        }));
    }
    report
}

/// One warmup run, then the median of `reps` timed runs.
fn median_wall_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    f(); // warmup
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// FNV-1a over the little-endian bytes of the counts — a stable,
/// dependency-free digest for the byte-identity gate.
pub fn fnv1a(counts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in counts {
        for b in c.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Serializes a run in the committed `BENCH_*.json` shape (hand-rolled:
/// the workspace has no JSON dependency, and `trend` parses exactly this
/// format back).
pub fn render_json(quick: bool, rows: usize, reps: usize, reports: &[BenchReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"harness\": \"perf\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"seed\": {SEED},\n"));
    s.push_str(&format!("  \"rows\": {rows},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str("  \"benches\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"rows_matched\": {},\n", r.rows_matched));
        s.push_str(&format!("      \"checksum\": \"{:016x}\",\n", r.checksum));
        s.push_str(&format!(
            "      \"virtual_cost_us\": {},\n",
            r.virtual_cost_us
        ));
        s.push_str(&format!("      \"blocks_pruned\": {},\n", r.blocks_pruned));
        if let (Some(base), Some(vec)) = (r.baseline_wall_ns, r.vectorized_wall_ns) {
            s.push_str(&format!(
                "      \"blocks_scanned\": {},\n",
                r.blocks_scanned
            ));
            s.push_str(&format!("      \"baseline_wall_ns\": {base},\n"));
            s.push_str(&format!("      \"vectorized_wall_ns\": {vec},\n"));
            s.push_str(&format!(
                "      \"speedup\": {:.2}\n",
                base as f64 / vec.max(1) as f64
            ));
        } else {
            s.push_str(&format!("      \"blocks_scanned\": {}\n", r.blocks_scanned));
        }
        s.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Default table size for a mode.
pub fn default_rows(quick: bool) -> usize {
    if quick {
        200_000
    } else {
        10_000_000
    }
}

/// Default median-of-k repetitions for a mode.
pub fn default_reps(quick: bool) -> usize {
    if quick {
        1
    } else {
        5
    }
}

/// Reads a usize from the environment, falling back to `default`.
pub fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_runs_are_deterministic() {
        let a = run_all(true, 4_000, 1);
        let b = run_all(true, 4_000, 1);
        assert_eq!(a.len(), 8, "5 kernel benches + 3 fleet shard points");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.checksum, y.checksum);
            assert_eq!(x.virtual_cost_us, y.virtual_cost_us);
            assert_eq!(x.blocks_pruned, y.blocks_pruned);
            assert!(x.baseline_wall_ns.is_none(), "quick mode omits wall times");
            assert!(x.speedup().is_none());
        }
        assert_eq!(
            render_json(true, 4_000, 1, &a),
            render_json(true, 4_000, 1, &b)
        );
    }
}
