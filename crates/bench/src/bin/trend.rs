//! `trend`: CI-gated perf-trend harness.
//!
//! Folds the committed `BENCH_*.json` history plus a fresh
//! `perf --quick` run into a regression table (see [`ids_bench::trend`])
//! and exits non-zero when a gate fails.
//!
//! ```text
//! trend                        # history = ./BENCH_*.json, plus a fresh quick run
//! trend FILE...                # explicit history files, in commit order
//! trend --max-regression 0.3  # tolerate up to 30% slowdown (default 0.20)
//! trend --no-fresh             # evaluate the committed history only
//! IDS_PERF_ROWS=N              # table size for the fresh quick run
//! ```

use ids_bench::perf;
use ids_bench::trend::{evaluate, parse_report, PerfReport};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let no_fresh = take_flag(&mut args, "--no-fresh");
    let max_regression: f64 = take_value_flag(&mut args, "--max-regression")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: --max-regression wants a fraction like 0.20");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.20);
    if args.iter().any(|a| a.starts_with("--")) {
        eprintln!("usage: trend [--max-regression FRACTION] [--no-fresh] [BENCH_FILE...]");
        std::process::exit(2);
    }

    let files = if args.is_empty() {
        default_history_files()
    } else {
        args
    };
    if files.is_empty() {
        eprintln!("error: no BENCH_*.json history found (run `perf --quick` first)");
        std::process::exit(2);
    }

    let mut history: Vec<PerfReport> = Vec::new();
    for f in &files {
        let json = std::fs::read_to_string(f).unwrap_or_else(|e| {
            eprintln!("error: reading {f}: {e}");
            std::process::exit(2);
        });
        match parse_report(f, &json) {
            Ok(r) => history.push(r),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    let fresh = if no_fresh {
        // Re-evaluate the newest committed report against the rest.
        history.pop().unwrap_or_else(|| {
            eprintln!("error: --no-fresh needs at least one history file");
            std::process::exit(2);
        })
    } else {
        let rows = perf::env_usize("IDS_PERF_ROWS", perf::default_rows(true));
        eprintln!("running fresh perf --quick at {rows} rows…");
        let runs = perf::run_all(true, rows, 1);
        PerfReport::from_run("fresh-quick", true, rows, &runs)
    };

    match evaluate(&history, &fresh, max_regression) {
        Ok(report) => {
            print!("{}", report.render());
            if !report.passed() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// All `BENCH_*.json` files in the current directory, sorted by name so
/// the history order is stable.
fn default_history_files() -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(".")
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Removes `flag VALUE` from `args` if present, returning the value.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("error: {flag} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}
