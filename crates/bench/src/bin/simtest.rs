//! `simtest`: the deterministic simulation-testing driver.
//!
//! Generates scenarios from a master seed, runs each through the full
//! engine/serve pipeline, checks every invariant oracle, and shrinks
//! any failure into a minimized repro printed as a self-contained TOML
//! file (paste it into `tests/corpus/` to check it in).
//!
//! ```text
//! simtest                          # default: 25 scenarios from seed 0x1d5
//! IDS_SIMTEST_SCENARIOS=200 simtest
//! IDS_SIMTEST_SEED=42 simtest      # different scenario stream
//! IDS_SIMTEST_TIME_BUDGET=60 simtest
//!                                  # stop cleanly after ~60 seconds
//! ```
//!
//! Without a time budget the output is a pure function of
//! `(IDS_SIMTEST_SEED, IDS_SIMTEST_SCENARIOS)` — byte-identical across
//! runs and hosts. Exit status is nonzero iff any oracle failed.

use std::time::{Duration, Instant};

use ids_simtest::explore;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seed = env_u64("IDS_SIMTEST_SEED", 0x1d5);
    let scenarios = env_u64("IDS_SIMTEST_SCENARIOS", 25) as usize;
    let budget_secs = env_u64("IDS_SIMTEST_TIME_BUDGET", 0);
    let deadline = if budget_secs == 0 {
        None
    } else {
        Some(Instant::now() + Duration::from_secs(budget_secs))
    };

    let report = explore(seed, scenarios, deadline);
    print!("{}", report.render());

    for failure in &report.failures {
        println!();
        println!(
            "=== minimized repro (scenario {}, oracle {}) ===",
            failure.index, failure.oracle
        );
        print!("{}", failure.repro_toml);
        println!("=== end repro ===");
    }

    if !report.all_passed() {
        std::process::exit(1);
    }
}
