//! `repro`: regenerates every table and figure of *Evaluating Interactive
//! Data Systems* from this repository's implementation.
//!
//! ```text
//! repro --all                    # everything
//! repro --index                  # the artifact → module → target index
//! repro --table 8                # one table
//! repro --figure 13              # one figure
//! repro --robustness             # fault-injection robustness table
//! repro --progressive            # deadline-mode LCV/error tradeoff table
//! repro --adaptive               # open-loop vs closed-loop workload table
//! repro --fleet                  # multi-tenant fleet-serving table
//! repro --sql                    # case-study SQL through the planner
//! repro --trace-out trace.json --figure 13
//!                                # also export a Chrome/Perfetto trace
//! repro --metrics-out run.tsv ...# write the metrics snapshot as TSV
//! IDS_SCALE=paper repro ...      # full study scale (slower)
//! ```

use std::collections::BTreeSet;

use ids_bench::Scale;
use ids_core::experiments::{
    adaptive, case1, case2, case3, fleet, methodology, robustness, scalability,
};
use ids_core::registry;
use ids_core::report;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = take_value_flag(&mut args, "--trace-out");
    let metrics_out = take_value_flag(&mut args, "--metrics-out");
    if trace_out.is_some() {
        // Tracing is observation-only: same-seed output tables are
        // identical with or without it (see tests/observability.rs).
        ids_obs::enable();
    }
    let scale = Scale::from_env();
    match parse(&args) {
        Command::Index => println!("{}", registry::render_index()),
        Command::All => {
            println!("{}", registry::render_index());
            print_methodology(&BTreeSet::from(["1", "3", "4", "5"]), Kind::Figure);
            print_methodology(&BTreeSet::from(["1", "2", "3", "4", "5", "6"]), Kind::Table);
            let c1 = case1::run(&scale.case1());
            println!("{}", c1.render());
            let c2 = case2::run(&scale.case2());
            println!("{}", c2.render());
            let c3 = case3::run(&scale.case3());
            println!("{}", c3.render());
            println!("{}", scalability::run(&scale.scalability()).render());
            println!("{}", robustness::run(&scale.robustness()).render());
            println!("{}", fleet::run(&scale.fleet()).render());
        }
        Command::Table(n) => print_table(&n, scale),
        Command::Figure(n) => print_figure(&n, scale),
        Command::Scalability => {
            println!("{}", scalability::run(&scale.scalability()).render());
        }
        Command::Robustness => {
            println!("{}", robustness::run(&scale.robustness()).render());
        }
        Command::Progressive => {
            println!(
                "{}",
                robustness::run_progressive(&scale.progressive()).render()
            );
        }
        Command::Adaptive => {
            println!("{}", adaptive::run(&scale.adaptive()).render());
        }
        Command::Fleet => {
            // Fleet telemetry is captured through the obs recorder and
            // served back out of the lakehouse tables, so the recorder
            // must be live for the run (restore its prior state after).
            let was_enabled = ids_obs::enabled();
            ids_obs::enable();
            let report = fleet::run(&scale.fleet());
            if !was_enabled && trace_out.is_none() {
                ids_obs::disable();
            }
            println!("{}", report.render());
            println!("{}", report.render_telemetry());
            // The weak-scaling shard curve: 10^6 sessions / 10^8 rows at
            // the 16-shard top point, p99 held flat by scatter-gather.
            println!(
                "{}",
                ids_bench::fleetbench::render(&ids_bench::fleetbench::shard_curve())
            );
        }
        Command::Sql => {
            println!("{}", ids_bench::sqlrepro::render_all());
        }
        Command::Help(err) => {
            if let Some(e) = err {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: repro [--all | --index | --table N | --figure N\n\
                 \x20            | --scalability | --robustness | --progressive\n\
                 \x20            | --adaptive | --fleet | --sql]\n\
                 \x20      [--trace-out FILE] [--metrics-out FILE]\n\
                 scale: set IDS_SCALE=paper for full study sizes"
            );
            std::process::exit(2);
        }
    }
    finish_telemetry(trace_out.as_deref(), metrics_out.as_deref());
}

/// Removes `flag VALUE` from `args` if present, returning the value.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("error: {flag} requires a file path argument");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// End-of-run telemetry: the per-phase wall/virtual table, the metrics
/// snapshot summary, and the requested trace / metrics files.
fn finish_telemetry(trace_out: Option<&str>, metrics_out: Option<&str>) {
    let rec = ids_obs::recorder();
    let phases = rec.phases();
    let phase_table = report::phase_summary(&phases);
    if !phase_table.is_empty() {
        println!("{phase_table}");
    }
    let snap = ids_obs::metrics().snapshot();
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(path, ids_obs::metrics_tsv(&snap)) {
            eprintln!("error: writing metrics snapshot to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics snapshot written to {path}");
    }
    if let Some(path) = trace_out {
        println!("{}", report::metrics_summary(&snap));
        // Stream the trace to disk in chunks (possibly rendered in
        // parallel — set IDS_EXPORT_THREADS) instead of materializing
        // one monolithic string; the bytes are identical either way.
        let write_chunked = |path: &str| -> Result<(), ids_obs::ExportError> {
            let file = std::fs::File::create(path)?;
            let mut sink = ids_obs::IoSink::new(std::io::BufWriter::new(file));
            ids_obs::chrome_trace_chunked(
                &rec.events(),
                &rec.tracks(),
                ids_obs::export_threads(),
                &mut sink,
            )?;
            use std::io::Write as _;
            sink.into_inner().flush()?;
            Ok(())
        };
        if let Err(e) = write_chunked(path) {
            eprintln!("error: writing trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "trace with {} events written to {path} (open in ui.perfetto.dev or chrome://tracing)",
            rec.event_count()
        );
    }
}

enum Command {
    All,
    Index,
    Table(String),
    Figure(String),
    Scalability,
    Robustness,
    Progressive,
    Adaptive,
    Fleet,
    Sql,
    Help(Option<String>),
}

enum Kind {
    Table,
    Figure,
}

fn parse(args: &[String]) -> Command {
    match args {
        [] => Command::All,
        [a] if a == "--all" => Command::All,
        [a] if a == "--index" => Command::Index,
        [a] if a == "--scalability" => Command::Scalability,
        [a] if a == "--robustness" => Command::Robustness,
        [a] if a == "--progressive" => Command::Progressive,
        [a] if a == "--adaptive" => Command::Adaptive,
        [a] if a == "--fleet" => Command::Fleet,
        [a] if a == "--sql" => Command::Sql,
        [a, n] if a == "--table" => Command::Table(n.clone()),
        [a, n] if a == "--figure" => Command::Figure(n.clone()),
        [a] if a == "--help" || a == "-h" => Command::Help(None),
        other => Command::Help(Some(format!("unrecognized arguments: {other:?}"))),
    }
}

fn print_methodology(numbers: &BTreeSet<&str>, kind: Kind) {
    for n in numbers {
        match kind {
            Kind::Figure => print_figure(n, Scale::Bench),
            Kind::Table => print_table(n, Scale::Bench),
        }
    }
}

fn print_table(n: &str, scale: Scale) {
    match n {
        "1" => println!("{}", methodology::render_table1()),
        "2" => println!("{}", methodology::render_table2()),
        "3" => println!("{}", methodology::render_table3()),
        "4" => println!("{}", methodology::render_table4()),
        "5" => println!("{}", registry::render_table5()),
        "6" => println!("{}", registry::render_table6()),
        "7" => println!("{}", case1::run(&scale.case1()).render_table7()),
        "8" => println!("{}", case1::run(&scale.case1()).render_table8()),
        "9" => println!("{}", case3::run(&scale.case3()).render_table9()),
        "10" => println!("{}", case3::run(&scale.case3()).render_table10()),
        other => {
            eprintln!("unknown table `{other}` (the paper has Tables 1-10)");
            std::process::exit(2);
        }
    }
}

fn print_figure(n: &str, scale: Scale) {
    match n {
        "1" => println!("{}", methodology::render_fig1()),
        "3" => println!("{}", methodology::render_fig3()),
        "4" => println!("{}", methodology::render_fig4()),
        "5" => println!("{}", methodology::render_fig5()),
        "2" | "6" | "12" | "16" | "17" => {
            println!(
                "Fig {n} is an illustration (no data series); the mechanism it \
                 depicts is implemented — see `repro --index`."
            );
        }
        "7" => println!("{}", case1::run(&scale.case1()).render_fig7()),
        "8" => println!("{}", case1::run(&scale.case1()).render_fig8()),
        "9" => println!("{}", case1::run(&scale.case1()).render_fig9()),
        "10" => println!("{}", case1::run(&scale.case1()).render_fig10()),
        "11" => println!("{}", case2::run(&scale.case2()).render_fig11()),
        "13" => println!("{}", case2::run(&scale.case2()).render_fig13()),
        "14" => println!("{}", case2::run(&scale.case2()).render_fig14()),
        "15" => println!("{}", case2::run(&scale.case2()).render_fig15()),
        "18" => println!("{}", case3::run(&scale.case3()).render_fig18()),
        "19" | "20" => {
            let r = case3::run(&scale.case3());
            if n == "19" {
                println!("{}", r.render_table10());
                println!("(Fig 19 plots the same per-zoom movements Table 10 ranges summarize.)");
            } else {
                println!("{}", r.render_fig20());
            }
        }
        "21" => println!("{}", case3::run(&scale.case3()).render_fig21()),
        other => {
            eprintln!("unknown figure `{other}` (the paper has Figs 1-21)");
            std::process::exit(2);
        }
    }
}
