//! `perf`: deterministic micro-bench harness for the vectorized kernels.
//!
//! Thin CLI wrapper over [`ids_bench::perf`] (the machinery lives in the
//! library so `trend` can fold a fresh quick run into the committed
//! `BENCH_*.json` history).
//!
//! ```text
//! perf                   # full run → BENCH_perf.json (wall times + speedups)
//! perf --quick           # small rows, deterministic fields only (CI gate:
//!                        # two runs must produce byte-identical output)
//! perf --out FILE        # write the report somewhere else
//! IDS_PERF_ROWS=1000000  # override the table size
//! IDS_PERF_REPS=9        # override median-of-k repetitions
//! ```
//!
//! The `--quick` report intentionally omits every wall-clock field so CI
//! can diff two runs for byte-identity: same seed, same rows, same
//! checksums, same virtual costs, same pruning counters — always.

use ids_bench::perf::{default_reps, default_rows, env_usize, render_json, run_all};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = take_flag(&mut args, "--quick");
    let out = take_value_flag(&mut args, "--out").unwrap_or_else(|| "BENCH_perf.json".to_string());
    if !args.is_empty() {
        eprintln!("usage: perf [--quick] [--out FILE]");
        eprintln!(
            "env:   IDS_PERF_ROWS=N   table size (default {})",
            default_rows(quick)
        );
        eprintln!(
            "       IDS_PERF_REPS=K   median-of-K reps (default {})",
            default_reps(quick)
        );
        std::process::exit(2);
    }

    let rows = env_usize("IDS_PERF_ROWS", default_rows(quick));
    let reps = env_usize("IDS_PERF_REPS", default_reps(quick)).max(1);

    let reports = run_all(quick, rows, reps);
    let json = render_json(quick, rows, reps, &reports);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    }
    eprint!("{json}");
    eprintln!("report written to {out}");
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Removes `flag VALUE` from `args` if present, returning the value.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("error: {flag} requires a file path argument");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}
