//! Golden-snapshot tests: the `repro` end-of-run tables, byte-compared
//! to checked-in fixtures.
//!
//! Every experiment here is a pure function of its seeded config, so its
//! rendered table must reproduce byte-identically on any machine. A
//! mismatch means either an intentional change to an experiment or a
//! broken determinism contract — the fixture diff tells you which.
//!
//! To regenerate fixtures after an intentional change:
//!
//! ```text
//! IDS_BLESS=1 cargo test -p ids-bench --test golden
//! git diff crates/bench/tests/golden/   # review before committing
//! ```
//!
//! Wall-clock output (the per-phase timing table, Criterion numbers) is
//! deliberately NOT snapshotted — only virtual-time tables are stable.

use std::path::PathBuf;

use ids_core::experiments::{adaptive, case1, fleet, methodology, robustness, scalability};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-compares `actual` against the named fixture, or rewrites the
/// fixture when `IDS_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var("IDS_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixture dir");
        std::fs::write(&path, actual).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run `IDS_BLESS=1 cargo test -p ids-bench \
             --test golden` to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}: if the change is intentional, regenerate with \
         `IDS_BLESS=1 cargo test -p ids-bench --test golden` and review the diff"
    );
}

#[test]
fn golden_methodology_tables() {
    let text = format!(
        "{}\n{}\n{}\n{}\n",
        methodology::render_table1(),
        methodology::render_table2(),
        methodology::render_table3(),
        methodology::render_table4(),
    );
    check_golden("methodology_tables.txt", &text);
}

#[test]
fn golden_case1_report() {
    let report = case1::run(&case1::Case1Config::smoke_test());
    check_golden("case1_report.txt", &report.render());
}

#[test]
fn golden_scalability_table() {
    let report = scalability::run(&scalability::ScalabilityConfig::smoke_test());
    check_golden("scalability_table.txt", &report.render());
}

#[test]
fn golden_robustness_table() {
    let report = robustness::run(&robustness::RobustnessConfig::smoke_test());
    check_golden("robustness_table.txt", &report.render());
}

#[test]
fn golden_progressive_table() {
    let report = robustness::run_progressive(&robustness::ProgressiveConfig::smoke_test());
    check_golden("progressive_table.txt", &report.render());
}

#[test]
fn golden_adaptive_table() {
    let report = adaptive::run(&adaptive::AdaptiveConfig::smoke_test());
    check_golden("adaptive_table.txt", &report.render());
}

#[test]
fn golden_fleet_table() {
    let report = fleet::run(&fleet::FleetConfig::smoke_test());
    check_golden("fleet_table.txt", &report.render());
}

/// One `EXPLAIN` fixture per case-study query. The rendered case (plan
/// tree + actual counters + cost) must be byte-identical on every run;
/// re-rendering after executing at 2/4/8 threads must not perturb it.
#[test]
fn golden_explain_case_studies() {
    for case in ids_bench::sqlrepro::CASES {
        let text = ids_bench::sqlrepro::render_case(case);
        for _ in 0..2 {
            assert_eq!(
                text,
                ids_bench::sqlrepro::render_case(case),
                "EXPLAIN for {} is not replay-stable",
                case.name
            );
        }
        check_golden(&format!("explain_{}.txt", case.name), &text);
    }
}
