//! Vectorized query kernels.
//!
//! The crossfilter hot path used to be row-at-a-time: `Predicate::select`
//! materialized a `Vec<usize>` of row ids, then every selected row paid an
//! `Option`-checked [`Column::f64_at`] dispatch. This module replaces that
//! with column-at-a-time kernels over a [`SelectionVector`] bitmask:
//!
//! - **batch predicate kernels** evaluate each condition over the raw
//!   `i64`/`f64` slices (or dictionary codes) 64 rows per word, combining
//!   conjunctions/disjunctions as bitwise AND/OR/NOT;
//! - **zone maps** ([`crate::column::ZoneMap`], per-1024-row-block
//!   min/max/NaN-count, built lazily per column) let range predicates
//!   decide whole blocks — all-false or all-true — without touching data;
//! - **fused kernels** consume the selection vector directly
//!   (filter+bin+count for histograms, filter+count for counts) without
//!   ever materializing a row-id vector.
//!
//! Kernels change *how* results are computed, never *what* they are: every
//! kernel is differential-tested against the row-at-a-time interpreter
//! (`tests/kernels.rs`, `ids-simtest`'s reference), and zone-map pruning
//! is required to be invisible (`KernelOptions::zone_prune` on/off must be
//! byte-equal — see `tests/properties.rs`).

use crate::column::{Column, ZoneMap, ZONE_BLOCK_ROWS};
use crate::error::EngineResult;
use crate::predicate::{CmpOp, Predicate};
use crate::query::BinSpec;
use crate::result::Histogram;
use crate::table::Table;
use crate::value::Value;

/// Tuning knobs for kernel execution. Results are required to be
/// identical for every combination of options; the knobs exist so tests
/// can prove that (and so benches can measure each layer's contribution).
#[derive(Debug, Clone, Copy)]
pub struct KernelOptions {
    /// Consult per-block zone maps to skip whole blocks. Pruning is an
    /// optimization only: outputs are byte-identical with it off.
    pub zone_prune: bool,
}

impl Default for KernelOptions {
    fn default() -> Self {
        KernelOptions { zone_prune: true }
    }
}

/// Counters describing how much work the kernels actually did (vs what
/// zone maps let them skip). Feeds `QueryFootprint::blocks_pruned` /
/// `blocks_scanned` and the perf harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Blocks decided entirely from the zone map (all-false or all-true)
    /// without touching column data.
    pub blocks_pruned: u64,
    /// Blocks whose data was actually read.
    pub blocks_scanned: u64,
}

/// A set of selected rows over a table of `len` rows, stored as a
/// bitmask (64 rows per word) with a cached population count.
///
/// The mask representation makes conjunction/disjunction a word-wise
/// AND/OR, and [`runs`](SelectionVector::runs) decodes the mask into
/// run-length `(start, end)` ranges so fused consumers can process
/// dense regions without per-row branching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionVector {
    len: usize,
    words: Vec<u64>,
    count: usize,
}

impl SelectionVector {
    /// Number of words needed for `len` rows.
    fn word_count(len: usize) -> usize {
        len.div_ceil(64)
    }

    /// A mask for the bits of the final (possibly partial) word.
    fn tail_mask(len: usize) -> u64 {
        match len % 64 {
            0 => u64::MAX,
            r => (1u64 << r) - 1,
        }
    }

    /// Selects every row of a `len`-row table.
    pub fn all(len: usize) -> SelectionVector {
        let mut words = vec![u64::MAX; Self::word_count(len)];
        if let Some(last) = words.last_mut() {
            *last &= Self::tail_mask(len);
        }
        SelectionVector {
            len,
            words,
            count: len,
        }
    }

    /// Selects no rows of a `len`-row table.
    pub fn none(len: usize) -> SelectionVector {
        SelectionVector {
            len,
            words: vec![0; Self::word_count(len)],
            count: 0,
        }
    }

    /// Builds a selection from raw mask words. Bits beyond `len` are
    /// cleared; the population count is computed once here.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> SelectionVector {
        words.resize(Self::word_count(len), 0);
        if let Some(last) = words.last_mut() {
            *last &= Self::tail_mask(len);
        }
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        SelectionVector { len, words, count }
    }

    /// Number of rows in the underlying table.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the underlying table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of selected rows (cached popcount).
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` when every row is selected.
    pub fn is_all(&self) -> bool {
        self.count == self.len
    }

    /// Whether `row` is selected. Out-of-bounds rows are not selected.
    pub fn contains(&self, row: usize) -> bool {
        row < self.len && self.words[row / 64] & (1u64 << (row % 64)) != 0
    }

    /// The raw mask words (64 rows per word, LSB-first).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// In-place intersection with `other` (same table length).
    pub fn intersect(&mut self, other: &SelectionVector) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        self.count = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// In-place union with `other` (same table length).
    pub fn union(&mut self, other: &SelectionVector) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        self.count = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// In-place complement within `0..len`.
    pub fn negate(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        if let Some(last) = self.words.last_mut() {
            *last &= Self::tail_mask(self.len);
        }
        self.count = self.len - self.count;
    }

    /// Iterates selected row ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * 64;
            BitIter { word: w }.map(move |b| base + b)
        })
    }

    /// Materializes the selected row ids (the row-at-a-time
    /// interchange format; fused kernels avoid this).
    pub fn to_row_ids(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count);
        out.extend(self.iter());
        out
    }

    /// Decodes the mask into maximal runs of consecutive selected rows,
    /// as half-open `(start, end)` ranges in ascending order.
    pub fn runs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut open: Option<usize> = None;
        for (wi, &w) in self.words.iter().enumerate() {
            let base = wi * 64;
            if w == u64::MAX {
                if open.is_none() {
                    open = Some(base);
                }
                continue;
            }
            let mut bit = 0usize;
            let mut word = w;
            while bit < 64 {
                if word & 1 == 0 {
                    if let Some(s) = open.take() {
                        out.push((s, base + bit));
                    }
                    if word == 0 {
                        break;
                    }
                    let skip = word.trailing_zeros() as usize;
                    word >>= skip;
                    bit += skip;
                } else {
                    if open.is_none() {
                        open = Some(base + bit);
                    }
                    let ones = (!word).trailing_zeros() as usize;
                    word = word.checked_shr(ones as u32).unwrap_or(0);
                    bit += ones;
                }
            }
        }
        if let Some(s) = open {
            out.push((s, self.len));
        }
        out
    }
}

/// Iterates set-bit positions (0..64) of one word.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

/// Evaluates `pred` over every row of `table` column-at-a-time,
/// returning the selection mask. Equivalent to (but much faster than)
/// collecting `Predicate::matches` row by row; unlike the row-at-a-time
/// path it always validates every referenced column, even under a
/// short-circuiting `Or`.
pub fn select_vector(table: &Table, pred: &Predicate) -> EngineResult<SelectionVector> {
    let mut stats = KernelStats::default();
    select_vector_with(table, pred, &KernelOptions::default(), &mut stats)
}

/// [`select_vector`] with explicit options and work counters.
pub fn select_vector_with(
    table: &Table,
    pred: &Predicate,
    opts: &KernelOptions,
    stats: &mut KernelStats,
) -> EngineResult<SelectionVector> {
    pred.validate(table)?;
    eval_pred(table, pred, opts, stats)
}

fn eval_pred(
    table: &Table,
    pred: &Predicate,
    opts: &KernelOptions,
    stats: &mut KernelStats,
) -> EngineResult<SelectionVector> {
    let rows = table.rows();
    Ok(match pred {
        Predicate::True => SelectionVector::all(rows),
        Predicate::Between { column, lo, hi } => {
            let idx = table.column_index(column)?;
            let col = table.column_at(idx);
            let zone = if opts.zone_prune {
                table.zone_map_at(idx)
            } else {
                None
            };
            between_kernel(col, zone, *lo, *hi, stats)
        }
        Predicate::Cmp { column, op, value } => {
            let idx = table.column_index(column)?;
            let col = table.column_at(idx);
            let zone = if opts.zone_prune {
                table.zone_map_at(idx)
            } else {
                None
            };
            cmp_kernel(col, zone, *op, value, stats)
        }
        Predicate::And(ps) => {
            let mut acc = SelectionVector::all(rows);
            for p in ps {
                let child = eval_pred(table, p, opts, stats)?;
                acc.intersect(&child);
            }
            acc
        }
        Predicate::Or(ps) => {
            let mut acc = SelectionVector::none(rows);
            for p in ps {
                let child = eval_pred(table, p, opts, stats)?;
                acc.union(&child);
            }
            acc
        }
        Predicate::Not(p) => {
            let mut inner = eval_pred(table, p, opts, stats)?;
            inner.negate();
            inner
        }
    })
}

/// Per-block zone-map verdict for a range/comparison kernel.
enum BlockVerdict {
    /// Every row in the block fails: emit zero words without reading data.
    AllFalse,
    /// Every row in the block passes: emit one words without reading data.
    AllTrue,
    /// Must read the block's data.
    Scan,
}

/// `column BETWEEN lo AND hi` (NaN fails) — the crossfilter workhorse.
fn between_kernel(
    col: &Column,
    zone: Option<&ZoneMap>,
    lo: f64,
    hi: f64,
    stats: &mut KernelStats,
) -> SelectionVector {
    let len = col.len();
    match col {
        // String columns never match a numeric range.
        Column::Str { .. } => SelectionVector::none(len),
        Column::Float(v) => numeric_blocks(
            len,
            zone,
            stats,
            |z| {
                if z.max < lo || z.min > hi {
                    BlockVerdict::AllFalse
                } else if z.nan_count == 0 && z.min >= lo && z.max <= hi {
                    BlockVerdict::AllTrue
                } else {
                    BlockVerdict::Scan
                }
            },
            |start, end, words| {
                fill_mask(&v[start..end], start, words, |x| x >= lo && x <= hi);
            },
        ),
        Column::Int(v) => numeric_blocks(
            len,
            zone,
            stats,
            |z| {
                if z.max < lo || z.min > hi {
                    BlockVerdict::AllFalse
                } else if z.min >= lo && z.max <= hi {
                    BlockVerdict::AllTrue
                } else {
                    BlockVerdict::Scan
                }
            },
            |start, end, words| {
                fill_mask(&v[start..end], start, words, |x| {
                    let x = x as f64;
                    x >= lo && x <= hi
                });
            },
        ),
    }
}

/// `column <op> literal`, reproducing `Predicate::matches` semantics
/// exactly: numeric vs numeric compares as `f64`, string vs string
/// compares dictionary entries, and cross-type comparisons are false
/// except `Ne` (which is true).
fn cmp_kernel(
    col: &Column,
    zone: Option<&ZoneMap>,
    op: CmpOp,
    value: &Value,
    stats: &mut KernelStats,
) -> SelectionVector {
    let len = col.len();
    match (col, value.as_f64()) {
        // Numeric column vs numeric literal.
        (Column::Int(_) | Column::Float(_), Some(v)) => {
            if v.is_nan() {
                // Every comparison with NaN is false, except `<>`.
                return match op {
                    CmpOp::Ne => SelectionVector::all(len),
                    _ => SelectionVector::none(len),
                };
            }
            numeric_cmp_kernel(col, zone, op, v, stats)
        }
        // String column vs string literal: compare dictionary entries
        // once, then map the per-code verdicts over the code array.
        (Column::Str { codes, dict }, None) if value.as_str().is_some() => {
            let v = value.as_str().expect("guarded by as_str().is_some()");
            let verdicts: Vec<bool> = dict
                .iter()
                .map(|d| match op {
                    CmpOp::Eq => d.as_ref() == v,
                    CmpOp::Ne => d.as_ref() != v,
                    CmpOp::Lt => d.as_ref() < v,
                    CmpOp::Le => d.as_ref() <= v,
                    CmpOp::Gt => d.as_ref() > v,
                    CmpOp::Ge => d.as_ref() >= v,
                })
                .collect();
            let mut words = vec![0u64; SelectionVector::word_count(len)];
            fill_mask(codes, 0, &mut words, |c| verdicts[c as usize]);
            stats.blocks_scanned += len.div_ceil(ZONE_BLOCK_ROWS) as u64;
            SelectionVector::from_words(words, len)
        }
        // Cross-type comparison: false for every row, except `<>`.
        _ => match op {
            CmpOp::Ne => SelectionVector::all(len),
            _ => SelectionVector::none(len),
        },
    }
}

/// Numeric comparison kernel with zone-map block decisions. `v` is
/// finite (NaN literals are handled by the caller).
fn numeric_cmp_kernel(
    col: &Column,
    zone: Option<&ZoneMap>,
    op: CmpOp,
    v: f64,
    stats: &mut KernelStats,
) -> SelectionVector {
    let len = col.len();
    // A block is all-true only when every row passes, which requires no
    // NaNs for every operator except `Ne` (NaN != v is true).
    let verdict = move |z: &crate::column::Zone| -> BlockVerdict {
        let no_nan = z.nan_count == 0;
        let (all_true, all_false) = match op {
            CmpOp::Eq => (no_nan && z.min == v && z.max == v, v < z.min || v > z.max),
            CmpOp::Ne => (v < z.min || v > z.max, no_nan && z.min == v && z.max == v),
            CmpOp::Lt => (no_nan && z.max < v, z.min >= v),
            CmpOp::Le => (no_nan && z.max <= v, z.min > v),
            CmpOp::Gt => (no_nan && z.min > v, z.max <= v),
            CmpOp::Ge => (no_nan && z.min >= v, z.max < v),
        };
        if all_false {
            BlockVerdict::AllFalse
        } else if all_true {
            BlockVerdict::AllTrue
        } else {
            BlockVerdict::Scan
        }
    };
    let row_op = move |x: f64| -> bool {
        match op {
            CmpOp::Eq => x == v,
            CmpOp::Ne => x != v,
            CmpOp::Lt => x < v,
            CmpOp::Le => x <= v,
            CmpOp::Gt => x > v,
            CmpOp::Ge => x >= v,
        }
    };
    match col {
        Column::Float(data) => numeric_blocks(len, zone, stats, verdict, |start, end, words| {
            fill_mask(&data[start..end], start, words, row_op);
        }),
        Column::Int(data) => numeric_blocks(len, zone, stats, verdict, |start, end, words| {
            fill_mask(&data[start..end], start, words, |x| row_op(x as f64));
        }),
        Column::Str { .. } => unreachable!("numeric kernel on string column"),
    }
}

/// Drives a numeric kernel block by block: each [`ZONE_BLOCK_ROWS`]-row
/// block is either decided wholesale from its zone entry or scanned.
/// Blocks are 16 words, so whole-block verdicts write words directly.
fn numeric_blocks(
    len: usize,
    zone: Option<&ZoneMap>,
    stats: &mut KernelStats,
    verdict: impl Fn(&crate::column::Zone) -> BlockVerdict,
    scan: impl Fn(usize, usize, &mut [u64]),
) -> SelectionVector {
    let mut words = vec![0u64; SelectionVector::word_count(len)];
    let blocks = len.div_ceil(ZONE_BLOCK_ROWS);
    for b in 0..blocks {
        let start = b * ZONE_BLOCK_ROWS;
        let end = (start + ZONE_BLOCK_ROWS).min(len);
        let decided = zone.and_then(|z| z.block(b)).map(&verdict);
        match decided {
            Some(BlockVerdict::AllFalse) => {
                // Words are already zero.
                stats.blocks_pruned += 1;
            }
            Some(BlockVerdict::AllTrue) => {
                for row in (start..end).step_by(64) {
                    let n = (end - row).min(64);
                    words[row / 64] = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
                }
                stats.blocks_pruned += 1;
            }
            Some(BlockVerdict::Scan) | None => {
                scan(start, end, &mut words);
                stats.blocks_scanned += 1;
            }
        }
    }
    SelectionVector::from_words(words, len)
}

/// Evaluates `test` over `data` (rows `offset..offset + data.len()`,
/// with `offset` a multiple of 64), packing verdicts into `words`.
fn fill_mask<T: Copy>(data: &[T], offset: usize, words: &mut [u64], test: impl Fn(T) -> bool) {
    debug_assert_eq!(offset % 64, 0);
    let first_word = offset / 64;
    for (wi, chunk) in data.chunks(64).enumerate() {
        let mut w = 0u64;
        for (j, &x) in chunk.iter().enumerate() {
            w |= (test(x) as u64) << j;
        }
        words[first_word + wi] = w;
    }
}

/// Fused filter+bin+count: bins the selected rows of `col` straight off
/// the raw slice, without materializing row ids. `zone` (when given)
/// skips blocks whose value range lies entirely outside the bin domain.
///
/// Exactly equivalent to the unfused
/// `for row in sel { bins.bin_of(col.f64_at(row)) }` loop.
pub fn fused_filter_bin(
    col: &Column,
    zone: Option<&ZoneMap>,
    sel: &SelectionVector,
    bins: &BinSpec,
    opts: &KernelOptions,
    stats: &mut KernelStats,
) -> Histogram {
    let mut hist = Histogram::zeros(bins.bucket_count());
    fused_filter_bin_range(col, zone, sel, bins, opts, stats, 0, col.len(), &mut hist);
    hist
}

/// Range-restricted fused filter+bin+count over rows `start..end`,
/// accumulating into `hist`. The block-wise [`crate::parallel`] path
/// hands disjoint ranges to worker threads and merges the partials in
/// deterministic order, so results are identical at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn fused_filter_bin_range(
    col: &Column,
    zone: Option<&ZoneMap>,
    sel: &SelectionVector,
    bins: &BinSpec,
    opts: &KernelOptions,
    stats: &mut KernelStats,
    start: usize,
    end: usize,
    hist: &mut Histogram,
) {
    debug_assert_eq!(start % ZONE_BLOCK_ROWS, 0, "ranges start on block bounds");
    let len = col.len().min(end);
    let words = sel.words();
    let mut block = start / ZONE_BLOCK_ROWS;
    let mut row = start;
    while row < len {
        let block_end = (row + ZONE_BLOCK_ROWS).min(len);
        // Zone skip: a block entirely outside the bin domain contributes
        // nothing (NaN and out-of-domain values bin to no bucket).
        let prunable = opts.zone_prune
            && zone
                .and_then(|z| z.block(block))
                .is_some_and(|z| z.max < bins.min || z.min > bins.max);
        if prunable {
            stats.blocks_pruned += 1;
            row = block_end;
            block += 1;
            continue;
        }
        // Selection skip: nothing selected in this block.
        let w_lo = row / 64;
        let w_hi = block_end.div_ceil(64).min(words.len());
        if words[w_lo..w_hi].iter().all(|&w| w == 0) {
            stats.blocks_pruned += 1;
            row = block_end;
            block += 1;
            continue;
        }
        stats.blocks_scanned += 1;
        match col {
            Column::Float(data) => bin_block(&data[row..block_end], row, words, bins, hist, |x| x),
            Column::Int(data) => {
                bin_block(&data[row..block_end], row, words, bins, hist, |x| x as f64)
            }
            Column::Str { .. } => {}
        }
        row = block_end;
        block += 1;
    }
}

/// Bins the selected rows of one block. `offset` is the row id of
/// `data[0]` and is a multiple of 64.
fn bin_block<T: Copy>(
    data: &[T],
    offset: usize,
    words: &[u64],
    bins: &BinSpec,
    hist: &mut Histogram,
    to_f64: impl Fn(T) -> f64,
) {
    let first_word = offset / 64;
    for (wi, chunk) in data.chunks(64).enumerate() {
        let w = words[first_word + wi];
        if w == 0 {
            continue;
        }
        if w == u64::MAX && chunk.len() == 64 {
            // Dense word: no bit tests at all.
            for &x in chunk {
                if let Some(b) = bins.bin_of(to_f64(x)) {
                    hist.bump(b);
                }
            }
        } else {
            let mut bits = BitIter { word: w };
            for j in &mut bits {
                if j >= chunk.len() {
                    break;
                }
                if let Some(b) = bins.bin_of(to_f64(chunk[j])) {
                    hist.bump(b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::table::TableBuilder;

    fn table(n: usize) -> Table {
        TableBuilder::new("t")
            .column("x", ColumnBuilder::float((0..n).map(|i| i as f64)))
            .column("k", ColumnBuilder::int((0..n).map(|i| i as i64 % 7)))
            .column(
                "s",
                ColumnBuilder::str((0..n).map(|i| ["a", "b", "c"][i % 3])),
            )
            .build()
            .unwrap()
    }

    /// The ground truth: row-at-a-time `Predicate::matches`.
    fn naive(t: &Table, p: &Predicate) -> Vec<usize> {
        (0..t.rows())
            .filter(|&r| p.matches(t, r).unwrap())
            .collect()
    }

    #[test]
    fn selection_vector_basics() {
        let sv = SelectionVector::all(130);
        assert_eq!(sv.count(), 130);
        assert!(sv.is_all());
        let none = SelectionVector::none(130);
        assert_eq!(none.count(), 0);
        assert!(!none.contains(5));

        let sv = SelectionVector::from_words(vec![0b1011, 0, u64::MAX], 130);
        assert_eq!(sv.count(), 3 + 2);
        assert!(sv.contains(0) && sv.contains(1) && !sv.contains(2) && sv.contains(3));
        assert_eq!(sv.to_row_ids(), vec![0, 1, 3, 128, 129]);
    }

    #[test]
    fn runs_decode_boundaries() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 1023, 1024, 1025] {
            let all = SelectionVector::all(len);
            let expect: Vec<(usize, usize)> = if len == 0 { vec![] } else { vec![(0, len)] };
            assert_eq!(all.runs(), expect, "all({len})");
            assert_eq!(SelectionVector::none(len).runs(), vec![]);
        }
        // Alternating + cross-word run.
        let mut words = vec![0u64; 3];
        for r in [0usize, 2, 3, 4, 62, 63, 64, 65, 130] {
            words[r / 64] |= 1 << (r % 64);
        }
        let sv = SelectionVector::from_words(words, 131);
        assert_eq!(sv.runs(), vec![(0, 1), (2, 5), (62, 66), (130, 131)]);
        let total: usize = sv.runs().iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, sv.count());
    }

    #[test]
    fn negate_respects_tail() {
        let mut sv = SelectionVector::none(70);
        sv.negate();
        assert_eq!(sv.count(), 70);
        assert_eq!(sv.to_row_ids().len(), 70);
        sv.negate();
        assert_eq!(sv.count(), 0);
    }

    #[test]
    fn kernels_match_naive_on_block_boundaries() {
        for n in [0usize, 1, 63, 64, 65, 1023, 1024, 1025, 2500] {
            let t = table(n);
            let preds = [
                Predicate::True,
                Predicate::between("x", 10.0, 1030.0),
                Predicate::between("x", -5.0, -1.0),
                Predicate::eq("s", "b"),
                Predicate::eq("k", 3i64),
                Predicate::and([
                    Predicate::between("x", 0.0, 2000.0),
                    Predicate::between("k", 1.0, 5.0),
                ]),
                Predicate::Or(vec![Predicate::eq("s", "a"), Predicate::ge("x", 1020.0)]),
                Predicate::Not(Box::new(Predicate::between("x", 100.0, 1100.0))),
            ];
            for p in &preds {
                let sv = select_vector(&t, p).unwrap();
                assert_eq!(sv.to_row_ids(), naive(&t, p), "n={n} pred={p}");
            }
        }
    }

    #[test]
    fn cross_type_and_nan_literals() {
        let t = table(100);
        // Numeric column vs string literal: false except Ne.
        let p = Predicate::Cmp {
            column: "x".into(),
            op: CmpOp::Eq,
            value: Value::from("zzz"),
        };
        assert_eq!(select_vector(&t, &p).unwrap().count(), 0);
        let p = Predicate::Cmp {
            column: "x".into(),
            op: CmpOp::Ne,
            value: Value::from("zzz"),
        };
        assert_eq!(select_vector(&t, &p).unwrap().count(), 100);
        // NaN literal: false except Ne.
        for (op, expect) in [(CmpOp::Eq, 0usize), (CmpOp::Lt, 0), (CmpOp::Ne, 100)] {
            let p = Predicate::Cmp {
                column: "x".into(),
                op,
                value: Value::Float(f64::NAN),
            };
            let sv = select_vector(&t, &p).unwrap();
            assert_eq!(sv.count(), expect, "op {op}");
            assert_eq!(sv.to_row_ids(), naive(&t, &p), "op {op}");
        }
    }

    #[test]
    fn nan_data_fails_ranges_and_matches_ne() {
        let t =
            TableBuilder::new("t")
                .column(
                    "x",
                    ColumnBuilder::float((0..200).map(|i| {
                        if i % 3 == 0 {
                            f64::NAN
                        } else {
                            i as f64
                        }
                    })),
                )
                .build()
                .unwrap();
        for p in [
            Predicate::between("x", 0.0, 150.0),
            Predicate::ge("x", 50.0),
            Predicate::Cmp {
                column: "x".into(),
                op: CmpOp::Ne,
                value: Value::Float(10.0),
            },
        ] {
            let sv = select_vector(&t, &p).unwrap();
            assert_eq!(sv.to_row_ids(), naive(&t, &p), "pred={p}");
        }
    }

    #[test]
    fn zone_pruning_is_invisible() {
        let t = table(5000);
        let preds = [
            Predicate::between("x", 1000.0, 3000.0),
            Predicate::ge("x", 4999.0),
            Predicate::le("x", 0.0),
            Predicate::eq("k", 6i64),
        ];
        for p in &preds {
            let mut s_on = KernelStats::default();
            let mut s_off = KernelStats::default();
            let on =
                select_vector_with(&t, p, &KernelOptions { zone_prune: true }, &mut s_on).unwrap();
            let off = select_vector_with(&t, p, &KernelOptions { zone_prune: false }, &mut s_off)
                .unwrap();
            assert_eq!(on, off, "pred={p}");
        }
        // The sorted column really does prune.
        let mut stats = KernelStats::default();
        let p = Predicate::between("x", 0.0, 500.0);
        select_vector_with(&t, &p, &KernelOptions::default(), &mut stats).unwrap();
        assert!(stats.blocks_pruned > 0, "sorted column should prune blocks");
    }

    #[test]
    fn fused_bin_equals_unfused() {
        for n in [0usize, 1, 1023, 1024, 1025, 4000] {
            let t = table(n);
            let bins = BinSpec::new("x", 0.0, 2000.0, 40);
            let pred = Predicate::between("k", 1.0, 4.0);
            let sel = select_vector(&t, &pred).unwrap();
            let col = t.column("x").unwrap();
            let idx = t.column_index("x").unwrap();
            let mut stats = KernelStats::default();
            let fused = fused_filter_bin(
                col,
                t.zone_map_at(idx),
                &sel,
                &bins,
                &KernelOptions::default(),
                &mut stats,
            );
            let mut unfused = Histogram::zeros(bins.bucket_count());
            for row in sel.iter() {
                if let Some(b) = col.f64_at(row).and_then(|x| bins.bin_of(x)) {
                    unfused.bump(b);
                }
            }
            assert_eq!(fused, unfused, "n={n}");
        }
    }

    #[test]
    fn validation_still_errors_under_or() {
        // Row-at-a-time Or short-circuits and can miss an unknown column;
        // the vectorized path always validates.
        let t = table(10);
        let p = Predicate::Or(vec![Predicate::True, Predicate::between("zzz", 0.0, 1.0)]);
        assert!(select_vector(&t, &p).is_err());
    }
}
