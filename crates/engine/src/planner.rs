//! Cost-based physical planner over the vectorized kernels.
//!
//! [`crate::exec`] hard-codes one physical strategy per logical
//! [`Query`] shape. This module *chooses* instead, using the statistics
//! the engine already maintains — [`TableStats`] min/max/distinct for
//! selectivity estimates, zone-map block geometry for block-count
//! estimates — and the virtual cost model's invariants as the contract:
//!
//! - **Predicate reordering**: conjuncts of an `AND` filter are
//!   evaluated most-selective-first (bitmask intersection commutes, so
//!   results and priced footprints are unchanged by order).
//! - **Fused vs. unfused histograms**: when the filter is estimated to
//!   keep at least one zone block's worth of rows, the block-wise fused
//!   filter+bin kernel wins; for needle-selective filters the planner
//!   bins the few selected rows row-at-a-time off the selection mask.
//! - **Parallel vs. serial histograms**: tables larger than one
//!   parallel chunk ([`PAR_CHUNK_ROWS`]) are eligible for the chunked
//!   multi-threaded bin path. Eligibility depends only on table shape,
//!   never on the thread count, so plan text is thread-invariant.
//! - **Join build-side selection**: the hash table is built over
//!   whichever side is smaller — the paginated left page (the
//!   [`crate::exec`] default) or the whole right table when the page is
//!   larger than it.
//!
//! Two hard guarantees, enforced by the planner-equivalence simtest
//! oracle and the planner differential tests:
//!
//! 1. **Result identity**: planned execution is byte-identical to
//!    [`crate::exec::run_query`] (and therefore to the row-at-a-time
//!    reference interpreter) for every query, including errors.
//! 2. **Footprint identity**: every [`QueryFootprint`] counter —
//!    priced *and* unpriced — matches the unplanned path, so virtual
//!    costs and the paper's latency regimes are unaffected.
//!
//! Plans are deterministic and explainable: [`Plan::explain`] renders a
//! stable text tree (chosen kernel, predicate order, estimated block
//! counts) that is byte-identical across runs and thread counts, and
//! [`Plan::explain_analyzed`] appends the actual counters after a run.

use std::collections::HashMap;

use crossbeam::channel;

use crate::backend::Database;
use crate::column::{ZoneMap, ZONE_BLOCK_ROWS};
use crate::cost::QueryFootprint;
use crate::error::{EngineError, EngineResult};
use crate::exec;
use crate::kernels::{self, KernelOptions, KernelStats, SelectionVector};
use crate::parallel::PAR_CHUNK_ROWS;
use crate::predicate::{CmpOp, Predicate};
use crate::query::{BinSpec, Query};
use crate::result::{Histogram, ResultSet};
use crate::stats::TableStats;
use crate::table::Table;

/// Which side of a join feeds the hash-table build phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSide {
    /// Build over the paginated left page, probe the right table
    /// (the [`crate::exec::run_join`] strategy).
    Left,
    /// Build over the whole right table, probe the left page — chosen
    /// when the page is larger than the right table.
    Right,
}

/// Physical strategy for the histogram bin phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramPath {
    /// Block-wise fused filter+bin kernel.
    Fused,
    /// Row-at-a-time binning off the selection mask — cheaper when the
    /// filter keeps fewer rows than one zone block.
    Unfused,
}

/// A filter predicate with a planned evaluation order.
#[derive(Debug, Clone)]
pub struct PlannedPredicate {
    /// The predicate in planned (most-selective-first) conjunct order.
    pub predicate: Predicate,
    /// `(rendered conjunct, estimated selectivity)` in planned order.
    pub conjuncts: Vec<(String, f64)>,
    /// Estimated overall selectivity in `[0, 1]`.
    pub selectivity: f64,
    /// Whether planning changed the source conjunct order.
    pub reordered: bool,
}

/// The physical operator the planner chose for one query shape.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Fused filter+count: selection popcount.
    Count {
        /// Planned filter.
        pred: PlannedPredicate,
    },
    /// Filtered, projected, paginated scan.
    Scan {
        /// Planned filter.
        pred: PlannedPredicate,
        /// `TRUE` filter: the scan stops after `offset + limit` rows.
        early_stop: bool,
    },
    /// Filtered equi-width histogram.
    Histogram {
        /// Planned filter.
        pred: PlannedPredicate,
        /// Fused or unfused bin phase.
        path: HistogramPath,
        /// Eligible for the chunked parallel bin path (decided from
        /// table shape only, so plans are thread-invariant).
        parallel: bool,
        /// Estimated rows surviving the filter.
        est_rows: u64,
    },
    /// Paginated hash join.
    Join {
        /// Which side builds the hash table.
        build: BuildSide,
        /// Left-page rows (the canonical `build_rows` footprint counter,
        /// whatever side physically builds).
        page_rows: u64,
        /// Right-table rows (the canonical `probe_rows` counter).
        right_rows: u64,
    },
}

/// Result of executing a [`Plan`].
#[derive(Debug, Clone)]
pub struct PlannedExecution {
    /// The query answer, byte-identical to the unplanned path.
    pub result: ResultSet,
    /// Work counters, byte-identical to the unplanned path.
    pub footprint: QueryFootprint,
}

/// A deterministic physical plan for one logical query.
#[derive(Debug, Clone)]
pub struct Plan {
    query: Query,
    node: PlanNode,
    table_rows: u64,
    est_blocks_total: u64,
    est_blocks_scanned: u64,
}

/// Plans `query` against the catalog and statistics in `db`.
///
/// Fails with the same error [`crate::exec::run_query`] would raise for
/// an unknown table; all other validation errors surface at
/// [`Plan::execute`], in the executor's order, so error behavior is
/// byte-compatible with the unplanned path.
pub fn plan(db: &Database, query: &Query) -> EngineResult<Plan> {
    match query {
        Query::Count { table, filter } => {
            let t = db.table(table)?;
            let pred = plan_predicate(filter, t.stats());
            Ok(Plan::new(
                query.clone(),
                t.rows(),
                pred.selectivity,
                PlanNode::Count { pred },
            ))
        }
        Query::Histogram { table, filter, .. } => {
            let t = db.table(table)?;
            let pred = plan_predicate(filter, t.stats());
            let est_rows = est_rows(t.rows(), pred.selectivity);
            let path = if est_rows >= ZONE_BLOCK_ROWS as u64 {
                HistogramPath::Fused
            } else {
                HistogramPath::Unfused
            };
            let parallel = path == HistogramPath::Fused && t.rows() > PAR_CHUNK_ROWS;
            let sel = pred.selectivity;
            Ok(Plan::new(
                query.clone(),
                t.rows(),
                sel,
                PlanNode::Histogram {
                    pred,
                    path,
                    parallel,
                    est_rows,
                },
            ))
        }
        Query::Select(spec) => {
            let t = db.table(&spec.table)?;
            let pred = plan_predicate(&spec.filter, t.stats());
            let early_stop = matches!(spec.filter, Predicate::True);
            let sel = pred.selectivity;
            Ok(Plan::new(
                query.clone(),
                t.rows(),
                sel,
                PlanNode::Scan { pred, early_stop },
            ))
        }
        Query::Join(spec) => {
            let left = db.table(&spec.left)?;
            let right = db.table(&spec.right)?;
            let end = match spec.limit {
                Some(l) => (spec.offset + l).min(left.rows()),
                None => left.rows(),
            };
            let page_rows = (end - spec.offset.min(end)) as u64;
            let right_rows = right.rows() as u64;
            let build = if right_rows < page_rows {
                BuildSide::Right
            } else {
                BuildSide::Left
            };
            Ok(Plan::new(
                query.clone(),
                right.rows(),
                1.0,
                PlanNode::Join {
                    build,
                    page_rows,
                    right_rows,
                },
            ))
        }
    }
}

fn est_rows(rows: usize, selectivity: f64) -> u64 {
    (rows as f64 * selectivity).round() as u64
}

impl Plan {
    fn new(query: Query, rows: usize, selectivity: f64, node: PlanNode) -> Plan {
        let total = rows.div_ceil(ZONE_BLOCK_ROWS) as u64;
        let scanned = (total as f64 * selectivity).ceil().min(total as f64) as u64;
        Plan {
            query,
            node,
            table_rows: rows as u64,
            est_blocks_total: total,
            est_blocks_scanned: scanned,
        }
    }

    /// The logical query this plan executes.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The chosen physical operator.
    pub fn node(&self) -> &PlanNode {
        &self.node
    }

    /// Executes the plan single-threaded.
    pub fn execute(&self, db: &Database) -> EngineResult<PlannedExecution> {
        self.execute_with_threads(db, 1)
    }

    /// Executes the plan, using up to `threads` worker threads when the
    /// plan is parallel-eligible. Results and footprints are identical
    /// at every thread count.
    pub fn execute_with_threads(
        &self,
        db: &Database,
        threads: usize,
    ) -> EngineResult<PlannedExecution> {
        match (&self.query, &self.node) {
            (Query::Count { table, filter }, PlanNode::Count { pred }) => {
                let t = db.table(table)?;
                run_planned_count(&t, filter, pred)
            }
            (
                Query::Histogram {
                    table,
                    bins,
                    filter,
                },
                PlanNode::Histogram {
                    pred,
                    path,
                    parallel,
                    ..
                },
            ) => {
                let t = db.table(table)?;
                run_planned_histogram(&t, bins, filter, pred, *path, *parallel, threads)
            }
            (Query::Select(spec), PlanNode::Scan { pred, .. }) => {
                let t = db.table(&spec.table)?;
                run_planned_select(&t, spec, pred)
            }
            (Query::Join(spec), PlanNode::Join { build, .. }) => {
                let left = db.table(&spec.left)?;
                let right = db.table(&spec.right)?;
                match build {
                    BuildSide::Left => {
                        let (result, footprint) = exec::run_join(&left, &right, spec)?;
                        Ok(PlannedExecution { result, footprint })
                    }
                    BuildSide::Right => run_join_build_right(&left, &right, spec),
                }
            }
            // Plan::new pairs each query shape with its own node; the
            // shapes cannot drift apart afterwards.
            _ => unreachable!("plan node does not match query shape"),
        }
    }

    /// Renders the plan as a stable text tree: chosen kernel, predicate
    /// order with per-conjunct selectivity estimates, and estimated
    /// block counts. Byte-identical across runs and thread counts.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        match &self.node {
            PlanNode::Count { pred } => {
                out.push_str(&format!(
                    "Count(table={} rows={})\n",
                    self.query.table(),
                    self.table_rows
                ));
                explain_predicate(&mut out, pred, self.table_rows);
                out.push_str("  kernel: filter+count (selection popcount)\n");
            }
            PlanNode::Histogram {
                pred,
                path,
                parallel,
                est_rows,
            } => {
                let Query::Histogram { bins, .. } = &self.query else {
                    unreachable!("histogram node carries a histogram query")
                };
                out.push_str(&format!(
                    "Histogram(table={} rows={})\n",
                    self.query.table(),
                    self.table_rows
                ));
                out.push_str(&format!(
                    "  bins: {} over [{}, {}] n={}\n",
                    bins.column, bins.min, bins.max, bins.bins
                ));
                explain_predicate(&mut out, pred, self.table_rows);
                match path {
                    HistogramPath::Fused => out.push_str(&format!(
                        "  kernel: fused filter+bin (est_rows={} >= block {})\n",
                        est_rows, ZONE_BLOCK_ROWS
                    )),
                    HistogramPath::Unfused => out.push_str(&format!(
                        "  kernel: unfused row-at-a-time bin (est_rows={} < block {})\n",
                        est_rows, ZONE_BLOCK_ROWS
                    )),
                }
                if *parallel {
                    out.push_str(&format!(
                        "  threads: parallel-eligible chunks={} (rows > {})\n",
                        self.table_rows.div_ceil(PAR_CHUNK_ROWS as u64),
                        PAR_CHUNK_ROWS
                    ));
                } else {
                    out.push_str(&format!("  threads: serial (rows <= {})\n", PAR_CHUNK_ROWS));
                }
            }
            PlanNode::Scan { pred, early_stop } => {
                let Query::Select(spec) = &self.query else {
                    unreachable!("scan node carries a select query")
                };
                out.push_str(&format!(
                    "Scan(table={} rows={} limit={} offset={})\n",
                    spec.table,
                    self.table_rows,
                    spec.limit
                        .map_or_else(|| "ALL".to_string(), |l| l.to_string()),
                    spec.offset
                ));
                explain_predicate(&mut out, pred, self.table_rows);
                if *early_stop {
                    out.push_str("  kernel: early-stop scan (TRUE filter ends at offset+limit)\n");
                } else {
                    out.push_str("  kernel: filtered scan (selection mask, page materialized)\n");
                }
            }
            PlanNode::Join {
                build,
                page_rows,
                right_rows,
            } => {
                let Query::Join(spec) = &self.query else {
                    unreachable!("join node carries a join query")
                };
                out.push_str(&format!(
                    "Join(left={} right={} on {} = {})\n",
                    spec.left, spec.right, spec.left_key, spec.right_key
                ));
                out.push_str(&format!(
                    "  page: left rows={} right rows={}\n",
                    page_rows, right_rows
                ));
                match build {
                    BuildSide::Left => out.push_str(&format!(
                        "  build side: left page (page {} <= right {})\n",
                        page_rows, right_rows
                    )),
                    BuildSide::Right => out.push_str(&format!(
                        "  build side: right table (right {} < page {})\n",
                        right_rows, page_rows
                    )),
                }
                out.push_str("  kernel: hash build + zone-pruned probe\n");
            }
        }
        out.push_str(&format!(
            "  est blocks: total={} scan={} prune={}\n",
            self.est_blocks_total,
            self.est_blocks_scanned,
            self.est_blocks_total - self.est_blocks_scanned
        ));
        out
    }

    /// [`Plan::explain`] plus the actual counters from a finished run —
    /// the "estimated vs. actual" view.
    pub fn explain_analyzed(&self, footprint: &QueryFootprint) -> String {
        let mut out = self.explain();
        out.push_str(&format!(
            "  actual: rows_matched={} blocks_scanned={} blocks_pruned={}\n",
            footprint.rows_matched, footprint.blocks_scanned, footprint.blocks_pruned
        ));
        out
    }
}

fn explain_predicate(out: &mut String, pred: &PlannedPredicate, rows: u64) {
    if pred.conjuncts.is_empty() {
        out.push_str("  filter: TRUE (no conditions)\n");
        return;
    }
    out.push_str(&format!(
        "  filter: est_sel={:.4} est_rows={} conjuncts={} reordered={}\n",
        pred.selectivity,
        est_rows(rows as usize, pred.selectivity),
        pred.conjuncts.len(),
        if pred.reordered { "yes" } else { "no" }
    ));
    for (i, (text, sel)) in pred.conjuncts.iter().enumerate() {
        out.push_str(&format!("    [{}] est_sel={:.4}  {}\n", i + 1, sel, text));
    }
}

// ---------------------------------------------------------------------------
// Selectivity estimation and predicate planning
// ---------------------------------------------------------------------------

/// Estimated fraction of rows `pred` keeps, from table statistics under
/// a uniform-distribution assumption. Always in `[0, 1]`; unknown
/// columns and shapes fall back to `1.0` (the conservative choice).
fn estimate_selectivity(pred: &Predicate, stats: &TableStats) -> f64 {
    match pred {
        Predicate::True => 1.0,
        Predicate::Between { column, lo, hi } => stats.range_selectivity(column, *lo, *hi),
        Predicate::Cmp { column, op, value } => {
            let eq_sel = stats.column(column).map_or(1.0, |c| {
                if c.distinct > 0 {
                    1.0 / c.distinct as f64
                } else {
                    1.0
                }
            });
            match (op, value.as_f64()) {
                (CmpOp::Eq, _) => eq_sel,
                (CmpOp::Ne, _) => 1.0 - eq_sel,
                (CmpOp::Lt | CmpOp::Le, Some(v)) => {
                    stats.range_selectivity(column, f64::NEG_INFINITY, v)
                }
                (CmpOp::Gt | CmpOp::Ge, Some(v)) => {
                    stats.range_selectivity(column, v, f64::INFINITY)
                }
                _ => 1.0,
            }
        }
        Predicate::And(ps) => ps
            .iter()
            .map(|p| estimate_selectivity(p, stats))
            .product::<f64>()
            .clamp(0.0, 1.0),
        Predicate::Or(ps) => ps
            .iter()
            .map(|p| estimate_selectivity(p, stats))
            .sum::<f64>()
            .clamp(0.0, 1.0),
        Predicate::Not(p) => (1.0 - estimate_selectivity(p, stats)).clamp(0.0, 1.0),
    }
}

/// Orders the conjuncts of an `AND` most-selective-first. Stable: ties
/// keep source order, so plans are deterministic. Reordering is free —
/// conjunct kernels are evaluated independently and intersected, so
/// both the selection mask and every footprint counter are
/// order-invariant.
fn plan_predicate(filter: &Predicate, stats: &TableStats) -> PlannedPredicate {
    match filter {
        Predicate::True => PlannedPredicate {
            predicate: Predicate::True,
            conjuncts: Vec::new(),
            selectivity: 1.0,
            reordered: false,
        },
        Predicate::And(ps) => {
            let mut indexed: Vec<(usize, f64)> = ps
                .iter()
                .enumerate()
                .map(|(i, p)| (i, estimate_selectivity(p, stats)))
                .collect();
            indexed.sort_by(|a, b| a.1.total_cmp(&b.1));
            let reordered = indexed
                .iter()
                .enumerate()
                .any(|(pos, (src, _))| pos != *src);
            let conjuncts = indexed
                .iter()
                .map(|&(src, sel)| (ps[src].to_string(), sel))
                .collect();
            let selectivity = estimate_selectivity(filter, stats);
            PlannedPredicate {
                predicate: Predicate::And(
                    indexed.iter().map(|&(src, _)| ps[src].clone()).collect(),
                ),
                conjuncts,
                selectivity,
                reordered,
            }
        }
        other => {
            let selectivity = estimate_selectivity(other, stats);
            PlannedPredicate {
                predicate: other.clone(),
                conjuncts: vec![(other.to_string(), selectivity)],
                selectivity,
                reordered: false,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Planned physical execution
// ---------------------------------------------------------------------------

fn run_planned_count(
    table: &Table,
    original: &Predicate,
    pred: &PlannedPredicate,
) -> EngineResult<PlannedExecution> {
    // Validate the *original* predicate first so error identity (which
    // unknown column is reported) matches the unplanned executor.
    original.validate(table)?;
    let opts = KernelOptions::default();
    let mut stats = KernelStats::default();
    let selected = kernels::select_vector_with(table, &pred.predicate, &opts, &mut stats)?;
    let footprint = QueryFootprint {
        rows_scanned: table.rows() as u64,
        rows_matched: selected.count() as u64,
        rows_aggregated: selected.count() as u64,
        groups: 1,
        rows_output: 1,
        predicate_evals: table.rows() as u64 * original.condition_count() as u64,
        blocks_pruned: stats.blocks_pruned,
        blocks_scanned: stats.blocks_scanned,
        ..QueryFootprint::default()
    };
    Ok(PlannedExecution {
        result: ResultSet::Count(selected.count() as u64),
        footprint,
    })
}

fn run_planned_select(
    table: &Table,
    spec: &crate::query::SelectSpec,
    pred: &PlannedPredicate,
) -> EngineResult<PlannedExecution> {
    spec.filter.validate(table)?;
    let mut footprint = QueryFootprint::default();
    let selected: Vec<usize> = match &spec.filter {
        Predicate::True => {
            let end = match spec.limit {
                Some(l) => (spec.offset + l).min(table.rows()),
                None => table.rows(),
            };
            footprint.rows_scanned = end as u64;
            footprint.rows_matched = end as u64;
            (spec.offset.min(end)..end).collect()
        }
        original => {
            let opts = KernelOptions::default();
            let mut stats = KernelStats::default();
            let sel = kernels::select_vector_with(table, &pred.predicate, &opts, &mut stats)?;
            footprint.rows_scanned = table.rows() as u64;
            footprint.rows_matched = sel.count() as u64;
            footprint.predicate_evals = footprint.rows_scanned * original.condition_count() as u64;
            footprint.blocks_pruned = stats.blocks_pruned;
            footprint.blocks_scanned = stats.blocks_scanned;
            let take = match spec.limit {
                Some(l) => l.min(sel.count().saturating_sub(spec.offset)),
                None => sel.count().saturating_sub(spec.offset),
            };
            sel.iter().skip(spec.offset).take(take).collect()
        }
    };
    let rows = exec::project_rows(table, &selected, &spec.projection)?;
    footprint.rows_output = rows.len() as u64;
    Ok(PlannedExecution {
        result: ResultSet::Rows(rows),
        footprint,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_planned_histogram(
    table: &Table,
    bins: &BinSpec,
    original: &Predicate,
    pred: &PlannedPredicate,
    path: HistogramPath,
    parallel: bool,
    threads: usize,
) -> EngineResult<PlannedExecution> {
    // Validation in run_histogram's order, for error identity.
    if bins.bins == 0 {
        return Err(EngineError::InvalidBinSpec("zero bins".into()));
    }
    if bins.width() <= 0.0 || bins.width().is_nan() {
        return Err(EngineError::InvalidBinSpec(format!(
            "non-positive width over [{}, {}]",
            bins.min, bins.max
        )));
    }
    original.validate(table)?;
    let bin_idx = table.column_index(&bins.column)?;
    let col = table.column_at(bin_idx);
    if !col.data_type().is_numeric() {
        return Err(EngineError::TypeMismatch {
            column: bins.column.to_string(),
            expected: "numeric column for binning",
        });
    }

    let opts = KernelOptions::default();
    let mut stats = KernelStats::default();
    let selected = kernels::select_vector_with(table, &pred.predicate, &opts, &mut stats)?;
    let zone = table.zone_map_at(bin_idx);

    let hist = match path {
        HistogramPath::Fused if parallel && threads > 1 => {
            // Chunked parallel bin phase; bin-phase block counters come
            // from the serial accounting pass below so the footprint is
            // identical at every thread count.
            let h = parallel_bin_phase(col, zone, &selected, bins, table.rows(), threads)?;
            bin_phase_stats(table.rows(), zone, &selected, bins, &mut stats);
            h
        }
        HistogramPath::Fused => {
            kernels::fused_filter_bin(col, zone, &selected, bins, &opts, &mut stats)
        }
        HistogramPath::Unfused => {
            // Row-at-a-time off the mask: exactly the loop the fused
            // kernel is differential-tested against.
            let mut h = Histogram::zeros(bins.bucket_count());
            for row in selected.iter() {
                if let Some(b) = col.f64_at(row).and_then(|x| bins.bin_of(x)) {
                    h.bump(b);
                }
            }
            bin_phase_stats(table.rows(), zone, &selected, bins, &mut stats);
            h
        }
    };

    let footprint = QueryFootprint {
        rows_scanned: table.rows() as u64,
        rows_matched: selected.count() as u64,
        rows_aggregated: selected.count() as u64,
        groups: hist.bins() as u64,
        rows_output: hist.bins() as u64,
        predicate_evals: table.rows() as u64 * original.condition_count() as u64,
        blocks_pruned: stats.blocks_pruned,
        blocks_scanned: stats.blocks_scanned,
        ..QueryFootprint::default()
    };
    Ok(PlannedExecution {
        result: ResultSet::Histogram(hist),
        footprint,
    })
}

/// Replays the fused kernel's per-block prune/scan decisions without
/// binning, so unfused and parallel paths report the same bin-phase
/// block counters as the serial fused kernel.
fn bin_phase_stats(
    len: usize,
    zone: Option<&ZoneMap>,
    sel: &SelectionVector,
    bins: &BinSpec,
    stats: &mut KernelStats,
) {
    let words = sel.words();
    let mut block = 0usize;
    let mut row = 0usize;
    while row < len {
        let block_end = (row + ZONE_BLOCK_ROWS).min(len);
        let prunable = zone
            .and_then(|z| z.block(block))
            .is_some_and(|z| z.max < bins.min || z.min > bins.max);
        if prunable {
            stats.blocks_pruned += 1;
        } else {
            let w_lo = row / 64;
            let w_hi = block_end.div_ceil(64).min(words.len());
            if words[w_lo..w_hi].iter().all(|&w| w == 0) {
                stats.blocks_pruned += 1;
            } else {
                stats.blocks_scanned += 1;
            }
        }
        row = block_end;
        block += 1;
    }
}

/// Bins fixed-size chunks concurrently (same chunking as
/// [`crate::parallel::parallel_histogram`]) over an already-computed
/// selection, merging partials in chunk order.
fn parallel_bin_phase(
    col: &crate::column::Column,
    zone: Option<&ZoneMap>,
    sel: &SelectionVector,
    bins: &BinSpec,
    rows: usize,
    threads: usize,
) -> EngineResult<Histogram> {
    let n_chunks = rows.div_ceil(PAR_CHUNK_ROWS);
    let (task_tx, task_rx) = channel::unbounded::<usize>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, Histogram)>();
    for c in 0..n_chunks {
        if task_tx.send(c).is_err() {
            return Err(EngineError::SchedulerClosed);
        }
    }
    drop(task_tx);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n_chunks) {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move |_| {
                let opts = KernelOptions::default();
                let mut stats = KernelStats::default();
                while let Ok(c) = task_rx.recv() {
                    let start = c * PAR_CHUNK_ROWS;
                    let end = (start + PAR_CHUNK_ROWS).min(rows);
                    let mut partial = Histogram::zeros(bins.bucket_count());
                    kernels::fused_filter_bin_range(
                        col,
                        zone,
                        sel,
                        bins,
                        &opts,
                        &mut stats,
                        start,
                        end,
                        &mut partial,
                    );
                    if result_tx.send((c, partial)).is_err() {
                        break;
                    }
                }
            });
        }
    })
    .map_err(|_| EngineError::SchedulerClosed)?;
    drop(result_tx);

    let mut slots: Vec<Option<Histogram>> = (0..n_chunks).map(|_| None).collect();
    while let Ok((c, partial)) = result_rx.recv() {
        slots[c] = Some(partial);
    }
    let mut counts = vec![0u64; bins.bucket_count()];
    for slot in slots {
        let partial = slot.ok_or(EngineError::SchedulerClosed)?;
        for (acc, c) in counts.iter_mut().zip(partial.counts()) {
            *acc += c;
        }
    }
    Ok(Histogram::from_counts(counts))
}

/// Build-on-right hash join: hashes the whole right table and probes
/// with the left page in ascending row order, which yields match pairs
/// in exactly the `(left asc, right asc)` order the build-left path
/// produces after its stable sort. The footprint keeps the canonical
/// counters (`build_rows` = left page, `probe_rows` = right rows) so
/// virtual costs do not depend on the physical build side, and the
/// block counters replay the build-left probe's zone decisions.
fn run_join_build_right(
    left: &Table,
    right: &Table,
    spec: &crate::query::JoinSpec,
) -> EngineResult<PlannedExecution> {
    let left_key = exec::int_key_column(left, &spec.left_key)?;
    let right_key = exec::int_key_column(right, &spec.right_key)?;

    let end = match spec.limit {
        Some(l) => (spec.offset + l).min(left.rows()),
        None => left.rows(),
    };
    let start = spec.offset.min(end);

    // Build over the right table: ascending insertion keeps each key's
    // row list ascending.
    let mut build: HashMap<i64, Vec<usize>> = HashMap::with_capacity(right_key.len());
    for (row, key) in right_key.iter().enumerate() {
        build.entry(*key).or_default().push(row);
    }

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (l_row, key) in left_key.iter().enumerate().take(end).skip(start) {
        if let Some(r_rows) = build.get(key) {
            for &r_row in r_rows {
                pairs.push((l_row, r_row));
            }
        }
    }

    // Footprint identity: replay the block decisions the build-left
    // probe would have made over the right table.
    let mut blocks_pruned = 0u64;
    let mut blocks_scanned = 0u64;
    if start < end {
        let bmin = left_key[start..end]
            .iter()
            .min()
            .copied()
            .expect("non-empty page") as f64;
        let bmax = left_key[start..end]
            .iter()
            .max()
            .copied()
            .expect("non-empty page") as f64;
        let key_idx = right.column_index(&spec.right_key)?;
        let zone_map = right.zone_map_at(key_idx);
        let blocks = right_key.len().div_ceil(ZONE_BLOCK_ROWS);
        for blk in 0..blocks {
            let prunable = zone_map
                .and_then(|zm| zm.block(blk))
                .is_some_and(|z| z.max < bmin || z.min > bmax);
            if prunable {
                blocks_pruned += 1;
            } else {
                blocks_scanned += 1;
            }
        }
    }

    let mut rows: Vec<crate::result::Row> = Vec::with_capacity(pairs.len());
    for (l_row, r_row) in pairs {
        rows.push(exec::project_joined(
            left,
            right,
            l_row,
            r_row,
            &spec.projection,
        )?);
    }

    let footprint = QueryFootprint {
        rows_scanned: (end - start) as u64 + right.rows() as u64,
        rows_matched: rows.len() as u64,
        build_rows: (end - start) as u64,
        probe_rows: right.rows() as u64,
        rows_output: rows.len() as u64,
        blocks_pruned,
        blocks_scanned,
        ..QueryFootprint::default()
    };
    Ok(PlannedExecution {
        result: ResultSet::Rows(rows),
        footprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::predicate::Predicate;
    use crate::query::{JoinSpec, Projection};
    use crate::table::TableBuilder;
    use crate::MemBackend;
    use crate::{Backend, Query};

    fn db(rows: usize) -> MemBackend {
        let b = MemBackend::new();
        b.database().register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..rows).map(|i| i as f64)))
                .column("k", ColumnBuilder::int((0..rows).map(|i| i as i64 % 7)))
                .column(
                    "s",
                    ColumnBuilder::str((0..rows).map(|i| ["a", "b", "c"][i % 3])),
                )
                .build()
                .unwrap(),
        );
        b
    }

    fn assert_matches_exec(backend: &MemBackend, q: &Query) {
        let database = backend.database();
        let planned = plan(&database, q).unwrap().execute(&database).unwrap();
        let (result, footprint) = exec::run_query(&database, q).unwrap();
        assert_eq!(planned.result, result, "result drift for {q}");
        assert_eq!(planned.footprint, footprint, "footprint drift for {q}");
    }

    #[test]
    fn predicate_reordering_puts_selective_conjunct_first() {
        let b = db(4000);
        let database = b.database();
        // x BETWEEN selects ~2.5%, k >= 0 selects everything.
        let q = Query::count(
            "t",
            Predicate::and([Predicate::ge("k", 0.0), Predicate::between("x", 0.0, 100.0)]),
        );
        let p = plan(&database, &q).unwrap();
        let PlanNode::Count { pred } = p.node() else {
            panic!("count plan");
        };
        assert!(pred.reordered);
        assert!(pred.conjuncts[0].0.contains("BETWEEN"));
        assert!(pred.conjuncts[0].1 < pred.conjuncts[1].1);
        assert_matches_exec(&b, &q);
    }

    #[test]
    fn histogram_path_tracks_estimated_rows() {
        let b = db(5000);
        let database = b.database();
        let broad = Query::histogram(
            "t",
            BinSpec::new("x", 0.0, 5000.0, 20),
            Predicate::between("x", 0.0, 4000.0),
        );
        let narrow = Query::histogram(
            "t",
            BinSpec::new("x", 0.0, 5000.0, 20),
            Predicate::between("x", 0.0, 3.0),
        );
        let p_broad = plan(&database, &broad).unwrap();
        let p_narrow = plan(&database, &narrow).unwrap();
        assert!(matches!(
            p_broad.node(),
            PlanNode::Histogram {
                path: HistogramPath::Fused,
                ..
            }
        ));
        assert!(matches!(
            p_narrow.node(),
            PlanNode::Histogram {
                path: HistogramPath::Unfused,
                ..
            }
        ));
        assert_matches_exec(&b, &broad);
        assert_matches_exec(&b, &narrow);
    }

    #[test]
    fn parallel_plan_is_thread_invariant() {
        let rows = PAR_CHUNK_ROWS + 1234;
        let b = MemBackend::new();
        b.database().register(
            TableBuilder::new("t")
                .column(
                    "x",
                    ColumnBuilder::float((0..rows).map(|i| (i % 977) as f64)),
                )
                .build()
                .unwrap(),
        );
        let database = b.database();
        let q = Query::histogram(
            "t",
            BinSpec::new("x", 0.0, 1000.0, 25),
            Predicate::between("x", 100.0, 800.0),
        );
        let p = plan(&database, &q).unwrap();
        assert!(matches!(
            p.node(),
            PlanNode::Histogram { parallel: true, .. }
        ));
        let base = p.execute_with_threads(&database, 1).unwrap();
        let explain = p.explain();
        for threads in [2, 4, 8] {
            let out = p.execute_with_threads(&database, threads).unwrap();
            assert_eq!(out.result, base.result, "{threads} threads diverged");
            assert_eq!(out.footprint, base.footprint, "{threads} threads footprint");
            assert_eq!(p.explain(), explain, "plan text must be thread-invariant");
        }
        let (result, footprint) = exec::run_query(&database, &q).unwrap();
        assert_eq!(base.result, result);
        assert_eq!(base.footprint, footprint);
    }

    #[test]
    fn join_builds_on_the_smaller_side() {
        let b = MemBackend::new();
        b.database().register(
            TableBuilder::new("fact")
                .column("id", ColumnBuilder::int(0..5000))
                .build()
                .unwrap(),
        );
        b.database().register(
            TableBuilder::new("dim")
                .column("id", ColumnBuilder::int((0..100).map(|i| i * 3)))
                .column(
                    "name",
                    ColumnBuilder::str((0..100).map(|i| format!("d{i}"))),
                )
                .build()
                .unwrap(),
        );
        let database = b.database();
        let whole = Query::Join(JoinSpec {
            left: "fact".into(),
            right: "dim".into(),
            left_key: "id".into(),
            right_key: "id".into(),
            projection: vec![Projection::column("name"), Projection::column("id")],
            limit: None,
            offset: 0,
        });
        let paged = Query::Join(JoinSpec {
            limit: Some(20),
            ..match &whole {
                Query::Join(s) => s.clone(),
                _ => unreachable!(),
            }
        });
        let p_whole = plan(&database, &whole).unwrap();
        let p_paged = plan(&database, &paged).unwrap();
        assert!(matches!(
            p_whole.node(),
            PlanNode::Join {
                build: BuildSide::Right,
                ..
            }
        ));
        assert!(matches!(
            p_paged.node(),
            PlanNode::Join {
                build: BuildSide::Left,
                ..
            }
        ));
        assert_matches_exec(&b, &whole);
        assert_matches_exec(&b, &paged);
    }

    #[test]
    fn planned_execution_matches_exec_across_shapes() {
        let b = db(3000);
        let queries = [
            Query::count("t", Predicate::True),
            Query::count("t", Predicate::eq("s", "b")),
            Query::count(
                "t",
                Predicate::Or(vec![
                    Predicate::between("x", 0.0, 10.0),
                    Predicate::Not(Box::new(Predicate::le("x", 2500.0))),
                ]),
            ),
            Query::select("t", vec![], Predicate::True, Some(10), 5),
            Query::select(
                "t",
                vec![Projection::column("x")],
                Predicate::and([
                    Predicate::between("k", 1.0, 5.0),
                    Predicate::between("x", 100.0, 2900.0),
                ]),
                Some(25),
                3,
            ),
            Query::histogram(
                "t",
                BinSpec::new("x", 0.0, 3000.0, 30),
                Predicate::and([
                    Predicate::ge("k", 2.0),
                    Predicate::between("x", 50.0, 2000.0),
                ]),
            ),
        ];
        for q in &queries {
            assert_matches_exec(&b, q);
        }
    }

    #[test]
    fn plan_errors_match_exec_errors() {
        let b = db(100);
        let database = b.database();
        // Unknown table fails at plan time with run_query's error.
        let q = Query::count("missing", Predicate::True);
        assert_eq!(
            plan(&database, &q).unwrap_err(),
            exec::run_query(&database, &q).unwrap_err()
        );
        // Unknown column and bad bin specs fail at execute time with
        // run_query's error.
        for q in [
            Query::count("t", Predicate::between("zzz", 0.0, 1.0)),
            Query::histogram("t", BinSpec::new("x", 5.0, 5.0, 10), Predicate::True),
            Query::histogram("t", BinSpec::new("x", 0.0, 1.0, 0), Predicate::True),
            Query::histogram("t", BinSpec::new("s", 0.0, 1.0, 4), Predicate::True),
        ] {
            let planned = plan(&database, &q).unwrap().execute(&database);
            assert_eq!(
                planned.unwrap_err(),
                exec::run_query(&database, &q).unwrap_err(),
                "error drift for {q}"
            );
        }
    }

    #[test]
    fn explain_is_deterministic_and_complete() {
        let b = db(5000);
        let database = b.database();
        let q = Query::histogram(
            "t",
            BinSpec::new("x", 0.0, 5000.0, 20),
            Predicate::and([Predicate::ge("k", 0.0), Predicate::between("x", 0.0, 500.0)]),
        );
        let p = plan(&database, &q).unwrap();
        let text = p.explain();
        assert_eq!(text, plan(&database, &q).unwrap().explain());
        assert!(text.contains("Histogram(table=t rows=5000)"), "{text}");
        assert!(text.contains("reordered=yes"), "{text}");
        assert!(text.contains("est blocks:"), "{text}");
        let out = p.execute(&database).unwrap();
        let analyzed = p.explain_analyzed(&out.footprint);
        assert!(analyzed.starts_with(&text));
        assert!(analyzed.contains("actual: rows_matched="), "{analyzed}");
    }

    #[test]
    fn block_boundary_tables_plan_and_match() {
        for rows in [0usize, 1, 1023, 1024, 1025] {
            let b = db(rows);
            for q in [
                Query::count("t", Predicate::between("x", 0.0, 600.0)),
                Query::histogram(
                    "t",
                    BinSpec::new("x", 0.0, 1200.0, 12),
                    Predicate::between("k", 0.0, 3.0),
                ),
                Query::select("t", vec![], Predicate::ge("x", 1000.0), Some(5), 0),
            ] {
                assert_matches_exec(&b, &q);
            }
        }
    }
}
