//! Filtered, projected, paginated scans.

use std::sync::Arc;

use crate::cost::QueryFootprint;
use crate::error::EngineResult;
use crate::kernels::{self, KernelOptions, KernelStats};
use crate::predicate::Predicate;
use crate::query::{ConcatPart, Projection, SelectSpec};
use crate::result::{ResultSet, Row};
use crate::table::Table;
use crate::value::Value;

/// Executes `SELECT <projection> FROM t WHERE <filter> LIMIT l OFFSET o`.
///
/// With a trivial (`TRUE`) filter the scan terminates early after
/// `offset + limit` rows, like a sequential scan feeding a `LIMIT` node;
/// with a real filter every row must be tested, which the footprint
/// reflects.
pub fn run_select(table: &Table, spec: &SelectSpec) -> EngineResult<(ResultSet, QueryFootprint)> {
    spec.filter.validate(table)?;
    let mut footprint = QueryFootprint::default();

    let selected: Vec<usize> = match &spec.filter {
        Predicate::True => {
            let end = match spec.limit {
                Some(l) => (spec.offset + l).min(table.rows()),
                None => table.rows(),
            };
            footprint.rows_scanned = end as u64;
            footprint.rows_matched = end as u64;
            (spec.offset.min(end)..end).collect()
        }
        filter => {
            // Vectorized path: evaluate the filter into a selection
            // bitmask, then materialize row ids only for the requested
            // page instead of for every match.
            let opts = KernelOptions::default();
            let mut stats = KernelStats::default();
            let sel = kernels::select_vector_with(table, filter, &opts, &mut stats)?;
            footprint.rows_scanned = table.rows() as u64;
            footprint.rows_matched = sel.count() as u64;
            footprint.predicate_evals = footprint.rows_scanned * filter.condition_count() as u64;
            footprint.blocks_pruned = stats.blocks_pruned;
            footprint.blocks_scanned = stats.blocks_scanned;
            let take = match spec.limit {
                Some(l) => l.min(sel.count().saturating_sub(spec.offset)),
                None => sel.count().saturating_sub(spec.offset),
            };
            sel.iter().skip(spec.offset).take(take).collect()
        }
    };

    let rows = project_rows(table, &selected, &spec.projection)?;
    footprint.rows_output = rows.len() as u64;
    Ok((ResultSet::Rows(rows), footprint))
}

/// Materializes projected rows for the given row indices.
pub(crate) fn project_rows(
    table: &Table,
    rows: &[usize],
    projection: &[Projection],
) -> EngineResult<Vec<Row>> {
    // Empty projection means "all columns".
    if projection.is_empty() {
        let width = table.width();
        return Ok(rows
            .iter()
            .map(|&r| (0..width).map(|c| table.column_at(c).value(r)).collect())
            .collect());
    }
    // Validate column references once, not per row.
    for p in projection {
        for c in p.referenced_columns() {
            table.column(c)?;
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for &r in rows {
        let mut row = Vec::with_capacity(projection.len());
        for p in projection {
            row.push(eval_projection(table, r, p)?);
        }
        out.push(row);
    }
    Ok(out)
}

fn eval_projection(table: &Table, row: usize, p: &Projection) -> EngineResult<Value> {
    match p {
        Projection::Column(c) => table.value(row, c),
        Projection::Concat(parts) => {
            let mut s = String::new();
            for part in parts {
                match part {
                    ConcatPart::Column(c) => {
                        let v = table.value(row, c)?;
                        s.push_str(&v.to_string());
                    }
                    ConcatPart::Literal(l) => s.push_str(l),
                }
            }
            Ok(Value::Str(Arc::from(s)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::table::TableBuilder;

    fn movies() -> Table {
        TableBuilder::new("imdb")
            .column("id", ColumnBuilder::int(0..10))
            .column(
                "title",
                ColumnBuilder::str((0..10).map(|i| format!("m{i}"))),
            )
            .column("year", ColumnBuilder::int((0..10).map(|i| 2000 + i)))
            .column("rating", ColumnBuilder::float((0..10).map(|i| i as f64)))
            .build()
            .unwrap()
    }

    fn spec(limit: Option<usize>, offset: usize) -> SelectSpec {
        SelectSpec {
            table: "imdb".into(),
            projection: vec![
                Projection::title_with_year("title", "year"),
                Projection::column("rating"),
            ],
            filter: Predicate::True,
            limit,
            offset,
        }
    }

    #[test]
    fn limit_offset_pagination() {
        let t = movies();
        let (rs, fp) = run_select(&t, &spec(Some(3), 2)).unwrap();
        let rows = rs.rows().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0].as_str(), Some("m2(2002)"));
        assert_eq!(rows[2][1].as_f64(), Some(4.0));
        // Early termination: only offset+limit rows scanned.
        assert_eq!(fp.rows_scanned, 5);
        assert_eq!(fp.rows_output, 3);
    }

    #[test]
    fn offset_beyond_table_is_empty() {
        let t = movies();
        let (rs, fp) = run_select(&t, &spec(Some(5), 100)).unwrap();
        assert!(rs.rows().unwrap().is_empty());
        assert_eq!(fp.rows_output, 0);
    }

    #[test]
    fn no_limit_returns_rest() {
        let t = movies();
        let (rs, _) = run_select(&t, &spec(None, 7)).unwrap();
        assert_eq!(rs.rows().unwrap().len(), 3);
    }

    #[test]
    fn filtered_scan_touches_all_rows() {
        let t = movies();
        let s = SelectSpec {
            filter: Predicate::between("rating", 4.0, 8.0),
            ..spec(Some(2), 1)
        };
        let (rs, fp) = run_select(&t, &s).unwrap();
        let rows = rs.rows().unwrap();
        // ratings 4..=8 match (5 rows); offset 1, limit 2 → ratings 5, 6.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1].as_f64(), Some(5.0));
        assert_eq!(fp.rows_scanned, 10);
        assert_eq!(fp.rows_matched, 5);
    }

    #[test]
    fn empty_projection_returns_all_columns() {
        let t = movies();
        let s = SelectSpec {
            projection: vec![],
            ..spec(Some(1), 0)
        };
        let (rs, _) = run_select(&t, &s).unwrap();
        assert_eq!(rs.rows().unwrap()[0].len(), 4);
    }

    #[test]
    fn unknown_projection_column_errors() {
        let t = movies();
        let s = SelectSpec {
            projection: vec![Projection::column("nope")],
            ..spec(Some(1), 0)
        };
        assert!(run_select(&t, &s).is_err());
    }

    #[test]
    fn pagination_partitions_table() {
        let t = movies();
        let mut seen = vec![];
        let mut offset = 0;
        loop {
            let (rs, _) = run_select(&t, &spec(Some(4), offset)).unwrap();
            let rows = rs.rows().unwrap();
            if rows.is_empty() {
                break;
            }
            seen.extend(rows.iter().map(|r| r[0].as_str().unwrap().to_string()));
            offset += 4;
        }
        assert_eq!(seen.len(), 10);
        let expected: Vec<String> = (0..10).map(|i| format!("m{i}({})", 2000 + i)).collect();
        assert_eq!(seen, expected);
    }
}
