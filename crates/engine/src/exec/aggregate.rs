//! Histogram and count aggregation.
//!
//! Both operators run on the vectorized kernel layer: the filter is
//! evaluated column-at-a-time into a [`kernels::SelectionVector`], and
//! the histogram bins selected rows with the fused filter+bin+count
//! kernel — no `Vec<usize>` of row ids is ever materialized. Virtual
//! costs (the [`QueryFootprint`] row counters) are byte-identical to
//! the row-at-a-time engine; only wall-clock time changes.

use crate::cost::QueryFootprint;
use crate::error::{EngineError, EngineResult};
use crate::kernels::{self, KernelOptions, KernelStats};
use crate::predicate::Predicate;
use crate::query::BinSpec;
use crate::result::ResultSet;
use crate::table::Table;

/// Executes the crossfiltering histogram:
/// `SELECT ROUND((col - min) / width), COUNT(*) FROM t WHERE f GROUP BY 1 ORDER BY 1`.
pub fn run_histogram(
    table: &Table,
    bins: &BinSpec,
    filter: &Predicate,
) -> EngineResult<(ResultSet, QueryFootprint)> {
    if bins.bins == 0 {
        return Err(EngineError::InvalidBinSpec("zero bins".into()));
    }
    if bins.width() <= 0.0 || bins.width().is_nan() {
        return Err(EngineError::InvalidBinSpec(format!(
            "non-positive width over [{}, {}]",
            bins.min, bins.max
        )));
    }
    filter.validate(table)?;
    let bin_idx = table.column_index(&bins.column)?;
    let col = table.column_at(bin_idx);
    // Probe via column type metadata, not a sample value: `f64_at(0)`
    // can't see past the first row and says nothing on empty columns.
    if !col.data_type().is_numeric() {
        return Err(EngineError::TypeMismatch {
            column: bins.column.to_string(),
            expected: "numeric column for binning",
        });
    }

    let opts = KernelOptions::default();
    let mut stats = KernelStats::default();
    let selected = kernels::select_vector_with(table, filter, &opts, &mut stats)?;
    let hist = kernels::fused_filter_bin(
        col,
        table.zone_map_at(bin_idx),
        &selected,
        bins,
        &opts,
        &mut stats,
    );

    let footprint = QueryFootprint {
        rows_scanned: table.rows() as u64,
        rows_matched: selected.count() as u64,
        rows_aggregated: selected.count() as u64,
        groups: hist.bins() as u64,
        rows_output: hist.bins() as u64,
        predicate_evals: table.rows() as u64 * filter.condition_count() as u64,
        blocks_pruned: stats.blocks_pruned,
        blocks_scanned: stats.blocks_scanned,
        ..QueryFootprint::default()
    };
    Ok((ResultSet::Histogram(hist), footprint))
}

/// Executes `SELECT COUNT(*) FROM t WHERE f` — fused filter+count: the
/// answer is the selection mask's popcount.
pub fn run_count(table: &Table, filter: &Predicate) -> EngineResult<(ResultSet, QueryFootprint)> {
    filter.validate(table)?;
    let opts = KernelOptions::default();
    let mut stats = KernelStats::default();
    let selected = kernels::select_vector_with(table, filter, &opts, &mut stats)?;
    let footprint = QueryFootprint {
        rows_scanned: table.rows() as u64,
        rows_matched: selected.count() as u64,
        rows_aggregated: selected.count() as u64,
        groups: 1,
        rows_output: 1,
        predicate_evals: table.rows() as u64 * filter.condition_count() as u64,
        blocks_pruned: stats.blocks_pruned,
        blocks_scanned: stats.blocks_scanned,
        ..QueryFootprint::default()
    };
    Ok((ResultSet::Count(selected.count() as u64), footprint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::table::TableBuilder;

    fn road() -> Table {
        // x in [0, 10), y = x * 2, z constant.
        TableBuilder::new("road")
            .column("x", ColumnBuilder::float((0..100).map(|i| i as f64 / 10.0)))
            .column("y", ColumnBuilder::float((0..100).map(|i| i as f64 / 5.0)))
            .column("z", ColumnBuilder::float((0..100).map(|_| 1.0)))
            .build()
            .unwrap()
    }

    #[test]
    fn histogram_counts_filtered_rows() {
        let t = road();
        let bins = BinSpec::new("y", 0.0, 20.0, 20);
        let filter = Predicate::between("x", 0.0, 4.95);
        let (rs, fp) = run_histogram(&t, &bins, &filter).unwrap();
        let h = rs.histogram().unwrap();
        assert_eq!(h.bins(), 21);
        // 50 rows match (x 0.0..=4.9); all land in bins for y 0..=9.8.
        assert_eq!(h.total(), 50);
        assert_eq!(fp.rows_matched, 50);
        assert_eq!(fp.rows_scanned, 100);
        assert_eq!(fp.groups, 21);
    }

    #[test]
    fn histogram_excludes_out_of_domain_values() {
        let t = road();
        // Domain covers only half of y's actual range.
        let bins = BinSpec::new("y", 0.0, 9.0, 9);
        let (rs, _) = run_histogram(&t, &bins, &Predicate::True).unwrap();
        let h = rs.histogram().unwrap();
        assert!(h.total() < 100, "values above max must be dropped");
    }

    #[test]
    fn histogram_matches_manual_binning() {
        let t = road();
        let bins = BinSpec::new("x", 0.0, 10.0, 10);
        let (rs, _) = run_histogram(&t, &bins, &Predicate::True).unwrap();
        let h = rs.histogram().unwrap();
        let mut manual = [0u64; 11];
        for i in 0..100 {
            let x = i as f64 / 10.0;
            let b = (x / 1.0).round() as usize;
            manual[b.min(10)] += 1;
        }
        assert_eq!(h.counts(), &manual[..]);
    }

    #[test]
    fn invalid_bin_specs_error() {
        let t = road();
        assert!(matches!(
            run_histogram(&t, &BinSpec::new("y", 0.0, 20.0, 0), &Predicate::True),
            Err(EngineError::InvalidBinSpec(_))
        ));
        assert!(matches!(
            run_histogram(&t, &BinSpec::new("y", 5.0, 5.0, 10), &Predicate::True),
            Err(EngineError::InvalidBinSpec(_))
        ));
    }

    #[test]
    fn binning_string_column_errors() {
        let t = TableBuilder::new("s")
            .column("s", ColumnBuilder::str(["a", "b"]))
            .build()
            .unwrap();
        assert!(matches!(
            run_histogram(&t, &BinSpec::new("s", 0.0, 1.0, 2), &Predicate::True),
            Err(EngineError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn binning_empty_string_column_errors() {
        // Regression: the old probe inspected `f64_at(0)`, which says
        // nothing about an empty column — an empty string column slid
        // through and produced an empty histogram instead of a type
        // error. The check must come from column metadata, not data.
        let t = TableBuilder::new("s")
            .column("s", ColumnBuilder::str(Vec::<&str>::new()))
            .build()
            .unwrap();
        assert!(matches!(
            run_histogram(&t, &BinSpec::new("s", 0.0, 1.0, 2), &Predicate::True),
            Err(EngineError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn count_matches_selection() {
        let t = road();
        let (rs, fp) = run_count(&t, &Predicate::between("x", 2.0, 3.0)).unwrap();
        assert_eq!(rs.scalar_count(), Some(11));
        assert_eq!(fp.rows_matched, 11);
        let (all, _) = run_count(&t, &Predicate::True).unwrap();
        assert_eq!(all.scalar_count(), Some(100));
    }
}
