//! Physical execution of logical queries over in-memory tables.
//!
//! Execution is backend-agnostic: each operator returns the
//! [`ResultSet`](crate::ResultSet) *and* a [`QueryFootprint`](crate::cost::QueryFootprint)
//! recording how much work was done (tuples scanned, matched, grouped,
//! joined, rows emitted). Backends convert the footprint into virtual
//! time with their [`CostModel`](crate::cost::CostModel).

mod aggregate;
mod join;
mod scan;

pub use aggregate::{run_count, run_histogram};
pub use join::run_join;
pub use scan::run_select;

// Shared with the cost-based planner, whose physical operators must
// project rows byte-identically to the operators in this module.
pub(crate) use join::{int_key_column, project_joined};
pub(crate) use scan::project_rows;

use crate::cost::QueryFootprint;
use crate::error::EngineResult;
use crate::query::Query;
use crate::result::ResultSet;
use crate::Database;

/// Executes a logical query against the tables registered in `db`.
pub fn run_query(db: &Database, query: &Query) -> EngineResult<(ResultSet, QueryFootprint)> {
    match query {
        Query::Select(spec) => {
            let table = db.table(&spec.table)?;
            run_select(&table, spec)
        }
        Query::Join(spec) => {
            let left = db.table(&spec.left)?;
            let right = db.table(&spec.right)?;
            run_join(&left, &right, spec)
        }
        Query::Histogram {
            table,
            bins,
            filter,
        } => {
            let table = db.table(table)?;
            run_histogram(&table, bins, filter)
        }
        Query::Count { table, filter } => {
            let table = db.table(table)?;
            run_count(&table, filter)
        }
    }
}
