//! Hash join over a paginated subquery.
//!
//! Implements the streaming-join shape from case study 1 (Q2):
//!
//! ```sql
//! SELECT ... FROM (
//!   (SELECT id, rating FROM imdbrating LIMIT k OFFSET n) tmp
//!   INNER JOIN movie ON tmp.id = movie.id
//! )
//! ```
//!
//! The left (paginated) side builds the hash table — it is the small side
//! by construction — and the right table probes it.

use std::collections::HashMap;

use crate::column::{Column, ZONE_BLOCK_ROWS};
use crate::cost::QueryFootprint;
use crate::error::{EngineError, EngineResult};
use crate::query::{JoinSpec, Projection};
use crate::result::{ResultSet, Row};
use crate::table::Table;
use crate::value::Value;

/// Executes a paginated-subquery inner join.
pub fn run_join(
    left: &Table,
    right: &Table,
    spec: &JoinSpec,
) -> EngineResult<(ResultSet, QueryFootprint)> {
    let left_key = int_key_column(left, &spec.left_key)?;
    let right_key = int_key_column(right, &spec.right_key)?;

    // Page the left side: rows offset..offset+limit.
    let end = match spec.limit {
        Some(l) => (spec.offset + l).min(left.rows()),
        None => left.rows(),
    };
    let start = spec.offset.min(end);

    // Build phase over the paginated slice.
    let mut build: HashMap<i64, Vec<usize>> = HashMap::with_capacity(end - start);
    for (row, key) in left_key.iter().enumerate().take(end).skip(start) {
        build.entry(*key).or_default().push(row);
    }

    // Fused filter+probe over the full right table: the probe walks the
    // right key column block-wise, skipping zone-map blocks whose
    // [min, max] cannot intersect the build keys' range, and emits
    // (left, right) match pairs directly instead of a per-left-row map.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut blocks_pruned = 0u64;
    let mut blocks_scanned = 0u64;
    if !build.is_empty() {
        // Build-side key range in the zone maps' f64 domain. Equal keys
        // convert to equal floats, so rounding can never prune a block
        // that contains a genuine match.
        let bmin = *build.keys().min().expect("non-empty build") as f64;
        let bmax = *build.keys().max().expect("non-empty build") as f64;
        let key_idx = right.column_index(&spec.right_key)?;
        let zone_map = right.zone_map_at(key_idx);
        let mut blk_start = 0usize;
        let mut blk = 0usize;
        while blk_start < right_key.len() {
            let blk_end = (blk_start + ZONE_BLOCK_ROWS).min(right_key.len());
            let prunable = zone_map
                .and_then(|zm| zm.block(blk))
                .is_some_and(|z| z.max < bmin || z.min > bmax);
            if prunable {
                blocks_pruned += 1;
            } else {
                blocks_scanned += 1;
                for (r_row, key) in right_key.iter().enumerate().take(blk_end).skip(blk_start) {
                    if let Some(l_rows) = build.get(key) {
                        for &l_row in l_rows {
                            pairs.push((l_row, r_row));
                        }
                    }
                }
            }
            blk_start = blk_end;
            blk += 1;
        }
    }

    // Preserve left (pagination) order: a stable sort by left row keeps
    // each left row's right matches in probe (ascending) order, exactly
    // reproducing the row-at-a-time output.
    pairs.sort_by_key(|&(l_row, _)| l_row);
    let mut rows: Vec<Row> = Vec::with_capacity(pairs.len());
    for (l_row, r_row) in pairs {
        rows.push(project_joined(left, right, l_row, r_row, &spec.projection)?);
    }

    let footprint = QueryFootprint {
        rows_scanned: (end - start) as u64 + right.rows() as u64,
        rows_matched: rows.len() as u64,
        build_rows: (end - start) as u64,
        probe_rows: right.rows() as u64,
        rows_output: rows.len() as u64,
        blocks_pruned,
        blocks_scanned,
        ..QueryFootprint::default()
    };
    Ok((ResultSet::Rows(rows), footprint))
}

pub(crate) fn int_key_column<'t>(table: &'t Table, key: &str) -> EngineResult<&'t [i64]> {
    match table.column(key)? {
        Column::Int(v) => Ok(v),
        _ => Err(EngineError::TypeMismatch {
            column: key.to_string(),
            expected: "integer join key",
        }),
    }
}

/// Projects a joined row; column references resolve against the left
/// table first, then the right (matching the unqualified names in the
/// paper's SQL, where projected columns come from the `movie` side).
pub(crate) fn project_joined(
    left: &Table,
    right: &Table,
    l_row: usize,
    r_row: usize,
    projection: &[Projection],
) -> EngineResult<Row> {
    let resolve = |name: &str| -> EngineResult<Value> {
        if left.column(name).is_ok() {
            left.value(l_row, name)
        } else {
            right.value(r_row, name)
        }
    };
    if projection.is_empty() {
        let mut row: Row = Vec::with_capacity(left.width() + right.width());
        for c in 0..left.width() {
            row.push(left.column_at(c).value(l_row));
        }
        for c in 0..right.width() {
            row.push(right.column_at(c).value(r_row));
        }
        return Ok(row);
    }
    let mut row = Vec::with_capacity(projection.len());
    for p in projection {
        match p {
            Projection::Column(c) => row.push(resolve(c)?),
            Projection::Concat(parts) => {
                let mut s = String::new();
                for part in parts {
                    match part {
                        crate::query::ConcatPart::Column(c) => {
                            s.push_str(&resolve(c)?.to_string());
                        }
                        crate::query::ConcatPart::Literal(l) => s.push_str(l),
                    }
                }
                row.push(Value::from(s));
            }
        }
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::table::TableBuilder;

    fn ratings() -> Table {
        TableBuilder::new("imdbrating")
            .column("id", ColumnBuilder::int(0..20))
            .column(
                "rating",
                ColumnBuilder::float((0..20).map(|i| i as f64 / 2.0)),
            )
            .build()
            .unwrap()
    }

    fn movie() -> Table {
        // Only even ids exist on the movie side.
        TableBuilder::new("movie")
            .column("id", ColumnBuilder::int((0..10).map(|i| i * 2)))
            .column(
                "title",
                ColumnBuilder::str((0..10).map(|i| format!("t{}", i * 2))),
            )
            .build()
            .unwrap()
    }

    fn spec(limit: Option<usize>, offset: usize) -> JoinSpec {
        JoinSpec {
            left: "imdbrating".into(),
            right: "movie".into(),
            left_key: "id".into(),
            right_key: "id".into(),
            projection: vec![Projection::column("title"), Projection::column("rating")],
            limit,
            offset,
        }
    }

    #[test]
    fn join_pages_the_left_side() {
        let (l, r) = (ratings(), movie());
        // Left rows 4..8 → ids 4,5,6,7; evens 4 and 6 match.
        let (rs, fp) = run_join(&l, &r, &spec(Some(4), 4)).unwrap();
        let rows = rs.rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0].as_str(), Some("t4"));
        assert_eq!(rows[0][1].as_f64(), Some(2.0));
        assert_eq!(rows[1][0].as_str(), Some("t6"));
        assert_eq!(fp.build_rows, 4);
        assert_eq!(fp.probe_rows, 10);
    }

    #[test]
    fn join_without_limit_matches_all_evens() {
        let (l, r) = (ratings(), movie());
        let (rs, _) = run_join(&l, &r, &spec(None, 0)).unwrap();
        assert_eq!(rs.rows().unwrap().len(), 10);
    }

    #[test]
    fn join_preserves_left_pagination_order() {
        let (l, r) = (ratings(), movie());
        let (rs, _) = run_join(&l, &r, &spec(Some(10), 0)).unwrap();
        let titles: Vec<&str> = rs
            .rows()
            .unwrap()
            .iter()
            .map(|row| row[0].as_str().unwrap())
            .collect();
        assert_eq!(titles, vec!["t0", "t2", "t4", "t6", "t8"]);
    }

    #[test]
    fn join_offset_past_end_is_empty() {
        let (l, r) = (ratings(), movie());
        let (rs, _) = run_join(&l, &r, &spec(Some(5), 99)).unwrap();
        assert!(rs.rows().unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_produce_cross_matches() {
        let l = TableBuilder::new("l")
            .column("id", ColumnBuilder::int([1, 1]))
            .build()
            .unwrap();
        let r = TableBuilder::new("r")
            .column("id", ColumnBuilder::int([1, 1, 1]))
            .build()
            .unwrap();
        let spec = JoinSpec {
            left: "l".into(),
            right: "r".into(),
            left_key: "id".into(),
            right_key: "id".into(),
            projection: vec![],
            limit: None,
            offset: 0,
        };
        let (rs, _) = run_join(&l, &r, &spec).unwrap();
        assert_eq!(rs.rows().unwrap().len(), 6);
    }

    #[test]
    fn non_integer_key_errors() {
        let l = TableBuilder::new("l")
            .column("id", ColumnBuilder::str(["a"]))
            .build()
            .unwrap();
        let r = movie();
        let spec = JoinSpec {
            left: "l".into(),
            right: "r".into(),
            left_key: "id".into(),
            right_key: "id".into(),
            projection: vec![],
            limit: None,
            offset: 0,
        };
        assert!(matches!(
            run_join(&l, &r, &spec),
            Err(EngineError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn zone_pruning_skips_out_of_range_probe_blocks() {
        // Right side spans three 1024-row zone blocks; the build keys
        // land only in the middle one, so the probe must skip the first
        // and last without changing the join result.
        let l = TableBuilder::new("l")
            .column("id", ColumnBuilder::int(1500..1510))
            .build()
            .unwrap();
        let r = TableBuilder::new("r")
            .column("id", ColumnBuilder::int(0..3000))
            .build()
            .unwrap();
        let spec = JoinSpec {
            left: "l".into(),
            right: "r".into(),
            left_key: "id".into(),
            right_key: "id".into(),
            projection: vec![],
            limit: None,
            offset: 0,
        };
        let (rs, fp) = run_join(&l, &r, &spec).unwrap();
        assert_eq!(rs.rows().unwrap().len(), 10);
        assert_eq!(fp.blocks_pruned, 2);
        assert_eq!(fp.blocks_scanned, 1);
        // Pruning must not discount the virtual probe cost.
        assert_eq!(fp.probe_rows, 3000);
    }

    #[test]
    fn concat_projection_resolves_across_sides() {
        let (l, r) = (ratings(), movie());
        let spec = JoinSpec {
            projection: vec![Projection::Concat(vec![
                crate::query::ConcatPart::Column("title".into()),
                crate::query::ConcatPart::Literal(":".into()),
                crate::query::ConcatPart::Column("rating".into()),
            ])],
            ..spec(Some(2), 0)
        };
        let (rs, _) = run_join(&l, &r, &spec).unwrap();
        assert_eq!(rs.rows().unwrap()[0][0].as_str(), Some("t0:0"));
    }
}
