//! Scalar values and data types.

use std::fmt;
use std::sync::Arc;

/// The data types supported by the engine's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (dictionary encoded in columns).
    Str,
}

impl DataType {
    /// Approximate on-disk width in bytes of one value of this type, used
    /// by the pager to compute rows-per-page. Strings are charged an
    /// average inline width, mirroring how a row store pays for short
    /// VARCHARs.
    pub const fn disk_width(self) -> usize {
        match self {
            DataType::Int | DataType::Float => 8,
            DataType::Str => 24,
        }
    }

    /// `true` for types whose values convert to `f64` — the types that
    /// can be binned, range-filtered, and zone-mapped. This is the
    /// correct way to probe a column for numeric operations: inspecting
    /// a sample value (the old `f64_at(0)` probe) tells you nothing on
    /// an empty column.
    pub const fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "TEXT"),
        }
    }
}

/// A dynamically typed scalar, used in projected rows and query literals.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Shared string.
    Str(Arc<str>),
}

impl Value {
    /// This value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            Value::Str(_) => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Str(a), Value::Str(b)) => a == b,
            // Cross-numeric comparison mirrors SQL's implicit cast.
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typing_and_casts() {
        assert_eq!(Value::from(3i64).data_type(), DataType::Int);
        assert_eq!(Value::from(3.5).data_type(), DataType::Float);
        assert_eq!(Value::from("x").data_type(), DataType::Str);
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(7i64).as_i64(), Some(7));
    }

    #[test]
    fn cross_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
        assert_ne!(Value::Int(2), Value::from("2"));
    }

    #[test]
    fn nan_equals_itself_for_result_comparison() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn disk_widths() {
        assert_eq!(DataType::Int.disk_width(), 8);
        assert_eq!(DataType::Str.disk_width(), 24);
    }

    #[test]
    fn display() {
        assert_eq!(Value::from(1i64).to_string(), "1");
        assert_eq!(DataType::Float.to_string(), "FLOAT");
    }
}
