//! Virtual-time cost models.
//!
//! The paper's crossfiltering study contrasts a disk-based DBMS
//! (PostgreSQL: 150–500 ms per violated histogram query) with an
//! in-memory one (MemSQL: < 25 ms). We reproduce those *regimes* with
//! explicit per-operation charges: a query's [`QueryFootprint`] (tuples
//! scanned/aggregated, pages read, rows emitted) is priced by a
//! [`CostModel`] into a [`SimDuration`]. Costs are deterministic, so the
//! case studies replay identically across machines.

use ids_simclock::SimDuration;

/// Work counters recorded by the physical operators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryFootprint {
    /// Tuples visited by scans (both sides for joins).
    pub rows_scanned: u64,
    /// Tuples passing the filter.
    pub rows_matched: u64,
    /// Tuples fed into an aggregate.
    pub rows_aggregated: u64,
    /// Output groups of an aggregation.
    pub groups: u64,
    /// Hash-join build-side tuples.
    pub build_rows: u64,
    /// Hash-join probe-side tuples.
    pub probe_rows: u64,
    /// Rows emitted to the client.
    pub rows_output: u64,
    /// Predicate condition evaluations (rows scanned × conditions in the
    /// WHERE clause) — the cost that DICE's dimension sweep shows
    /// dominating selectivity benefits as dimensions grow.
    pub predicate_evals: u64,
    /// Pages read from "disk" (cold; filled in by the disk backend).
    pub pages_cold: u64,
    /// Pages served from the buffer pool (hot).
    pub pages_hot: u64,
    /// Zone-map blocks decided without touching data (all-false /
    /// all-true / outside the bin domain). Not priced: pruning is a
    /// real-hardware optimization, and virtual costs must stay
    /// byte-identical to the row-at-a-time engine.
    pub blocks_pruned: u64,
    /// Blocks whose column data the vectorized kernels actually read.
    pub blocks_scanned: u64,
}

impl QueryFootprint {
    /// Combines two footprints (used when a backend decorates an
    /// operator footprint with I/O counters).
    pub fn merge(mut self, other: QueryFootprint) -> QueryFootprint {
        self.rows_scanned += other.rows_scanned;
        self.rows_matched += other.rows_matched;
        self.rows_aggregated += other.rows_aggregated;
        self.groups += other.groups;
        self.build_rows += other.build_rows;
        self.probe_rows += other.probe_rows;
        self.rows_output += other.rows_output;
        self.predicate_evals += other.predicate_evals;
        self.pages_cold += other.pages_cold;
        self.pages_hot += other.pages_hot;
        self.blocks_pruned += other.blocks_pruned;
        self.blocks_scanned += other.blocks_scanned;
        self
    }
}

/// Per-operation charges, in nanoseconds of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Fixed per-query overhead (parse/plan/protocol), ns.
    pub startup_ns: u64,
    /// Reading a page from disk (cold), ns.
    pub page_cold_ns: u64,
    /// Touching a page already in the buffer pool, ns.
    pub page_hot_ns: u64,
    /// Scanning one tuple (predicate evaluation + tuple deforming), ns.
    pub tuple_scan_ns: u64,
    /// Feeding one tuple into an aggregate, ns.
    pub tuple_agg_ns: u64,
    /// Inserting one tuple into a join hash table, ns.
    pub join_build_ns: u64,
    /// Probing the join hash table with one tuple, ns.
    pub join_probe_ns: u64,
    /// Emitting one output row to the client, ns.
    pub row_output_ns: u64,
    /// Evaluating one predicate condition against one tuple, ns.
    pub predicate_eval_ns: u64,
}

impl CostParams {
    /// Calibration for a disk-based row store in the PostgreSQL regime.
    ///
    /// A full scan of the 434,874-tuple road table costs ≈ 0.45 µs/tuple
    /// of scan work ≈ 196 ms, plus aggregation and (on a cold cache)
    /// page I/O — landing histogram queries in the paper's observed
    /// 150–500 ms band.
    pub const fn disk_default() -> CostParams {
        CostParams {
            startup_ns: 1_200_000, // 1.2 ms connection/parse/plan
            page_cold_ns: 120_000, // 120 µs per cold 8 KiB page
            page_hot_ns: 2_000,    // 2 µs per buffered page
            tuple_scan_ns: 450,
            tuple_agg_ns: 150,
            join_build_ns: 300,
            join_probe_ns: 200,
            row_output_ns: 2_000,
            predicate_eval_ns: 50,
        }
    }

    /// Calibration for an in-memory store in the MemSQL regime: the
    /// full-table crossfilter histogram lands in the paper's observed
    /// 10–50 ms band, with the worst case (≈ 20 ms) just under the Leap
    /// Motion's ~22 ms issue interval — so high-rate devices violate the
    /// latency constraint occasionally (the nonzero mem fractions of
    /// Fig 15) without the queue diverging (the flat mem lines of
    /// Fig 13).
    pub const fn mem_default() -> CostParams {
        CostParams {
            startup_ns: 150_000, // 0.15 ms
            page_cold_ns: 0,
            page_hot_ns: 0,
            tuple_scan_ns: 28,
            tuple_agg_ns: 25,
            join_build_ns: 60,
            join_probe_ns: 40,
            row_output_ns: 500,
            predicate_eval_ns: 4,
        }
    }
}

/// Prices a query footprint into virtual time.
pub trait CostModel: Send + Sync {
    /// Virtual execution time for the given footprint.
    fn price(&self, footprint: &QueryFootprint) -> SimDuration;
}

/// The standard linear cost model: each counter × its per-unit charge.
#[derive(Debug, Clone, Copy)]
pub struct LinearCostModel {
    /// Per-operation charges.
    pub params: CostParams,
}

impl LinearCostModel {
    /// Creates a model from explicit parameters.
    pub fn new(params: CostParams) -> Self {
        LinearCostModel { params }
    }
}

impl CostModel for LinearCostModel {
    fn price(&self, fp: &QueryFootprint) -> SimDuration {
        let p = &self.params;
        let ns = p.startup_ns
            + fp.pages_cold * p.page_cold_ns
            + fp.pages_hot * p.page_hot_ns
            + fp.rows_scanned * p.tuple_scan_ns
            + fp.rows_aggregated * p.tuple_agg_ns
            + fp.build_rows * p.join_build_ns
            + fp.probe_rows * p.join_probe_ns
            + fp.rows_output * p.row_output_ns
            + fp.predicate_evals * p.predicate_eval_ns;
        SimDuration::from_micros(ns / 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn road_histogram_footprint() -> QueryFootprint {
        QueryFootprint {
            rows_scanned: 434_874,
            rows_matched: 200_000,
            rows_aggregated: 200_000,
            groups: 21,
            rows_output: 21,
            ..QueryFootprint::default()
        }
    }

    #[test]
    fn disk_histogram_lands_in_postgres_band() {
        let model = LinearCostModel::new(CostParams::disk_default());
        // Warm cache: no page I/O counted here; scan+agg dominate.
        let cost = model.price(&road_histogram_footprint());
        let ms = cost.as_millis();
        assert!(
            (150..=500).contains(&ms),
            "disk histogram cost {ms} ms outside the 150-500 ms band"
        );
    }

    #[test]
    fn mem_histogram_lands_in_memsql_band() {
        let model = LinearCostModel::new(CostParams::mem_default());
        let cost = model.price(&road_histogram_footprint());
        let ms = cost.as_millis();
        assert!(ms < 25, "mem histogram cost {ms} ms should be < 25 ms");
        assert!(ms >= 5, "mem histogram cost {ms} ms suspiciously low");
    }

    #[test]
    fn cold_pages_cost_more_than_hot() {
        let model = LinearCostModel::new(CostParams::disk_default());
        let cold = model.price(&QueryFootprint {
            pages_cold: 100,
            ..QueryFootprint::default()
        });
        let hot = model.price(&QueryFootprint {
            pages_hot: 100,
            ..QueryFootprint::default()
        });
        assert!(cold > hot);
    }

    #[test]
    fn merge_adds_counters() {
        let a = QueryFootprint {
            rows_scanned: 10,
            pages_cold: 1,
            ..QueryFootprint::default()
        };
        let b = QueryFootprint {
            rows_scanned: 5,
            pages_hot: 2,
            ..QueryFootprint::default()
        };
        let m = a.merge(b);
        assert_eq!(m.rows_scanned, 15);
        assert_eq!(m.pages_cold, 1);
        assert_eq!(m.pages_hot, 2);
    }

    #[test]
    fn startup_floor_applies_to_empty_queries() {
        let model = LinearCostModel::new(CostParams::disk_default());
        let cost = model.price(&QueryFootprint::default());
        assert_eq!(cost.as_micros(), 1_200);
    }
}
