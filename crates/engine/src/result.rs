//! Query results: row sets and histograms.

use crate::value::Value;

/// One projected output row.
pub type Row = Vec<Value>;

/// A histogram result: per-bin counts, ordered by bin index.
///
/// This is the result shape of the crossfiltering queries
/// (`SELECT ROUND(..), COUNT(*) ... GROUP BY 1 ORDER BY 1`) and the input
/// to the KL-divergence optimization in `ids-opt`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram from per-bin counts.
    pub fn from_counts(counts: Vec<u64>) -> Histogram {
        Histogram { counts }
    }

    /// An all-zero histogram with `bins` buckets.
    pub fn zeros(bins: usize) -> Histogram {
        Histogram {
            counts: vec![0; bins],
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total count across bins.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Increments a bin (used by the aggregator). Out-of-range bins are
    /// ignored rather than panicking — the bin spec already clamps, so a
    /// miss here means a malformed caller, not a user error.
    pub fn bump(&mut self, bin: usize) {
        if let Some(c) = self.counts.get_mut(bin) {
            *c += 1;
        }
    }

    /// Normalizes to a probability distribution. Empty histograms
    /// normalize to uniform, so downstream divergence computations stay
    /// finite.
    pub fn to_distribution(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            let n = self.bins().max(1);
            return vec![1.0 / n as f64; self.bins()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// The result of executing a [`crate::Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResultSet {
    /// Projected rows (Select / Join queries).
    Rows(Vec<Row>),
    /// Binned counts (Histogram queries).
    Histogram(Histogram),
    /// A single count (Count queries).
    Count(u64),
}

impl ResultSet {
    /// Number of result rows: row count, bin count, or 1 for a scalar.
    pub fn len(&self) -> usize {
        match self {
            ResultSet::Rows(r) => r.len(),
            ResultSet::Histogram(h) => h.bins(),
            ResultSet::Count(_) => 1,
        }
    }

    /// `true` for an empty row set or all-zero histogram.
    pub fn is_empty(&self) -> bool {
        match self {
            ResultSet::Rows(r) => r.is_empty(),
            ResultSet::Histogram(h) => h.total() == 0,
            ResultSet::Count(c) => *c == 0,
        }
    }

    /// The rows, if this is a row result.
    pub fn rows(&self) -> Option<&[Row]> {
        match self {
            ResultSet::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The histogram, if this is a histogram result.
    pub fn histogram(&self) -> Option<&Histogram> {
        match self {
            ResultSet::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// The scalar count, if this is a count result.
    pub fn scalar_count(&self) -> Option<u64> {
        match self {
            ResultSet::Count(c) => Some(*c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_total() {
        let mut h = Histogram::zeros(3);
        h.bump(0);
        h.bump(2);
        h.bump(2);
        assert_eq!(h.counts(), &[1, 0, 2]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bins(), 3);
    }

    #[test]
    fn distribution_normalizes() {
        let h = Histogram::from_counts(vec![1, 3]);
        let d = h.to_distribution();
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[1] - 0.75).abs() < 1e-12);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_uniform() {
        let h = Histogram::zeros(4);
        let d = h.to_distribution();
        assert!(d.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn result_set_accessors() {
        let rows = ResultSet::Rows(vec![vec![Value::Int(1)]]);
        assert_eq!(rows.len(), 1);
        assert!(!rows.is_empty());
        assert!(rows.rows().is_some());
        assert!(rows.histogram().is_none());

        let h = ResultSet::Histogram(Histogram::zeros(5));
        assert_eq!(h.len(), 5);
        assert!(h.is_empty());

        let c = ResultSet::Count(0);
        assert!(c.is_empty());
        assert_eq!(c.scalar_count(), Some(0));
    }
}
