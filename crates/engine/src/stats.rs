//! Table statistics used for selectivity estimation by the cost model.

use std::collections::HashSet;
use std::sync::Arc;

use crate::column::Column;

/// Per-column summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Minimum numeric value (string columns report `None`).
    pub min: Option<f64>,
    /// Maximum numeric value (string columns report `None`).
    pub max: Option<f64>,
    /// Number of distinct values (exact).
    pub distinct: usize,
}

/// Statistics for every column of a table, computed once at build time.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes statistics for the given named columns.
    pub fn compute(names: &[Arc<str>], columns: &[Column]) -> TableStats {
        let columns = names
            .iter()
            .zip(columns.iter())
            .map(|(name, col)| {
                let (min, max, distinct) = match col {
                    Column::Int(v) => {
                        let min = v.iter().min().map(|&m| m as f64);
                        let max = v.iter().max().map(|&m| m as f64);
                        let distinct = v.iter().collect::<HashSet<_>>().len();
                        (min, max, distinct)
                    }
                    Column::Float(v) => {
                        let mut min = f64::INFINITY;
                        let mut max = f64::NEG_INFINITY;
                        for &x in v.iter() {
                            min = min.min(x);
                            max = max.max(x);
                        }
                        let distinct = v.iter().map(|x| x.to_bits()).collect::<HashSet<_>>().len();
                        if v.is_empty() {
                            (None, None, 0)
                        } else {
                            (Some(min), Some(max), distinct)
                        }
                    }
                    Column::Str { codes, dict } => {
                        let _ = codes;
                        (None, None, dict.len())
                    }
                };
                ColumnStats {
                    name: name.to_string(),
                    min,
                    max,
                    distinct,
                }
            })
            .collect();
        TableStats { columns }
    }

    /// Statistics for a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Iterates over all per-column stats.
    pub fn iter(&self) -> impl Iterator<Item = &ColumnStats> {
        self.columns.iter()
    }

    /// Estimated fraction of rows a numeric range predicate on `column`
    /// selects, assuming a uniform distribution between min and max. Falls
    /// back to `1.0` when statistics are unavailable — the conservative
    /// choice for a cost model charging scan work.
    pub fn range_selectivity(&self, column: &str, lo: f64, hi: f64) -> f64 {
        let Some(stats) = self.column(column) else {
            return 1.0;
        };
        let (Some(min), Some(max)) = (stats.min, stats.max) else {
            return 1.0;
        };
        if max <= min {
            return 1.0;
        }
        let lo = lo.max(min);
        let hi = hi.min(max);
        ((hi - lo) / (max - min)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;

    fn stats() -> TableStats {
        let names: Vec<Arc<str>> = vec![Arc::from("a"), Arc::from("b"), Arc::from("c")];
        let cols = vec![
            ColumnBuilder::int([1, 5, 5, 9]).build(),
            ColumnBuilder::float([0.0, 10.0, 5.0, 5.0]).build(),
            ColumnBuilder::str(["x", "y", "x", "z"]).build(),
        ];
        TableStats::compute(&names, &cols)
    }

    #[test]
    fn min_max_distinct() {
        let s = stats();
        let a = s.column("a").unwrap();
        assert_eq!((a.min, a.max, a.distinct), (Some(1.0), Some(9.0), 3));
        let b = s.column("b").unwrap();
        assert_eq!((b.min, b.max, b.distinct), (Some(0.0), Some(10.0), 3));
        let c = s.column("c").unwrap();
        assert_eq!((c.min, c.max, c.distinct), (None, None, 3));
    }

    #[test]
    fn selectivity_estimates() {
        let s = stats();
        assert!((s.range_selectivity("b", 0.0, 5.0) - 0.5).abs() < 1e-12);
        assert!((s.range_selectivity("b", -100.0, 100.0) - 1.0).abs() < 1e-12);
        assert_eq!(s.range_selectivity("b", 7.0, 3.0), 0.0);
        // Unknown column or non-numeric → conservative 1.0.
        assert_eq!(s.range_selectivity("zzz", 0.0, 1.0), 1.0);
        assert_eq!(s.range_selectivity("c", 0.0, 1.0), 1.0);
    }

    #[test]
    fn empty_float_column() {
        let names: Vec<Arc<str>> = vec![Arc::from("e")];
        let cols = vec![ColumnBuilder::float([]).build()];
        let s = TableStats::compute(&names, &cols);
        let e = s.column("e").unwrap();
        assert_eq!((e.min, e.max, e.distinct), (None, None, 0));
    }
}
