//! Progressive (online-aggregation-style) query execution.
//!
//! Section 3.1.1 of the paper singles out progressive rendering — "online
//! aggregation, where approximate results with increasing accuracy over
//! time are presented to the user" and Incvisage's incrementally refining
//! visualizations — as the payoff of measuring latency at fine
//! granularity. This module executes histogram and count queries by
//! block-sampled online aggregation over the vectorized kernels: a
//! seeded deterministic permutation of the table's zone-map blocks is
//! consumed batch by batch, and each refinement step carries a
//! full-population estimate, per-bin confidence intervals, and a sound
//! absolute error bound. At 100% of blocks the accumulated answer is
//! byte-identical to the exact kernel answer (per-block `u64` adds
//! commute, so permutation order is invisible).
//!
//! Two error figures ride on every [`Refinement`]:
//!
//! * [`Refinement::intervals`] — per-bin confidence intervals at the
//!   configured coverage, half-width `min(serfling, unseen_rows)` where
//!   `serfling` is a Serfling/Hoeffding-style without-replacement bound
//!   over the sampled blocks. These are *probabilistic*: the oracle
//!   checks they bracket the truth at the configured coverage rate.
//! * [`Refinement::error_bound`] — a *deterministic* absolute bound:
//!   with `r` of `n` rows covered, every estimated value is within
//!   `n - r` of the truth before rounding (the estimate inflates the
//!   seen count by at most the unseen mass, and can miss at most the
//!   unseen mass), plus `0.5` for integer rounding of the estimate.
//!   It is exactly `0.0` on the final refinement.

use ids_simclock::rng::SimRng;
use ids_simclock::SimDuration;

use crate::backend::Database;
use crate::column::ZONE_BLOCK_ROWS;
use crate::cost::{CostModel, CostParams, LinearCostModel, QueryFootprint};
use crate::error::{EngineError, EngineResult};
use crate::kernels::{self, KernelOptions, KernelStats, SelectionVector};
use crate::query::{BinSpec, Query};
use crate::result::{Histogram, ResultSet};
use crate::table::Table;

/// Selection-vector words per zone-map block (1024 rows / 64 bits).
const WORDS_PER_BLOCK: usize = ZONE_BLOCK_ROWS / 64;

/// Default seed for the deterministic block permutation.
const DEFAULT_SEED: u64 = 0x5EED_B10C;

/// A closed interval `[lo, hi]` around one estimated value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint (clamped at zero for counts).
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// A zero-width interval pinned at `v` (an exact answer).
    pub fn exact(v: f64) -> ConfidenceInterval {
        ConfidenceInterval { lo: v, hi: v }
    }

    /// `true` if `x` lies inside the interval (endpoints included).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// One refinement step of a progressive execution.
#[derive(Debug, Clone)]
pub struct Refinement {
    /// Fraction of the table's rows covered so far, in `(0, 1]`.
    pub fraction: f64,
    /// Estimated result, scaled to the full population (rounded).
    pub estimate: ResultSet,
    /// One confidence interval per estimated value (per histogram bin,
    /// or a single interval for a count), centered on the unrounded
    /// estimate.
    pub intervals: Vec<ConfidenceInterval>,
    /// Deterministic absolute error bound: every reported value is
    /// within this many rows of the exact answer. `0.0` on the final
    /// refinement.
    pub error_bound: f64,
    /// Cumulative virtual time spent up to (and including) this step.
    pub elapsed: SimDuration,
}

/// A prepared progressive run: validated query shape, the full
/// selection mask (cheap vectorized work; virtual cost is charged per
/// block as the scan progresses), and the seeded block permutation.
struct Prepared {
    table: Table,
    selected: SelectionVector,
    /// Bin spec plus its column index, for histogram queries.
    binned: Option<(BinSpec, usize)>,
    condition_count: usize,
    blocks: Vec<usize>,
    n: usize,
    total_blocks: usize,
}

/// Progressive executor over a database.
#[derive(Debug)]
pub struct ProgressiveExecutor {
    db: Database,
    model: LinearCostModel,
    /// Sample fractions at which estimates are emitted, ascending,
    /// ending at 1.0.
    schedule: Vec<f64>,
    /// Seed for the deterministic block permutation.
    seed: u64,
    /// Target coverage of the per-bin confidence intervals.
    confidence: f64,
}

impl ProgressiveExecutor {
    /// Creates an executor with the default doubling schedule
    /// (1% → 2% → 4% → ... → 100%), memory-regime costs, the default
    /// permutation seed, and 95% confidence intervals.
    pub fn new(db: Database) -> ProgressiveExecutor {
        let mut schedule = Vec::new();
        let mut f = 0.01;
        while f < 1.0 {
            schedule.push(f);
            f *= 2.0;
        }
        schedule.push(1.0);
        ProgressiveExecutor {
            db,
            model: LinearCostModel::new(CostParams::mem_default()),
            schedule,
            seed: DEFAULT_SEED,
            confidence: 0.95,
        }
    }

    /// Overrides the refinement schedule (fractions in `(0, 1]`,
    /// ascending; a final `1.0` is appended if missing). Fractions are
    /// quantized up to whole zone-map blocks, so two nearby fractions
    /// may collapse into one step on small tables.
    pub fn with_schedule(mut self, mut schedule: Vec<f64>) -> ProgressiveExecutor {
        schedule.retain(|f| *f > 0.0 && *f <= 1.0);
        schedule.sort_by(f64::total_cmp);
        schedule.dedup();
        if schedule.last().copied() != Some(1.0) {
            schedule.push(1.0);
        }
        self.schedule = schedule;
        self
    }

    /// Overrides the block-permutation seed. The seed changes which
    /// blocks feed early estimates but never the final answer.
    pub fn with_seed(mut self, seed: u64) -> ProgressiveExecutor {
        self.seed = seed;
        self
    }

    /// Overrides the confidence-interval coverage target (clamped to
    /// `[0.5, 0.9999]`).
    pub fn with_confidence(mut self, confidence: f64) -> ProgressiveExecutor {
        self.confidence = confidence.clamp(0.5, 0.9999);
        self
    }

    /// Executes `query` progressively, returning every refinement step.
    ///
    /// Blocks are consumed in a seeded deterministic permutation; the
    /// step at 100% of blocks is byte-identical to the exact kernel
    /// answer regardless of seed.
    pub fn run(&self, query: &Query) -> EngineResult<Vec<Refinement>> {
        let prep = self.prepare(query)?;
        if prep.total_blocks == 0 {
            return Ok(vec![self.empty_refinement(&prep)]);
        }
        let mut steps: Vec<usize> = self
            .schedule
            .iter()
            .map(|f| (((prep.total_blocks as f64) * f).ceil() as usize).clamp(1, prep.total_blocks))
            .collect();
        steps.dedup();
        Ok(self.refine(&prep, &steps))
    }

    /// Executes `query` under a latency budget: consumes as many
    /// permuted blocks as `budget / exact_cost` pays for (at least one)
    /// and returns that single best-so-far refinement. `elapsed` is
    /// `exact_cost` scaled by the covered row fraction, so a charged
    /// deadline answer always fits the budget whenever at least one
    /// block's worth of budget was available.
    pub fn run_bounded(
        &self,
        query: &Query,
        exact_cost: SimDuration,
        budget: SimDuration,
    ) -> EngineResult<Refinement> {
        let prep = self.prepare(query)?;
        if prep.total_blocks == 0 {
            return Ok(self.empty_refinement(&prep));
        }
        let budget_frac = if exact_cost.is_zero() {
            1.0
        } else {
            budget.as_secs_f64() / exact_cost.as_secs_f64()
        };
        let paid_rows = budget_frac * prep.n as f64;
        let m = ((paid_rows / ZONE_BLOCK_ROWS as f64).floor() as usize).clamp(1, prep.total_blocks);
        let mut out = self.refine(&prep, &[m]);
        let mut refinement = match out.pop() {
            Some(r) => r,
            None => self.empty_refinement(&prep),
        };
        refinement.elapsed = exact_cost.mul_f64(refinement.fraction);
        Ok(refinement)
    }

    /// Validates the query shape (mirroring the exact executor's
    /// checks) and builds the selection mask and block permutation.
    fn prepare(&self, query: &Query) -> EngineResult<Prepared> {
        let (table_name, filter, bins) = match query {
            Query::Count { table, filter } => (table, filter, None),
            Query::Histogram {
                table,
                bins,
                filter,
            } => (table, filter, Some(bins.clone())),
            _ => {
                return Err(EngineError::TypeMismatch {
                    column: query.table().to_string(),
                    expected: "a COUNT or histogram query for progressive execution",
                })
            }
        };
        let table = self.db.table(table_name)?;
        let mut binned = None;
        if let Some(b) = bins {
            if b.bins == 0 {
                return Err(EngineError::InvalidBinSpec("zero bins".into()));
            }
            if b.width() <= 0.0 || b.width().is_nan() {
                return Err(EngineError::InvalidBinSpec(format!(
                    "non-positive width over [{}, {}]",
                    b.min, b.max
                )));
            }
            let idx = table.column_index(&b.column)?;
            if !table.column_at(idx).data_type().is_numeric() {
                return Err(EngineError::TypeMismatch {
                    column: b.column.to_string(),
                    expected: "numeric column for binning",
                });
            }
            binned = Some((b, idx));
        }
        let opts = KernelOptions::default();
        let mut stats = KernelStats::default();
        let selected = kernels::select_vector_with(&table, filter, &opts, &mut stats)?;
        let n = table.rows();
        let total_blocks = n.div_ceil(ZONE_BLOCK_ROWS);
        let mut blocks: Vec<usize> = (0..total_blocks).collect();
        SimRng::seed(self.seed)
            .split("progressive/blocks")
            .shuffle(&mut blocks);
        let condition_count = filter.condition_count();
        Ok(Prepared {
            table,
            selected,
            binned,
            condition_count,
            blocks,
            n,
            total_blocks,
        })
    }

    /// The exact (and only possible) answer over an empty table.
    fn empty_refinement(&self, prep: &Prepared) -> Refinement {
        let (estimate, intervals, groups) = match &prep.binned {
            Some((bins, _)) => {
                let buckets = bins.bucket_count();
                (
                    ResultSet::Histogram(Histogram::zeros(buckets)),
                    vec![ConfidenceInterval::exact(0.0); buckets],
                    buckets as u64,
                )
            }
            None => (ResultSet::Count(0), vec![ConfidenceInterval::exact(0.0)], 1),
        };
        let footprint = QueryFootprint {
            groups,
            rows_output: groups,
            ..QueryFootprint::default()
        };
        Refinement {
            fraction: 1.0,
            estimate,
            intervals,
            error_bound: 0.0,
            elapsed: self.model.price(&footprint),
        }
    }

    /// Consumes permuted blocks up to each cumulative block count in
    /// `steps` (ascending, deduplicated, last ≤ `total_blocks`),
    /// emitting one refinement per step.
    fn refine(&self, prep: &Prepared, steps: &[usize]) -> Vec<Refinement> {
        let opts = KernelOptions::default();
        let mut stats = KernelStats::default();
        let mut hist = prep
            .binned
            .as_ref()
            .map(|(bins, _)| Histogram::zeros(bins.bucket_count()));
        let mut matched = 0u64;
        let mut covered_rows = 0usize;
        let mut cursor = 0usize;
        let mut elapsed = SimDuration::ZERO;
        let mut out = Vec::with_capacity(steps.len());
        for (step, &m) in steps.iter().enumerate() {
            let new_blocks = m.saturating_sub(cursor) as u64;
            let mut new_rows = 0usize;
            let mut new_matched = 0u64;
            while cursor < m {
                let b = prep.blocks[cursor];
                let start = b * ZONE_BLOCK_ROWS;
                let end = (start + ZONE_BLOCK_ROWS).min(prep.n);
                if let (Some(h), Some((bins, idx))) = (hist.as_mut(), prep.binned.as_ref()) {
                    kernels::fused_filter_bin_range(
                        prep.table.column_at(*idx),
                        prep.table.zone_map_at(*idx),
                        &prep.selected,
                        bins,
                        &opts,
                        &mut stats,
                        start,
                        end,
                        h,
                    );
                }
                new_matched += block_popcount(&prep.selected, b);
                new_rows += end - start;
                cursor += 1;
            }
            matched += new_matched;
            covered_rows += new_rows;

            let fraction = covered_rows as f64 / prep.n as f64;
            let scale = prep.n as f64 / covered_rows as f64;
            let raw = match &hist {
                Some(h) => ResultSet::Histogram(h.clone()),
                None => ResultSet::Count(matched),
            };
            let half = self.half_width(m, prep.total_blocks, prep.n, covered_rows);
            let unseen = (prep.n - covered_rows) as f64;
            let error_bound = if m >= prep.total_blocks {
                0.0
            } else {
                unseen + 0.5
            };
            let centers: Vec<f64> = match &raw {
                ResultSet::Histogram(h) => h.counts().iter().map(|&c| c as f64 * scale).collect(),
                ResultSet::Count(c) => vec![*c as f64 * scale],
                ResultSet::Rows(_) => Vec::new(),
            };
            let intervals = centers
                .iter()
                .map(|&c| ConfidenceInterval {
                    lo: (c - half).max(0.0),
                    hi: c + half,
                })
                .collect();

            let groups = match &prep.binned {
                Some((bins, _)) => bins.bucket_count() as u64,
                None => 1,
            };
            let footprint = QueryFootprint {
                rows_scanned: new_rows as u64,
                rows_matched: new_matched,
                rows_aggregated: new_matched,
                groups,
                rows_output: groups,
                predicate_evals: new_rows as u64 * prep.condition_count as u64,
                blocks_scanned: new_blocks,
                ..QueryFootprint::default()
            };
            let mut step_cost = self.model.price(&footprint);
            if step > 0 {
                // One cursor, one query: startup is paid once, not per
                // refinement.
                step_cost = step_cost.saturating_sub(SimDuration::from_micros(
                    self.model.params.startup_ns / 1_000,
                ));
            }
            elapsed += step_cost;

            out.push(Refinement {
                fraction,
                estimate: scale_result(raw, scale),
                intervals,
                error_bound,
                elapsed,
            });
        }
        out
    }

    /// Confidence-interval half-width after `m` of `total` blocks: the
    /// tighter of a Serfling/Hoeffding without-replacement bound (each
    /// block contributes at most [`ZONE_BLOCK_ROWS`] rows to any bin)
    /// and the deterministic unseen-rows bound.
    fn half_width(&self, m: usize, total: usize, n: usize, covered: usize) -> f64 {
        if m >= total {
            return 0.0;
        }
        let unseen = (n - covered) as f64;
        let delta = (1.0 - self.confidence).clamp(1e-9, 0.5);
        let mf = m as f64;
        let tf = total as f64;
        let serfling = tf
            * ZONE_BLOCK_ROWS as f64
            * ((1.0 - (mf - 1.0) / tf) * (2.0 / delta).ln() / (2.0 * mf)).sqrt();
        serfling.min(unseen)
    }
}

/// Popcount of the selection mask restricted to one zone-map block
/// (the tail word is already masked, so no edge handling is needed).
fn block_popcount(sel: &SelectionVector, block: usize) -> u64 {
    let words = sel.words();
    let start = (block * WORDS_PER_BLOCK).min(words.len());
    let end = (start + WORDS_PER_BLOCK).min(words.len());
    words[start..end]
        .iter()
        .map(|w| w.count_ones() as u64)
        .sum()
}

/// The aggregate a scaled value represents. Only row-proportional
/// aggregates (counts, sums) may be extrapolated linearly from a
/// sample; a sample mean already estimates the population mean, and
/// extrema over a sample are simply the observed extrema — scaling
/// any of them would manufacture data that was never seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    /// `COUNT(*)` — scales linearly with the sampled fraction.
    Count,
    /// `SUM(col)` — scales linearly with the sampled fraction.
    Sum,
    /// `AVG(col)` — the sample mean is already the estimate.
    Mean,
    /// `MIN(col)` — never extrapolated.
    Min,
    /// `MAX(col)` — never extrapolated.
    Max,
}

/// Scales one aggregate value from a sample to a full-population
/// estimate, respecting the aggregate's semantics: counts and sums
/// scale linearly, means and extrema pass through unchanged.
pub fn scale_aggregate(kind: AggregateKind, value: f64, scale: f64) -> f64 {
    match kind {
        AggregateKind::Count | AggregateKind::Sum => value * scale,
        AggregateKind::Mean | AggregateKind::Min | AggregateKind::Max => value,
    }
}

/// Scales a count or histogram result by `scale`, rounding each value.
/// This is how a partial aggregate over `fraction` of the rows becomes
/// a full-population estimate (`scale = 1 / fraction`). Row results
/// are *truncated* when scaling down (a cut-off scan saw a prefix) and
/// never inflated when scaling up — rows, unlike counts, cannot be
/// extrapolated (see [`scale_aggregate`]).
pub fn scale_result(partial: ResultSet, scale: f64) -> ResultSet {
    if scale == 1.0 {
        return partial;
    }
    match partial {
        ResultSet::Count(c) => ResultSet::Count((c as f64 * scale).round() as u64),
        ResultSet::Histogram(h) => ResultSet::Histogram(Histogram::from_counts(
            h.counts()
                .iter()
                .map(|&c| (c as f64 * scale).round() as u64)
                .collect(),
        )),
        ResultSet::Rows(rows) => {
            if scale < 1.0 {
                let keep = (rows.len() as f64 * scale).round() as usize;
                ResultSet::Rows(rows.into_iter().take(keep).collect())
            } else {
                ResultSet::Rows(rows)
            }
        }
    }
}

/// Simulates answering from only `fraction` of the data: the exact
/// result is scaled down to the sample a truncated scan would have seen
/// (with integer rounding), then extrapolated back up. The round trip
/// reintroduces the estimation error a real progressive cutoff pays, so
/// degraded answers are approximately — not suspiciously exactly — right.
pub fn degrade_result(exact: ResultSet, fraction: f64) -> ResultSet {
    let fraction = fraction.clamp(f64::MIN_POSITIVE, 1.0);
    if fraction >= 1.0 {
        return exact;
    }
    scale_result(scale_result(exact, fraction), 1.0 / fraction)
}

/// Mean squared error of a refinement's estimate against the exact
/// result, normalized per bin (for histograms) or absolute (for counts).
pub fn refinement_error(estimate: &ResultSet, exact: &ResultSet) -> f64 {
    match (estimate, exact) {
        (ResultSet::Count(a), ResultSet::Count(b)) => {
            let d = *a as f64 - *b as f64;
            d * d
        }
        (ResultSet::Histogram(a), ResultSet::Histogram(b)) if a.bins() == b.bins() => {
            a.counts()
                .iter()
                .zip(b.counts())
                .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
                .sum::<f64>()
                / a.bins().max(1) as f64
        }
        _ => f64::INFINITY,
    }
}

/// `true` if a progressive run honors the anytime contract: the final
/// refinement covers the whole table, reports a zero error bound, and
/// equals the exact answer bit-for-bit; and across the sequence the
/// elapsed cost and covered fraction never decrease while the reported
/// error bound never increases. The bound — not the empirical error —
/// is what must shrink: empirical error is not monotone under sampling.
pub fn is_anytime_consistent(refinements: &[Refinement], exact: &ResultSet) -> bool {
    let Some(last) = refinements.last() else {
        return false;
    };
    if last.fraction != 1.0 || last.error_bound != 0.0 || last.estimate != *exact {
        return false;
    }
    refinements.windows(2).all(|w| {
        w[0].elapsed <= w[1].elapsed
            && w[0].fraction <= w[1].fraction
            && w[0].error_bound >= w[1].error_bound
    })
}

/// Fraction of (refinement, value) pairs whose confidence interval
/// brackets the true value. `1.0` when there is nothing to check,
/// `0.0` on a shape mismatch.
pub fn interval_coverage(refinements: &[Refinement], exact: &ResultSet) -> f64 {
    let truth: Vec<f64> = match exact {
        ResultSet::Count(c) => vec![*c as f64],
        ResultSet::Histogram(h) => h.counts().iter().map(|&c| c as f64).collect(),
        ResultSet::Rows(_) => return 1.0,
    };
    let mut total = 0usize;
    let mut covered = 0usize;
    for r in refinements {
        if r.intervals.len() != truth.len() {
            return 0.0;
        }
        for (iv, &t) in r.intervals.iter().zip(&truth) {
            total += 1;
            if iv.contains(t) {
                covered += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        covered as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::predicate::Predicate;
    use crate::query::BinSpec;
    use crate::result::Row;
    use crate::table::TableBuilder;
    use crate::value::Value;
    use crate::{Backend, MemBackend};

    fn shuffled_db(rows: usize, seed: u64) -> Database {
        // Shuffled values so block samples are unbiased.
        let mut values: Vec<f64> = (0..rows).map(|i| (i % 500) as f64).collect();
        SimRng::seed(seed).shuffle(&mut values);
        let db = Database::new();
        db.register(
            TableBuilder::new("pts")
                .column("x", ColumnBuilder::float(values))
                .build()
                .unwrap(),
        );
        db
    }

    fn query() -> Query {
        Query::histogram(
            "pts",
            BinSpec::new("x", 0.0, 500.0, 10),
            Predicate::between("x", 50.0, 450.0),
        )
    }

    #[test]
    fn final_refinement_is_exact() {
        let db = shuffled_db(20_000, 1);
        let exact = MemBackend::over(db.clone())
            .execute(&query())
            .unwrap()
            .result;
        let refinements = ProgressiveExecutor::new(db).run(&query()).unwrap();
        let last = refinements.last().unwrap();
        assert_eq!(last.fraction, 1.0);
        assert_eq!(last.estimate, exact);
        assert_eq!(last.error_bound, 0.0);
        assert!(is_anytime_consistent(&refinements, &exact));
    }

    #[test]
    fn early_estimates_are_cheap_and_close() {
        let db = shuffled_db(50_000, 2);
        let exact = MemBackend::over(db.clone())
            .execute(&query())
            .unwrap()
            .result;
        let refinements = ProgressiveExecutor::new(db).run(&query()).unwrap();
        let first = &refinements[0];
        let last = refinements.last().unwrap();
        // The first estimate (one block) costs a small fraction of the
        // full run (the fixed startup keeps it from being strictly
        // proportional).
        assert!(first.elapsed.as_secs_f64() < last.elapsed.as_secs_f64() * 0.15);
        // And its relative error per bin is modest on shuffled data.
        let total = exact.histogram().unwrap().total() as f64;
        let rmse = refinement_error(&first.estimate, &exact).sqrt();
        assert!(
            rmse / (total / 11.0) < 0.35,
            "one-block sample rmse {rmse:.0} vs mean bin {:.0}",
            total / 11.0
        );
    }

    #[test]
    fn error_decreases_broadly_over_refinements() {
        let db = shuffled_db(50_000, 3);
        let exact = MemBackend::over(db.clone())
            .execute(&query())
            .unwrap()
            .result;
        let refinements = ProgressiveExecutor::new(db).run(&query()).unwrap();
        let errors: Vec<f64> = refinements
            .iter()
            .map(|r| refinement_error(&r.estimate, &exact))
            .collect();
        // Compare first to last quartile averages (sampling noise makes
        // strict monotonicity of the *empirical* error too strong).
        let q = errors.len() / 4;
        let head: f64 = errors[..q.max(1)].iter().sum::<f64>() / q.max(1) as f64;
        let tail: f64 = errors[errors.len() - q.max(1)..].iter().sum::<f64>() / q.max(1) as f64;
        assert!(tail < head, "errors {errors:?}");
        assert_eq!(*errors.last().unwrap(), 0.0);
        // The *reported* bound, by contrast, is strictly monotone.
        for w in refinements.windows(2) {
            assert!(w[0].error_bound >= w[1].error_bound);
        }
    }

    #[test]
    fn progressive_count_scales() {
        let db = shuffled_db(10_240, 4);
        let q = Query::count("pts", Predicate::between("x", 0.0, 249.0));
        let exact = MemBackend::over(db.clone()).execute(&q).unwrap().result;
        let refinements = ProgressiveExecutor::new(db).run(&q).unwrap();
        let last = refinements.last().unwrap();
        assert_eq!(last.estimate, exact);
        // Mid refinement is within 10% of the truth.
        let mid = &refinements[refinements.len() / 2];
        let est = mid.estimate.scalar_count().unwrap() as f64;
        let truth = exact.scalar_count().unwrap() as f64;
        assert!((est - truth).abs() / truth < 0.1, "est {est} truth {truth}");
    }

    #[test]
    fn custom_schedule_is_normalized() {
        // 20 whole blocks so the requested fractions land exactly on
        // block boundaries.
        let db = shuffled_db(20 * ZONE_BLOCK_ROWS, 5);
        let exec = ProgressiveExecutor::new(db).with_schedule(vec![0.5, 0.1, 0.1, 2.0, -0.3]);
        let refinements = exec.run(&Query::count("pts", Predicate::True)).unwrap();
        let fractions: Vec<f64> = refinements.iter().map(|r| r.fraction).collect();
        assert_eq!(fractions, vec![0.1, 0.5, 1.0]);
    }

    #[test]
    fn unsupported_shapes_rejected() {
        let db = shuffled_db(100, 6);
        let exec = ProgressiveExecutor::new(db);
        let select = Query::select("pts", vec![], Predicate::True, Some(5), 0);
        assert!(exec.run(&select).is_err());
    }

    #[test]
    fn intervals_bracket_truth_and_tighten() {
        let db = shuffled_db(64 * ZONE_BLOCK_ROWS, 7);
        let exact = MemBackend::over(db.clone())
            .execute(&query())
            .unwrap()
            .result;
        let refinements = ProgressiveExecutor::new(db).run(&query()).unwrap();
        let coverage = interval_coverage(&refinements, &exact);
        assert!(coverage >= 0.95, "coverage {coverage}");
        // Interval widths shrink as blocks accumulate.
        let widths: Vec<f64> = refinements.iter().map(|r| r.intervals[0].width()).collect();
        for w in widths.windows(2) {
            assert!(w[0] >= w[1], "widths {widths:?}");
        }
        assert_eq!(*widths.last().unwrap(), 0.0);
    }

    #[test]
    fn seed_changes_estimates_not_final_answer() {
        let rows = 32 * ZONE_BLOCK_ROWS;
        let a = ProgressiveExecutor::new(shuffled_db(rows, 8))
            .with_seed(1)
            .run(&query())
            .unwrap();
        let b = ProgressiveExecutor::new(shuffled_db(rows, 8))
            .with_seed(2)
            .run(&query())
            .unwrap();
        assert_eq!(
            a.last().unwrap().estimate,
            b.last().unwrap().estimate,
            "final answer is seed-independent"
        );
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.estimate != y.estimate || x.fraction != y.fraction),
            "different permutations produce different intermediate estimates"
        );
    }

    #[test]
    fn bounded_run_fits_budget_and_reports_bound() {
        let db = shuffled_db(64 * ZONE_BLOCK_ROWS, 9);
        let q = query();
        let exact = MemBackend::over(db.clone()).execute(&q).unwrap();
        let exact_cost = SimDuration::from_millis(100);
        let budget = SimDuration::from_millis(50);
        let r = ProgressiveExecutor::new(db)
            .run_bounded(&q, exact_cost, budget)
            .unwrap();
        assert!(r.elapsed <= budget, "elapsed {:?}", r.elapsed);
        assert!(r.fraction > 0.0 && r.fraction < 1.0);
        assert!(r.error_bound > 0.0 && r.error_bound.is_finite());
        // The deterministic bound really does bound the per-bin error.
        let exact_hist = exact.result.histogram().unwrap();
        let est_hist = r.estimate.histogram().unwrap();
        for (e, t) in est_hist.counts().iter().zip(exact_hist.counts()) {
            assert!((*e as f64 - *t as f64).abs() <= r.error_bound);
        }
    }

    #[test]
    fn bounded_run_with_generous_budget_is_exact() {
        let db = shuffled_db(4 * ZONE_BLOCK_ROWS, 10);
        let q = query();
        let exact = MemBackend::over(db.clone()).execute(&q).unwrap().result;
        let cost = SimDuration::from_millis(10);
        let r = ProgressiveExecutor::new(db)
            .run_bounded(&q, cost, cost)
            .unwrap();
        assert_eq!(r.fraction, 1.0);
        assert_eq!(r.estimate, exact);
        assert_eq!(r.error_bound, 0.0);
    }

    #[test]
    fn empty_table_yields_single_exact_refinement() {
        let db = Database::new();
        db.register(
            TableBuilder::new("pts")
                .column("x", ColumnBuilder::float(Vec::<f64>::new()))
                .build()
                .unwrap(),
        );
        let exact = MemBackend::over(db.clone())
            .execute(&query())
            .unwrap()
            .result;
        let refinements = ProgressiveExecutor::new(db).run(&query()).unwrap();
        assert_eq!(refinements.len(), 1);
        assert!(is_anytime_consistent(&refinements, &exact));
    }

    #[test]
    fn all_nan_column_is_exact_at_full_coverage() {
        let db = Database::new();
        db.register(
            TableBuilder::new("pts")
                .column("x", ColumnBuilder::float((0..3000).map(|_| f64::NAN)))
                .build()
                .unwrap(),
        );
        let exact = MemBackend::over(db.clone())
            .execute(&query())
            .unwrap()
            .result;
        let refinements = ProgressiveExecutor::new(db).run(&query()).unwrap();
        assert!(is_anytime_consistent(&refinements, &exact));
        assert_eq!(interval_coverage(&refinements, &exact), 1.0);
    }

    #[test]
    fn block_boundary_straddler_is_exact() {
        // 1025 rows: one full block plus a single-row tail block.
        let db = shuffled_db(ZONE_BLOCK_ROWS + 1, 11);
        let exact = MemBackend::over(db.clone())
            .execute(&query())
            .unwrap()
            .result;
        let refinements = ProgressiveExecutor::new(db).run(&query()).unwrap();
        assert!(is_anytime_consistent(&refinements, &exact));
    }

    #[test]
    fn scale_result_truncates_rows_instead_of_scaling() {
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Int(i as i64)]).collect();
        // Scaling down truncates to the prefix a cut-off scan saw.
        let down = scale_result(ResultSet::Rows(rows.clone()), 0.4);
        assert_eq!(down.rows().unwrap().len(), 4);
        // Scaling up never invents rows.
        let up = scale_result(ResultSet::Rows(rows.clone()), 2.5);
        assert_eq!(up.rows().unwrap().len(), 10);
        // The degrade round trip therefore net-truncates.
        let degraded = degrade_result(ResultSet::Rows(rows), 0.4);
        assert_eq!(degraded.rows().unwrap().len(), 4);
    }

    #[test]
    fn scale_aggregate_is_aggregate_aware() {
        // Counts and sums extrapolate linearly.
        assert_eq!(scale_aggregate(AggregateKind::Count, 10.0, 4.0), 40.0);
        assert_eq!(scale_aggregate(AggregateKind::Sum, 2.5, 4.0), 10.0);
        // A sample mean is already the population estimate, and extrema
        // must never be extrapolated.
        assert_eq!(scale_aggregate(AggregateKind::Mean, 3.5, 4.0), 3.5);
        assert_eq!(scale_aggregate(AggregateKind::Min, -7.0, 4.0), -7.0);
        assert_eq!(scale_aggregate(AggregateKind::Max, 9.0, 4.0), 9.0);
    }
}
