//! Progressive (online-aggregation-style) query execution.
//!
//! Section 3.1.1 of the paper singles out progressive rendering — "online
//! aggregation, where approximate results with increasing accuracy over
//! time are presented to the user" and Incvisage's incrementally refining
//! visualizations — as the payoff of measuring latency at fine
//! granularity. This module executes histogram and count queries over a
//! growing row sample, yielding a refinement sequence: each step has a
//! virtual-time cost proportional to the rows it consumed and an
//! estimated result scaled to the full population.

use ids_simclock::SimDuration;

use crate::backend::Database;
use crate::cost::{CostModel, CostParams, LinearCostModel, QueryFootprint};
use crate::error::{EngineError, EngineResult};
use crate::query::Query;
use crate::result::{Histogram, ResultSet};

/// One refinement step of a progressive execution.
#[derive(Debug, Clone)]
pub struct Refinement {
    /// Fraction of the table consumed so far, in `(0, 1]`.
    pub fraction: f64,
    /// Estimated result, scaled to the full population.
    pub estimate: ResultSet,
    /// Cumulative virtual time spent up to (and including) this step.
    pub elapsed: SimDuration,
}

/// Progressive executor over a database.
#[derive(Debug)]
pub struct ProgressiveExecutor {
    db: Database,
    model: LinearCostModel,
    /// Sample fractions at which estimates are emitted, ascending,
    /// ending at 1.0.
    schedule: Vec<f64>,
}

impl ProgressiveExecutor {
    /// Creates an executor with the default doubling schedule
    /// (1% → 2% → 4% → ... → 100%) and memory-regime costs.
    pub fn new(db: Database) -> ProgressiveExecutor {
        let mut schedule = Vec::new();
        let mut f = 0.01;
        while f < 1.0 {
            schedule.push(f);
            f *= 2.0;
        }
        schedule.push(1.0);
        ProgressiveExecutor {
            db,
            model: LinearCostModel::new(CostParams::mem_default()),
            schedule,
        }
    }

    /// Overrides the refinement schedule (fractions in `(0, 1]`,
    /// ascending; a final `1.0` is appended if missing).
    pub fn with_schedule(mut self, mut schedule: Vec<f64>) -> ProgressiveExecutor {
        schedule.retain(|f| *f > 0.0 && *f <= 1.0);
        schedule.sort_by(f64::total_cmp);
        schedule.dedup();
        if schedule.last().copied() != Some(1.0) {
            schedule.push(1.0);
        }
        self.schedule = schedule;
        self
    }

    /// Executes `query` progressively, returning every refinement step.
    ///
    /// Rows `0..fraction·n` form the sample at each step (the synthetic
    /// datasets are generated in random order, so a prefix is an
    /// unbiased sample). Counts and histogram bins are scaled by
    /// `1/fraction`.
    pub fn run(&self, query: &Query) -> EngineResult<Vec<Refinement>> {
        let (table_name, filter) = match query {
            Query::Count { table, filter } => (table.clone(), filter.clone()),
            Query::Histogram { table, filter, .. } => (table.clone(), filter.clone()),
            _ => {
                return Err(EngineError::TypeMismatch {
                    column: query.table().to_string(),
                    expected: "a COUNT or histogram query for progressive execution",
                })
            }
        };
        let table = self.db.table(&table_name)?;
        let n = table.rows();
        let _ = filter;

        let mut out = Vec::with_capacity(self.schedule.len());
        let mut elapsed = SimDuration::ZERO;
        let mut consumed_rows = 0usize;
        for (step, &fraction) in self.schedule.iter().enumerate() {
            let upto = ((n as f64) * fraction).round() as usize;
            let upto = upto.clamp(1, n);
            // Charge only the *new* rows this step consumes.
            let new_rows = upto.saturating_sub(consumed_rows);
            consumed_rows = upto;

            let partial = self.execute_prefix(query, &table, upto)?;
            let footprint = QueryFootprint {
                rows_scanned: new_rows as u64,
                rows_aggregated: new_rows as u64,
                rows_output: partial.len() as u64,
                ..QueryFootprint::default()
            };
            let mut step_cost = self.model.price(&footprint);
            if step > 0 {
                // One cursor, one query: startup is paid once, not per
                // refinement.
                step_cost = step_cost.saturating_sub(SimDuration::from_micros(
                    self.model.params.startup_ns / 1_000,
                ));
            }
            elapsed += step_cost;

            let scale = n as f64 / upto as f64;
            out.push(Refinement {
                fraction: upto as f64 / n as f64,
                estimate: scale_result(partial, scale),
                elapsed,
            });
        }
        Ok(out)
    }

    fn execute_prefix(
        &self,
        query: &Query,
        table: &crate::table::Table,
        upto: usize,
    ) -> EngineResult<ResultSet> {
        // Evaluate over rows 0..upto only.
        match query {
            Query::Count { filter, .. } => {
                let mut count = 0u64;
                for row in 0..upto {
                    if filter.matches(table, row)? {
                        count += 1;
                    }
                }
                Ok(ResultSet::Count(count))
            }
            Query::Histogram { bins, filter, .. } => {
                let col = table.column(&bins.column)?;
                let mut hist = Histogram::zeros(bins.bucket_count());
                for row in 0..upto {
                    if filter.matches(table, row)? {
                        if let Some(b) = col.f64_at(row).and_then(|x| bins.bin_of(x)) {
                            hist.bump(b);
                        }
                    }
                }
                Ok(ResultSet::Histogram(hist))
            }
            _ => unreachable!("shape checked in run()"),
        }
    }
}

/// Scales a count or histogram result by `scale`, rounding each value;
/// other result shapes pass through unchanged. This is how a partial
/// aggregate over `fraction` of the rows becomes a full-population
/// estimate (`scale = 1 / fraction`).
pub fn scale_result(partial: ResultSet, scale: f64) -> ResultSet {
    match partial {
        ResultSet::Count(c) => ResultSet::Count((c as f64 * scale).round() as u64),
        ResultSet::Histogram(h) => ResultSet::Histogram(Histogram::from_counts(
            h.counts()
                .iter()
                .map(|&c| (c as f64 * scale).round() as u64)
                .collect(),
        )),
        other => other,
    }
}

/// Simulates answering from only `fraction` of the data: the exact
/// result is scaled down to the sample a truncated scan would have seen
/// (with integer rounding), then extrapolated back up. The round trip
/// reintroduces the estimation error a real progressive cutoff pays, so
/// degraded answers are approximately — not suspiciously exactly — right.
pub fn degrade_result(exact: ResultSet, fraction: f64) -> ResultSet {
    let fraction = fraction.clamp(f64::MIN_POSITIVE, 1.0);
    if fraction >= 1.0 {
        return exact;
    }
    scale_result(scale_result(exact, fraction), 1.0 / fraction)
}

/// Mean squared error of a refinement's estimate against the exact
/// result, normalized per bin (for histograms) or absolute (for counts).
pub fn refinement_error(estimate: &ResultSet, exact: &ResultSet) -> f64 {
    match (estimate, exact) {
        (ResultSet::Count(a), ResultSet::Count(b)) => {
            let d = *a as f64 - *b as f64;
            d * d
        }
        (ResultSet::Histogram(a), ResultSet::Histogram(b)) if a.bins() == b.bins() => {
            a.counts()
                .iter()
                .zip(b.counts())
                .map(|(&x, &y)| (x as f64 - y as f64).powi(2))
                .sum::<f64>()
                / a.bins().max(1) as f64
        }
        _ => f64::INFINITY,
    }
}

/// `true` if a progressive run's final refinement matches exact
/// execution and intermediate errors are (weakly) non-increasing past
/// some small sample floor — the "increasing accuracy over time"
/// contract.
pub fn is_anytime_consistent(refinements: &[Refinement], exact: &ResultSet) -> bool {
    let Some(last) = refinements.last() else {
        return false;
    };
    if refinement_error(&last.estimate, exact) != 0.0 {
        return false;
    }
    refinements
        .windows(2)
        .all(|w| w[0].elapsed <= w[1].elapsed && w[0].fraction <= w[1].fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::predicate::Predicate;
    use crate::query::BinSpec;
    use crate::table::TableBuilder;
    use crate::{Backend, MemBackend};
    use ids_simclock::rng::SimRng;

    fn shuffled_db(rows: usize, seed: u64) -> Database {
        // Shuffled values so prefixes are unbiased samples.
        let mut values: Vec<f64> = (0..rows).map(|i| (i % 500) as f64).collect();
        SimRng::seed(seed).shuffle(&mut values);
        let db = Database::new();
        db.register(
            TableBuilder::new("pts")
                .column("x", ColumnBuilder::float(values))
                .build()
                .unwrap(),
        );
        db
    }

    fn query() -> Query {
        Query::histogram(
            "pts",
            BinSpec::new("x", 0.0, 500.0, 10),
            Predicate::between("x", 50.0, 450.0),
        )
    }

    #[test]
    fn final_refinement_is_exact() {
        let db = shuffled_db(20_000, 1);
        let exact = MemBackend::over(db.clone())
            .execute(&query())
            .unwrap()
            .result;
        let refinements = ProgressiveExecutor::new(db).run(&query()).unwrap();
        let last = refinements.last().unwrap();
        assert_eq!(last.fraction, 1.0);
        assert_eq!(last.estimate, exact);
        assert!(is_anytime_consistent(&refinements, &exact));
    }

    #[test]
    fn early_estimates_are_cheap_and_close() {
        let db = shuffled_db(50_000, 2);
        let exact = MemBackend::over(db.clone())
            .execute(&query())
            .unwrap()
            .result;
        let refinements = ProgressiveExecutor::new(db).run(&query()).unwrap();
        let first = &refinements[0];
        let last = refinements.last().unwrap();
        // The 1% estimate costs a small fraction of the full run (the
        // fixed startup keeps it from being a strict 1%).
        assert!(first.elapsed.as_secs_f64() < last.elapsed.as_secs_f64() * 0.15);
        // And its relative error per bin is modest on shuffled data.
        let total = exact.histogram().unwrap().total() as f64;
        let rmse = refinement_error(&first.estimate, &exact).sqrt();
        assert!(
            rmse / (total / 11.0) < 0.35,
            "1% sample rmse {rmse:.0} vs mean bin {:.0}",
            total / 11.0
        );
    }

    #[test]
    fn error_decreases_broadly_over_refinements() {
        let db = shuffled_db(50_000, 3);
        let exact = MemBackend::over(db.clone())
            .execute(&query())
            .unwrap()
            .result;
        let refinements = ProgressiveExecutor::new(db).run(&query()).unwrap();
        let errors: Vec<f64> = refinements
            .iter()
            .map(|r| refinement_error(&r.estimate, &exact))
            .collect();
        // Compare first to last quartile averages (sampling noise makes
        // strict monotonicity too strong).
        let q = errors.len() / 4;
        let head: f64 = errors[..q.max(1)].iter().sum::<f64>() / q.max(1) as f64;
        let tail: f64 = errors[errors.len() - q.max(1)..].iter().sum::<f64>() / q.max(1) as f64;
        assert!(tail < head, "errors {errors:?}");
        assert_eq!(*errors.last().unwrap(), 0.0);
    }

    #[test]
    fn progressive_count_scales() {
        let db = shuffled_db(10_000, 4);
        let q = Query::count("pts", Predicate::between("x", 0.0, 249.0));
        let exact = MemBackend::over(db.clone()).execute(&q).unwrap().result;
        let refinements = ProgressiveExecutor::new(db).run(&q).unwrap();
        let last = refinements.last().unwrap();
        assert_eq!(last.estimate, exact);
        // Mid refinement is within 10% of the truth.
        let mid = &refinements[refinements.len() / 2];
        let est = mid.estimate.scalar_count().unwrap() as f64;
        let truth = exact.scalar_count().unwrap() as f64;
        assert!((est - truth).abs() / truth < 0.1, "est {est} truth {truth}");
    }

    #[test]
    fn custom_schedule_is_normalized() {
        let db = shuffled_db(1_000, 5);
        let exec = ProgressiveExecutor::new(db).with_schedule(vec![0.5, 0.1, 0.1, 2.0, -0.3]);
        let refinements = exec.run(&Query::count("pts", Predicate::True)).unwrap();
        let fractions: Vec<f64> = refinements.iter().map(|r| r.fraction).collect();
        assert_eq!(fractions, vec![0.1, 0.5, 1.0]);
    }

    #[test]
    fn unsupported_shapes_rejected() {
        let db = shuffled_db(100, 6);
        let exec = ProgressiveExecutor::new(db);
        let select = Query::select("pts", vec![], Predicate::True, Some(5), 0);
        assert!(exec.run(&select).is_err());
    }
}
