//! Slotted-page layout for the simulated disk backend.
//!
//! The disk backend charges I/O per *page*, so it needs a mapping from
//! tables and row ranges to page identifiers. [`Pager`] computes that
//! mapping from each table's estimated row width; [`Page`] carries a
//! [`bytes::Bytes`] payload standing in for the on-disk image (the actual
//! query answers come from the columnar tables — the page bytes exist so
//! the buffer pool manages real memory with realistic footprints).

use bytes::Bytes;

/// Fixed page size, 8 KiB — the PostgreSQL default.
pub const PAGE_SIZE: usize = 8_192;

/// Identifies one page of one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Registered table this page belongs to.
    pub table: u32,
    /// Zero-based page number within the table.
    pub page_no: u32,
}

/// An in-memory image of a disk page.
#[derive(Debug, Clone)]
pub struct Page {
    /// Identity of the page.
    pub id: PageId,
    /// Raw page bytes (zero-filled stand-in for the row data).
    pub data: Bytes,
}

impl Page {
    /// Materializes a page image for `id`.
    pub fn materialize(id: PageId) -> Page {
        // A shared zeroed buffer would defeat the purpose of modelling
        // memory pressure; allocate per page like a real pool frame.
        Page {
            id,
            data: Bytes::from(vec![0u8; PAGE_SIZE]),
        }
    }
}

/// Maps row ranges of a table to page numbers.
#[derive(Debug, Clone, Copy)]
pub struct Pager {
    rows_per_page: usize,
    total_rows: usize,
}

impl Pager {
    /// Creates a pager for a table with `total_rows` rows of
    /// `row_width` bytes each.
    pub fn new(total_rows: usize, row_width: usize) -> Pager {
        let rows_per_page = (PAGE_SIZE / row_width.max(1)).max(1);
        Pager {
            rows_per_page,
            total_rows,
        }
    }

    /// Rows stored per page.
    pub fn rows_per_page(&self) -> usize {
        self.rows_per_page
    }

    /// Total number of pages for the table.
    pub fn page_count(&self) -> usize {
        self.total_rows.div_ceil(self.rows_per_page).max(1)
    }

    /// The page number holding `row`.
    pub fn page_of_row(&self, row: usize) -> usize {
        row / self.rows_per_page
    }

    /// Page numbers touched by scanning rows `start..end` (end exclusive).
    /// An empty range touches no pages.
    pub fn pages_for_range(&self, start: usize, end: usize) -> std::ops::Range<usize> {
        if end <= start {
            return 0..0;
        }
        let first = self.page_of_row(start);
        let last = self.page_of_row(end - 1);
        first..last + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_per_page_respects_width() {
        let p = Pager::new(1000, 64);
        assert_eq!(p.rows_per_page(), 128);
        assert_eq!(p.page_count(), 8); // 1000 / 128 = 7.8 → 8
    }

    #[test]
    fn page_of_row_boundaries() {
        let p = Pager::new(1000, 64);
        assert_eq!(p.page_of_row(0), 0);
        assert_eq!(p.page_of_row(127), 0);
        assert_eq!(p.page_of_row(128), 1);
    }

    #[test]
    fn pages_for_range() {
        let p = Pager::new(1000, 64);
        assert_eq!(p.pages_for_range(0, 128), 0..1);
        assert_eq!(p.pages_for_range(0, 129), 0..2);
        assert_eq!(p.pages_for_range(120, 140), 0..2);
        assert_eq!(p.pages_for_range(5, 5), 0..0);
        assert_eq!(p.pages_for_range(10, 5), 0..0);
    }

    #[test]
    fn degenerate_widths_are_clamped() {
        let p = Pager::new(10, 0);
        assert_eq!(p.rows_per_page(), PAGE_SIZE);
        let huge = Pager::new(10, PAGE_SIZE * 3);
        assert_eq!(huge.rows_per_page(), 1);
        assert_eq!(huge.page_count(), 10);
    }

    #[test]
    fn empty_table_has_one_page() {
        let p = Pager::new(0, 64);
        assert_eq!(p.page_count(), 1);
    }

    #[test]
    fn page_materializes_full_size() {
        let page = Page::materialize(PageId {
            table: 0,
            page_no: 3,
        });
        assert_eq!(page.data.len(), PAGE_SIZE);
        assert_eq!(page.id.page_no, 3);
    }
}
