//! Tables: named collections of equal-length columns.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::column::{Column, ColumnBuilder, ZoneMap};
use crate::error::{EngineError, EngineResult};
use crate::stats::TableStats;
use crate::value::{DataType, Value};

/// An immutable table: a schema plus columnar data, cheap to clone.
#[derive(Debug, Clone)]
pub struct Table {
    name: Arc<str>,
    column_names: Arc<[Arc<str>]>,
    columns: Arc<[Column]>,
    index: Arc<HashMap<Arc<str>, usize>>,
    rows: usize,
    stats: Arc<TableStats>,
    // Lazily built per-column zone maps (`None` once built for a string
    // column). Shared across clones, so the first query to touch a
    // column pays the build and every later query reuses it.
    zones: Arc<[OnceLock<Option<ZoneMap>>]>,
}

impl Table {
    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.column_names.iter().map(|s| s.as_ref())
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> EngineResult<&Column> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| EngineError::UnknownColumn {
                table: self.name.to_string(),
                column: name.to_string(),
            })
    }

    /// The positional index of a column.
    pub fn column_index(&self, name: &str) -> EngineResult<usize> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| EngineError::UnknownColumn {
                table: self.name.to_string(),
                column: name.to_string(),
            })
    }

    /// Column by position.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// The value at (`row`, `column name`).
    pub fn value(&self, row: usize, column: &str) -> EngineResult<Value> {
        Ok(self.column(column)?.value(row))
    }

    /// Per-column min/max/distinct statistics, computed once at build time.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The zone map of the column at position `i`, built lazily on first
    /// use and cached for the table's lifetime (clones share the cache).
    /// `None` for string columns, which have no numeric block bounds.
    pub fn zone_map_at(&self, i: usize) -> Option<&ZoneMap> {
        self.zones[i]
            .get_or_init(|| ZoneMap::build(&self.columns[i]))
            .as_ref()
    }

    /// The zone map of a column by name (see [`Table::zone_map_at`]).
    pub fn zone_map(&self, name: &str) -> EngineResult<Option<&ZoneMap>> {
        Ok(self.zone_map_at(self.column_index(name)?))
    }

    /// Estimated width of one row on disk, in bytes (used by the pager).
    pub fn row_disk_width(&self) -> usize {
        // Charge a small per-row header like a slotted-page row store does.
        const ROW_HEADER: usize = 8;
        ROW_HEADER
            + self
                .columns
                .iter()
                .map(|c| c.data_type().disk_width())
                .sum::<usize>()
    }

    /// The schema as `(name, type)` pairs.
    pub fn schema(&self) -> Vec<(String, DataType)> {
        self.column_names
            .iter()
            .zip(self.columns.iter())
            .map(|(n, c)| (n.to_string(), c.data_type()))
            .collect()
    }
}

/// Builder for [`Table`].
///
/// ```
/// use ids_engine::{ColumnBuilder, TableBuilder};
///
/// let t = TableBuilder::new("movies")
///     .column("id", ColumnBuilder::int(0..3))
///     .column("title", ColumnBuilder::str(["a", "b", "c"]))
///     .build()
///     .unwrap();
/// assert_eq!(t.rows(), 3);
/// ```
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    columns: Vec<(String, ColumnBuilder)>,
}

impl TableBuilder {
    /// Starts a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Adds a column.
    pub fn column(mut self, name: impl Into<String>, builder: ColumnBuilder) -> Self {
        self.columns.push((name.into(), builder));
        self
    }

    /// Validates lengths and freezes the table.
    pub fn build(self) -> EngineResult<Table> {
        if self.columns.is_empty() {
            return Err(EngineError::EmptyTable(self.name));
        }
        let rows = self.columns[0].1.len();
        let mut index = HashMap::with_capacity(self.columns.len());
        let mut names: Vec<Arc<str>> = Vec::with_capacity(self.columns.len());
        let mut cols: Vec<Column> = Vec::with_capacity(self.columns.len());
        for (name, builder) in self.columns {
            if builder.len() != rows {
                return Err(EngineError::RaggedColumns {
                    table: self.name,
                    expected: rows,
                    got: (name, builder.len()),
                });
            }
            let shared: Arc<str> = Arc::from(name.as_str());
            if index.insert(Arc::clone(&shared), cols.len()).is_some() {
                return Err(EngineError::DuplicateColumn(name));
            }
            names.push(shared);
            cols.push(builder.build());
        }
        let stats = TableStats::compute(&names, &cols);
        let zones: Vec<OnceLock<Option<ZoneMap>>> =
            (0..cols.len()).map(|_| OnceLock::new()).collect();
        Ok(Table {
            name: Arc::from(self.name.as_str()),
            column_names: names.into(),
            columns: cols.into(),
            index: Arc::new(index),
            rows,
            stats: Arc::new(stats),
            zones: zones.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        TableBuilder::new("t")
            .column("a", ColumnBuilder::int([1, 2, 3]))
            .column("b", ColumnBuilder::float([0.1, 0.2, 0.3]))
            .column("c", ColumnBuilder::str(["x", "y", "x"]))
            .build()
            .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let t = sample();
        assert_eq!(t.name(), "t");
        assert_eq!(t.rows(), 3);
        assert_eq!(t.width(), 3);
        assert_eq!(t.column_names().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(t.value(1, "a").unwrap(), Value::Int(2));
        assert_eq!(t.column_index("c").unwrap(), 2);
        assert_eq!(t.column_at(0).len(), 3);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = sample();
        assert!(matches!(
            t.column("zzz"),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn ragged_columns_rejected() {
        let err = TableBuilder::new("bad")
            .column("a", ColumnBuilder::int([1, 2]))
            .column("b", ColumnBuilder::int([1]))
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::RaggedColumns { .. }));
    }

    #[test]
    fn empty_and_duplicate_rejected() {
        assert!(matches!(
            TableBuilder::new("e").build(),
            Err(EngineError::EmptyTable(_))
        ));
        assert!(matches!(
            TableBuilder::new("d")
                .column("a", ColumnBuilder::int([1]))
                .column("a", ColumnBuilder::int([2]))
                .build(),
            Err(EngineError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn row_disk_width_counts_types() {
        let t = sample();
        // 8 header + 8 (int) + 8 (float) + 24 (str)
        assert_eq!(t.row_disk_width(), 48);
    }

    #[test]
    fn zone_maps_built_lazily_and_shared_across_clones() {
        let t = sample();
        let z = t.zone_map("a").unwrap().expect("int column has a zone map");
        let b = z.block(0).unwrap();
        assert_eq!((b.min, b.max), (1.0, 3.0));
        assert!(t.zone_map("c").unwrap().is_none(), "strings have none");
        // A clone sees the same cached map (same allocation).
        let clone = t.clone();
        let z2 = clone.zone_map("a").unwrap().unwrap();
        assert!(std::ptr::eq(z, z2));
        assert!(t.zone_map("zzz").is_err());
    }

    #[test]
    fn schema_reports_types() {
        let t = sample();
        let schema = t.schema();
        assert_eq!(schema[0], ("a".to_string(), DataType::Int));
        assert_eq!(schema[2], ("c".to_string(), DataType::Str));
    }
}
