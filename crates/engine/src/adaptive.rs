//! Adaptive indexing (database cracking) for interactive range queries.
//!
//! The survey's related-work section lists adaptive indexing — database
//! cracking and its merged variants — among the general techniques for
//! interactive performance. Cracking fits interactive workloads
//! perfectly: each range query physically reorganizes a little of the
//! column around its bounds, so the column self-organizes exactly where
//! the user is exploring, with no upfront index build.
//!
//! [`CrackedColumn`] keeps a permutation of row ids plus a sorted list of
//! *crack points*; [`CrackedColumn::range`] answers a `[lo, hi]` range by
//! cracking both bounds (two partition passes over the narrowest known
//! piece) and then returning a contiguous slice of the permutation.

use std::collections::BTreeMap;

use crate::column::Column;
use crate::error::{EngineError, EngineResult};

/// A crackable copy of a numeric column: values plus a row-id
/// permutation that gets increasingly range-partitioned as queries
/// arrive.
#[derive(Debug, Clone)]
pub struct CrackedColumn {
    /// `perm[i]` = original row id at partition position `i`.
    perm: Vec<u32>,
    /// Values aligned with `perm` (copied so partitioning is cache-local).
    values: Vec<f64>,
    /// Crack points: value `v` → first partition position whose value is
    /// `>= v`. All positions before it hold values `< v`.
    cracks: BTreeMap<OrderedF64, usize>,
    /// Cumulative elements touched by partition passes (work counter).
    work: u64,
}

/// Total-ordered f64 key for the crack map (NaNs rejected at insert).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl CrackedColumn {
    /// Builds a crackable copy of a numeric column.
    pub fn new(column: &Column) -> EngineResult<CrackedColumn> {
        let values: Vec<f64> = match column {
            Column::Float(v) => v.to_vec(),
            Column::Int(v) => v.iter().map(|&x| x as f64).collect(),
            Column::Str { .. } => {
                return Err(EngineError::TypeMismatch {
                    column: "<cracked>".into(),
                    expected: "numeric column for cracking",
                })
            }
        };
        Ok(CrackedColumn {
            perm: (0..values.len() as u32).collect(),
            values,
            cracks: BTreeMap::new(),
            work: 0,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of crack points accumulated so far.
    pub fn crack_count(&self) -> usize {
        self.cracks.len()
    }

    /// Cumulative elements moved/compared by partition passes — the cost
    /// proxy that shrinks as the column self-organizes.
    pub fn total_work(&self) -> u64 {
        self.work
    }

    /// Answers `lo <= value <= hi`, cracking the column on both bounds.
    /// Returns the matching *original row ids* (order unspecified).
    pub fn range(&mut self, lo: f64, hi: f64) -> Vec<u32> {
        if self.values.is_empty() || lo > hi || lo.is_nan() || hi.is_nan() {
            return Vec::new();
        }
        let start = self.crack_at(lo); // first pos with value >= lo
                                       // hi bound: first pos with value > hi == first pos with value >= next_up(hi).
        let end = self.crack_at(next_up(hi));
        self.perm[start..end].to_vec()
    }

    /// The work done by one range on a fully-cracked region is ~0; on a
    /// cold column it is O(n). This returns positions `[start, end)` via
    /// cracking at `v` (first position with value >= v).
    fn crack_at(&mut self, v: f64) -> usize {
        let key = OrderedF64(v);
        if let Some(&pos) = self.cracks.get(&key) {
            return pos;
        }
        // Narrowest piece containing v: between the nearest cracks.
        let lo_bound = self
            .cracks
            .range(..key)
            .next_back()
            .map(|(_, &p)| p)
            .unwrap_or(0);
        let hi_bound = self
            .cracks
            .range(key..)
            .next()
            .map(|(_, &p)| p)
            .unwrap_or(self.values.len());
        // Partition [lo_bound, hi_bound) around v: values < v left.
        let mut i = lo_bound;
        let mut j = hi_bound;
        self.work += (hi_bound - lo_bound) as u64;
        while i < j {
            if self.values[i] < v {
                i += 1;
            } else {
                j -= 1;
                self.values.swap(i, j);
                self.perm.swap(i, j);
            }
        }
        self.cracks.insert(key, i);
        i
    }
}

fn next_up(x: f64) -> f64 {
    // Smallest float strictly greater than x (finite inputs).
    if x == f64::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x >= 0.0 { bits + 1 } else { bits - 1 };
    f64::from_bits(if x == 0.0 { 1 } else { next })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use ids_simclock::rng::SimRng;

    fn shuffled(n: usize, seed: u64) -> (Column, Vec<f64>) {
        let mut vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        SimRng::seed(seed).shuffle(&mut vals);
        (ColumnBuilder::float(vals.clone()).build(), vals)
    }

    fn naive_range(vals: &[f64], lo: f64, hi: f64) -> Vec<u32> {
        let mut out: Vec<u32> = vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i as u32)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn cracked_ranges_match_naive_scans() {
        let (col, vals) = shuffled(5_000, 1);
        let mut cracked = CrackedColumn::new(&col).unwrap();
        let mut rng = SimRng::seed(2);
        for _ in 0..100 {
            let lo = rng.uniform(-100.0, 5_100.0);
            let hi = lo + rng.uniform(0.0, 1_000.0);
            let mut got = cracked.range(lo, hi);
            got.sort_unstable();
            assert_eq!(got, naive_range(&vals, lo, hi), "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn inclusive_bounds() {
        let col = ColumnBuilder::float([5.0, 1.0, 3.0, 5.0, 2.0]).build();
        let mut cracked = CrackedColumn::new(&col).unwrap();
        let mut got = cracked.range(3.0, 5.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 2, 3]);
        // Point query.
        let mut got = cracked.range(5.0, 5.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 3]);
    }

    #[test]
    fn work_per_query_shrinks_as_the_column_cracks() {
        let (col, _) = shuffled(100_000, 3);
        let mut cracked = CrackedColumn::new(&col).unwrap();
        let mut rng = SimRng::seed(4);
        // A crossfilter-ish session of 200 range queries.
        let mut works = Vec::new();
        for _ in 0..200 {
            let lo = rng.uniform(0.0, 90_000.0);
            let before = cracked.total_work();
            cracked.range(lo, lo + 5_000.0);
            works.push(cracked.total_work() - before);
        }
        let head: u64 = works[..20].iter().sum();
        let tail: u64 = works[works.len() - 20..].iter().sum();
        assert!(
            tail * 10 < head,
            "late queries should be ~free: first-20 work {head}, last-20 work {tail}"
        );
        assert!(cracked.crack_count() > 100);
    }

    #[test]
    fn repeated_query_is_free() {
        let (col, _) = shuffled(10_000, 5);
        let mut cracked = CrackedColumn::new(&col).unwrap();
        cracked.range(100.0, 500.0);
        let before = cracked.total_work();
        cracked.range(100.0, 500.0);
        assert_eq!(cracked.total_work(), before, "both cracks already exist");
    }

    #[test]
    fn degenerate_inputs() {
        let col = ColumnBuilder::float([1.0, 2.0]).build();
        let mut cracked = CrackedColumn::new(&col).unwrap();
        assert!(cracked.range(5.0, 1.0).is_empty(), "inverted range");
        assert!(cracked.range(f64::NAN, 1.0).is_empty());
        assert_eq!(cracked.range(0.0, 10.0).len(), 2);

        let empty = ColumnBuilder::float([]).build();
        let mut cracked = CrackedColumn::new(&empty).unwrap();
        assert!(cracked.is_empty());
        assert!(cracked.range(0.0, 1.0).is_empty());
    }

    #[test]
    fn int_columns_crack_too() {
        let col = ColumnBuilder::int([30, 10, 20, 40]).build();
        let mut cracked = CrackedColumn::new(&col).unwrap();
        let mut got = cracked.range(15.0, 35.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn string_columns_are_rejected() {
        let col = ColumnBuilder::str(["a", "b"]).build();
        assert!(CrackedColumn::new(&col).is_err());
    }

    #[test]
    fn duplicates_partition_correctly() {
        let col = ColumnBuilder::float(vec![2.0; 1_000]).build();
        let mut cracked = CrackedColumn::new(&col).unwrap();
        assert_eq!(cracked.range(2.0, 2.0).len(), 1_000);
        assert!(cracked.range(2.1, 3.0).is_empty());
        assert!(cracked.range(0.0, 1.9).is_empty());
    }
}
