//! A from-scratch columnar query engine with *simulated* disk-based and
//! in-memory backends.
//!
//! The case studies in *Evaluating Interactive Data Systems* run their
//! interactive workloads against PostgreSQL (disk-based) and MemSQL
//! (in-memory). This crate plays both roles: one logical query layer, two
//! execution backends behind the [`Backend`] trait, each with a calibrated
//! [`CostModel`] that charges *virtual* time (per page read, per tuple
//! scanned, per group aggregated) on the shared [`ids_simclock`] clock, so
//! the latency regimes of the paper reproduce deterministically.
//!
//! # Layers
//!
//! - **Storage** — [`Table`] of typed [`Column`]s (`i64`, `f64`,
//!   dictionary-encoded strings); the disk backend additionally pages rows
//!   through a [`BufferPool`] over [`bytes`]-backed [`Page`]s.
//! - **Logical queries** — the [`Query`] AST covers the SQL shapes the
//!   paper's workloads issue: projected + filtered scans with
//!   `LIMIT`/`OFFSET` (inertial scrolling), an inner join over a paginated
//!   subquery (streaming-join variant), filtered `GROUP BY`-bin histograms
//!   (crossfiltering), and counts.
//! - **Execution** — [`execute`](Backend::execute) returns both the
//!   [`ResultSet`] and the *simulated* execution cost; the
//!   [`scheduler`] module turns a stream of issued queries into per-query
//!   queueing timelines (the substrate for latency-constraint-violation
//!   analysis), and [`parallel`] executes query batches on real threads
//!   for wall-clock throughput benches.
//!
//! # Example
//!
//! ```
//! use ids_engine::{
//!     Backend, ColumnBuilder, MemBackend, Predicate, Query, TableBuilder, Value,
//! };
//!
//! let table = TableBuilder::new("points")
//!     .column("x", ColumnBuilder::float((0..100).map(|i| i as f64 / 10.0)))
//!     .column("label", ColumnBuilder::int(0..100))
//!     .build()
//!     .unwrap();
//!
//! let backend = MemBackend::new();
//! let db = backend.database();
//! db.register(table);
//!
//! let q = Query::count("points", Predicate::between("x", 1.0, 2.0));
//! let outcome = backend.execute(&q).unwrap();
//! assert_eq!(outcome.result.scalar_count(), Some(11));
//! assert!(outcome.cost.as_micros() > 0, "virtual time must be charged");
//! ```

#![warn(missing_docs)]

pub mod adaptive;
mod backend;
mod buffer;
mod column;
mod cost;
pub mod distributed;
mod error;
pub mod exec;
pub mod kernels;
mod page;
pub mod parallel;
pub mod planner;
mod predicate;
pub mod progressive;
mod query;
mod result;
pub mod scheduler;
pub mod sql;
mod stats;
mod table;
mod value;

pub use backend::{
    Backend, Database, DiskBackend, MemBackend, QueryOutcome, ResultQuality, RetryPolicy,
    RetryingBackend,
};
pub use buffer::{BufferPool, BufferPoolStats, EvictionPolicy};
pub use column::{Column, ColumnBuilder, Zone, ZoneMap, ZONE_BLOCK_ROWS};
pub use cost::{CostModel, CostParams, LinearCostModel, QueryFootprint};
pub use error::{EngineError, EngineResult};
pub use kernels::{KernelOptions, KernelStats, SelectionVector};
pub use page::{Page, PageId, Pager, PAGE_SIZE};
pub use planner::{plan, BuildSide, HistogramPath, Plan, PlanNode, PlannedExecution};
pub use predicate::{CmpOp, Predicate};
pub use query::{BinSpec, JoinSpec, Projection, Query, SelectSpec};
pub use result::{Histogram, ResultSet, Row};
pub use stats::{ColumnStats, TableStats};
pub use table::{Table, TableBuilder};
pub use value::{DataType, Value};
