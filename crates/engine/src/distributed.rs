//! Simulated distributed execution: the substrate for the paper's
//! throughput and scalability metrics (Section 3.1.1).
//!
//! The survey grounds two backend metrics in distributed systems:
//! **throughput** (Atlas measures speedup as query throughput vs server
//! count) and **scalability** (DICE's node sweep shows diminishing
//! returns past ~8 nodes, and its dimension sweep shows per-tuple
//! predicate cost overtaking the benefit of selectivity). This module
//! models a shared-nothing cluster over the columnar engine:
//!
//! - a table is hash-partitioned across `nodes` workers;
//! - each worker scans its partition in parallel (virtual time = the
//!   slowest partition);
//! - partial results are merged by a coordinator, which pays a per-node,
//!   per-group **summarization** cost — the part that does *not* get
//!   faster with more nodes, plus a fixed per-query coordination
//!   overhead that *grows* with the cluster.

use ids_simclock::SimDuration;

use crate::backend::{Database, ResultQuality};
use crate::cost::{CostModel, CostParams, LinearCostModel};
use crate::error::{EngineError, EngineResult};
use crate::exec::run_query;
use crate::progressive::scale_result;
use crate::query::Query;
use crate::result::{Histogram, ResultSet};

/// Cost knobs specific to the cluster layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Per-query coordination overhead per participating node, ns
    /// (scheduling, result collection).
    pub per_node_overhead_ns: u64,
    /// Merging one partial group/row from one node, ns.
    pub merge_per_group_ns: u64,
    /// Fixed coordinator startup, ns.
    pub coordinator_ns: u64,
}

impl ClusterParams {
    /// A calibration that yields near-linear speedup to ~8 nodes and
    /// diminishing returns beyond — the DICE shape.
    pub const fn default_cluster() -> ClusterParams {
        ClusterParams {
            per_node_overhead_ns: 500_000, // 0.5 ms per node per query
            merge_per_group_ns: 10_000,    // 10 µs per partial group
            coordinator_ns: 1_000_000,     // 1 ms
        }
    }
}

/// Outcome of one distributed query.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// Merged result (identical to single-node execution when every
    /// partition participated; a scaled estimate under node loss).
    pub result: ResultSet,
    /// Virtual wall time: slowest worker + coordination + merge.
    pub elapsed: SimDuration,
    /// Sum of all workers' compute time (the throughput denominator).
    pub total_work: SimDuration,
    /// Number of partitions that participated.
    pub nodes: usize,
    /// Exact when all partitions answered; `Partial` under node loss.
    pub quality: ResultQuality,
}

/// A simulated shared-nothing cluster executing queries over hash
/// partitions of the registered tables.
#[derive(Debug)]
pub struct Cluster {
    /// Per-node databases holding the partitions.
    partitions: Vec<Database>,
    model: LinearCostModel,
    params: ClusterParams,
}

impl Cluster {
    /// Partitions every table of `db` across `nodes` workers
    /// (round-robin on row index — a hash partition on a synthetic key).
    pub fn partition(db: &Database, nodes: usize) -> EngineResult<Cluster> {
        Self::partition_with(
            db,
            nodes,
            CostParams::disk_default(),
            ClusterParams::default_cluster(),
        )
    }

    /// [`partition`](Self::partition) with explicit cost calibrations.
    pub fn partition_with(
        db: &Database,
        nodes: usize,
        node_costs: CostParams,
        params: ClusterParams,
    ) -> EngineResult<Cluster> {
        let nodes = nodes.max(1);
        let partitions: Vec<Database> = (0..nodes).map(|_| Database::new()).collect();
        for name in db.table_names() {
            let table = db.table(&name)?;
            // Round-robin row split.
            let mut selections: Vec<Vec<usize>> = vec![Vec::new(); nodes];
            for row in 0..table.rows() {
                selections[row % nodes].push(row);
            }
            for (node, rows) in selections.iter().enumerate() {
                let mut builder = crate::table::TableBuilder::new(table.name());
                for (col_idx, col_name) in table.column_names().enumerate() {
                    let col = table.column_at(col_idx).take(rows);
                    builder = builder.column(col_name, column_to_builder(&col));
                }
                partitions[node].register(builder.build()?);
            }
        }
        Ok(Cluster {
            partitions,
            model: LinearCostModel::new(node_costs),
            params,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.partitions.len()
    }

    /// Executes a query across all partitions and merges.
    ///
    /// Only mergeable shapes are supported: `Count` (sum) and
    /// `Histogram` (bin-wise sum). Paginated selects and joins are not
    /// distributable under a row-partition without a shuffle, which this
    /// simulator intentionally does not model.
    pub fn execute(&self, query: &Query) -> EngineResult<DistributedOutcome> {
        self.execute_excluding(query, &[])
    }

    /// Executes a query with the partitions in `lost` excluded — a node
    /// failure mid-session. The surviving partitions' merged answer is
    /// extrapolated to the full population (round-robin partitions are
    /// near-uniform samples) and marked [`ResultQuality::Partial`], so an
    /// interactive view keeps refreshing instead of freezing until the
    /// node recovers. Losing every node is a transient failure.
    pub fn execute_excluding(
        &self,
        query: &Query,
        lost: &[usize],
    ) -> EngineResult<DistributedOutcome> {
        match query {
            Query::Count { .. } | Query::Histogram { .. } => {}
            _ => {
                return Err(EngineError::TypeMismatch {
                    column: query.table().to_string(),
                    expected: "a mergeable query (COUNT or histogram) for distributed execution",
                })
            }
        }
        let surviving: Vec<&Database> = self
            .partitions
            .iter()
            .enumerate()
            .filter(|(i, _)| !lost.contains(i))
            .map(|(_, db)| db)
            .collect();
        if surviving.is_empty() {
            return Err(EngineError::TransientFailure {
                reason: "all cluster nodes lost".into(),
            });
        }

        let mut slowest = SimDuration::ZERO;
        let mut total_work = SimDuration::ZERO;
        let mut merged: Option<ResultSet> = None;
        let mut merge_groups = 0u64;
        for db in &surviving {
            let (partial, footprint) = run_query(db, query)?;
            let cost = self.model.price(&footprint);
            slowest = slowest.max(cost);
            total_work += cost;
            merge_groups += partial.len() as u64;
            merged = Some(match merged.take() {
                None => partial,
                Some(acc) => merge_partials(acc, partial)?,
            });
        }

        let coordination = SimDuration::from_micros(
            (self.params.coordinator_ns
                + self.params.per_node_overhead_ns * surviving.len() as u64
                + self.params.merge_per_group_ns * merge_groups)
                / 1_000,
        );
        let merged = merged.ok_or_else(|| EngineError::TransientFailure {
            reason: "all cluster nodes lost".into(),
        })?;
        let fraction = surviving.len() as f64 / self.nodes() as f64;
        let (result, quality) = if surviving.len() == self.nodes() {
            (merged, ResultQuality::Exact)
        } else {
            // Sound absolute bound on any extrapolated value: the
            // estimate `round(merged/f)` overshoots the truth by at
            // most `merged·(1/f − 1)` and undershoots by at most the
            // rows held on the lost partitions, plus rounding.
            let lost_rows: usize = self
                .partitions
                .iter()
                .enumerate()
                .filter(|(i, _)| lost.contains(i))
                .filter_map(|(_, db)| db.table(query.table()).ok())
                .map(|t| t.rows())
                .sum();
            let max_merged = match &merged {
                ResultSet::Count(c) => *c as f64,
                ResultSet::Histogram(h) => h.counts().iter().copied().max().unwrap_or(0) as f64,
                ResultSet::Rows(rows) => rows.len() as f64,
            };
            let error_bound = (max_merged * (1.0 / fraction - 1.0)).max(lost_rows as f64) + 0.5;
            (
                scale_result(merged, 1.0 / fraction),
                ResultQuality::Partial {
                    fraction,
                    error_bound,
                },
            )
        };
        Ok(DistributedOutcome {
            result,
            elapsed: slowest + coordination,
            total_work: total_work + coordination,
            nodes: surviving.len(),
            quality,
        })
    }
}

fn merge_partials(a: ResultSet, b: ResultSet) -> EngineResult<ResultSet> {
    match (a, b) {
        (ResultSet::Count(x), ResultSet::Count(y)) => Ok(ResultSet::Count(x + y)),
        (ResultSet::Histogram(x), ResultSet::Histogram(y)) => {
            if x.bins() != y.bins() {
                return Err(EngineError::InvalidBinSpec(
                    "partition histograms disagree on bin count".into(),
                ));
            }
            let counts = x
                .counts()
                .iter()
                .zip(y.counts())
                .map(|(&p, &q)| p + q)
                .collect();
            Ok(ResultSet::Histogram(Histogram::from_counts(counts)))
        }
        _ => Err(EngineError::TypeMismatch {
            column: "<merge>".into(),
            expected: "matching partial result shapes",
        }),
    }
}

fn column_to_builder(col: &crate::column::Column) -> crate::column::ColumnBuilder {
    use crate::column::{Column, ColumnBuilder};
    match col {
        Column::Int(v) => ColumnBuilder::int(v.iter().copied()),
        Column::Float(v) => ColumnBuilder::float(v.iter().copied()),
        Column::Str { codes, dict } => {
            ColumnBuilder::str(codes.iter().map(|&c| dict[c as usize].as_ref()))
        }
    }
}

/// Throughput of a cluster on a query mix: queries per second of virtual
/// time, with queries load-balanced round-robin and executed back to
/// back (the Atlas measurement).
pub fn cluster_throughput(cluster: &Cluster, queries: &[Query]) -> EngineResult<f64> {
    if queries.is_empty() {
        return Ok(0.0);
    }
    let mut elapsed = SimDuration::ZERO;
    for q in queries {
        elapsed += cluster.execute(q)?.elapsed;
    }
    Ok(queries.len() as f64 / elapsed.as_secs_f64().max(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::predicate::Predicate;
    use crate::query::BinSpec;
    use crate::table::TableBuilder;
    use crate::{Backend, MemBackend};

    fn db(rows: usize) -> Database {
        let db = Database::new();
        db.register(
            TableBuilder::new("pts")
                .column(
                    "x",
                    ColumnBuilder::float((0..rows).map(|i| (i % 1000) as f64)),
                )
                .column(
                    "label",
                    ColumnBuilder::str((0..rows).map(|i| if i % 2 == 0 { "even" } else { "odd" })),
                )
                .build()
                .unwrap(),
        );
        db
    }

    fn histogram_query() -> Query {
        Query::histogram(
            "pts",
            BinSpec::new("x", 0.0, 1000.0, 20),
            Predicate::between("x", 100.0, 900.0),
        )
    }

    #[test]
    fn distributed_results_match_single_node() {
        let database = db(30_000);
        let single = MemBackend::over(database.clone());
        let expected = single.execute(&histogram_query()).unwrap().result;
        for nodes in [1usize, 2, 4, 8] {
            let cluster = Cluster::partition(&database, nodes).unwrap();
            let out = cluster.execute(&histogram_query()).unwrap();
            assert_eq!(out.result, expected, "{nodes} nodes");
            assert_eq!(out.nodes, nodes);
        }
    }

    #[test]
    fn count_merges_across_partitions() {
        let database = db(10_001); // odd count exercises uneven partitions
        let cluster = Cluster::partition(&database, 4).unwrap();
        let out = cluster
            .execute(&Query::count("pts", Predicate::True))
            .unwrap();
        assert_eq!(out.result.scalar_count(), Some(10_001));
    }

    #[test]
    fn speedup_is_near_linear_then_diminishes() {
        let database = db(200_000);
        let q = histogram_query();
        let mut elapsed = Vec::new();
        for nodes in [1usize, 2, 4, 8, 16, 32] {
            let cluster = Cluster::partition(&database, nodes).unwrap();
            elapsed.push((nodes, cluster.execute(&q).unwrap().elapsed));
        }
        let t1 = elapsed[0].1.as_secs_f64();
        let speedup: Vec<(usize, f64)> = elapsed
            .iter()
            .map(|&(n, t)| (n, t1 / t.as_secs_f64()))
            .collect();
        // Near-linear at small scale.
        let s2 = speedup[1].1;
        assert!(s2 > 1.6, "2-node speedup {s2:.2}");
        let s8 = speedup[3].1;
        assert!(s8 > 4.0, "8-node speedup {s8:.2}");
        // Diminishing returns: the 16→32 step gains far less than 2x.
        let s16 = speedup[4].1;
        let s32 = speedup[5].1;
        assert!(
            s32 / s16 < 1.5,
            "16->32 nodes should flatten: {s16:.1} -> {s32:.1}"
        );
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        let database = db(100);
        let cluster = Cluster::partition(&database, 2).unwrap();
        let select = Query::select("pts", vec![], Predicate::True, Some(10), 0);
        assert!(cluster.execute(&select).is_err());
    }

    #[test]
    fn throughput_grows_with_nodes() {
        let database = db(100_000);
        let queries: Vec<Query> = (0..10).map(|_| histogram_query()).collect();
        let one = Cluster::partition(&database, 1).unwrap();
        let eight = Cluster::partition(&database, 8).unwrap();
        let t1 = cluster_throughput(&one, &queries).unwrap();
        let t8 = cluster_throughput(&eight, &queries).unwrap();
        assert!(t8 > t1 * 3.0, "throughput {t1:.1} -> {t8:.1} q/s");
    }

    #[test]
    fn empty_query_mix() {
        let database = db(10);
        let cluster = Cluster::partition(&database, 2).unwrap();
        assert_eq!(cluster_throughput(&cluster, &[]).unwrap(), 0.0);
    }

    #[test]
    fn string_columns_survive_partitioning() {
        let database = db(1_000);
        let cluster = Cluster::partition(&database, 3).unwrap();
        let q = Query::count("pts", Predicate::eq("label", "even"));
        let out = cluster.execute(&q).unwrap();
        assert_eq!(out.result.scalar_count(), Some(500));
    }
}
