//! Shard-plan primitives and the in-engine cluster facade.
//!
//! The survey grounds two backend metrics in distributed systems:
//! **throughput** (Atlas measures speedup as query throughput vs server
//! count) and **scalability** (DICE's node sweep shows diminishing
//! returns past ~8 nodes). This module holds the *canonical* primitives
//! every sharded layer of the stack shares — deterministic shard
//! assignment, cell-key hashing, partition materialization, mergeable
//! partial-aggregate merging, and the coordination cost model — plus a
//! thin [`Cluster`] facade over them. The full subsystem (hash/range
//! partition schemes, the scatter-gather executor, sharded progressive
//! refinement) lives in `ids-shard` and reuses exactly these functions,
//! which is what guarantees a row lands on the same shard no matter
//! which layer asked.
//!
//! Determinism discipline (the same one `parallel_histogram` proved for
//! threads): shard assignment is a pure function of `(key, shards)`,
//! partials are merged in fixed shard order, and only *mergeable*
//! aggregates (COUNT sums, histogram bin-wise sums) are distributable —
//! so the merged answer is byte-identical at 1/4/16 shards and any
//! worker-thread count.
//!
//! Fault model: shards may be **replicated**. A query answers exactly as
//! long as every shard has at least one surviving replica; when all
//! replicas of a shard are lost the plan fails with the typed
//! [`EngineError::ShardUnavailable`] instead of silently extrapolating
//! from the survivors (the old behavior — an estimate masquerading as an
//! answer — is gone; approximate answers are the progressive layer's
//! job, where they carry explicit error bounds).

use ids_simclock::SimDuration;

use crate::backend::{Database, ResultQuality};
use crate::column::{Column, ColumnBuilder};
use crate::cost::{CostModel, CostParams, LinearCostModel};
use crate::error::{EngineError, EngineResult};
use crate::exec::run_query;
use crate::query::Query;
use crate::result::{Histogram, ResultSet};
use crate::table::{Table, TableBuilder};

/// Cost knobs specific to the coordination layer of a scatter-gather
/// plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Per-query coordination overhead per participating node, ns
    /// (scheduling, result collection).
    pub per_node_overhead_ns: u64,
    /// Merging one partial group/row from one node, ns.
    pub merge_per_group_ns: u64,
    /// Fixed coordinator startup, ns.
    pub coordinator_ns: u64,
}

impl ClusterParams {
    /// A calibration that yields near-linear speedup to ~8 nodes and
    /// diminishing returns beyond — the DICE shape.
    pub const fn default_cluster() -> ClusterParams {
        ClusterParams {
            per_node_overhead_ns: 500_000, // 0.5 ms per node per query
            merge_per_group_ns: 10_000,    // 10 µs per partial group
            coordinator_ns: 1_000_000,     // 1 ms
        }
    }

    /// Coordination cost of gathering `nodes` partials totalling
    /// `merge_groups` groups: the part of a scatter-gather plan that
    /// does *not* get faster with more shards.
    pub fn coordination(&self, nodes: usize, merge_groups: u64) -> SimDuration {
        SimDuration::from_micros(
            (self.coordinator_ns
                + self.per_node_overhead_ns * nodes as u64
                + self.merge_per_group_ns * merge_groups)
                / 1_000,
        )
    }
}

/// SplitMix64: the canonical bit-mixing finalizer behind every shard
/// hash in the stack (`ids-shard` reuses it for key partitioning, the
/// simtest scenario grammar for seed derivation).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over raw bytes — the dependency-free string hash shard keys
/// use (dictionary codes are partition-local, so the *string bytes* are
/// what must hash identically on every layer).
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard a *row index* lands on: round-robin, the hash partition on
/// a synthetic key. Deterministic, total, and exactly balanced.
pub fn shard_of_row(row: usize, shards: usize) -> usize {
    row % shards.max(1)
}

/// The shard a pre-hashed 64-bit key lands on, after one more mixing
/// round so weak keys (sequential integers, duplicate-heavy dimensions)
/// still spread.
pub fn shard_of_hash(seed: u64, hash: u64, shards: usize) -> usize {
    (splitmix64(seed ^ hash) % shards.max(1) as u64) as usize
}

/// Canonical 64-bit key of one cell, identical across partitions and
/// layers:
///
/// - `Int` → the value's two's-complement bits;
/// - `Float` → the IEEE bits with `-0.0` folded into `0.0` and every
///   NaN folded into the canonical quiet NaN (so equal-comparing floats
///   always co-locate);
/// - `Str` → FNV-1a of the string bytes (dictionary codes are
///   partition-local and must not leak into the key).
pub fn cell_key(col: &Column, row: usize) -> u64 {
    match col {
        Column::Int(v) => v[row] as u64,
        Column::Float(v) => {
            let x = v[row];
            if x.is_nan() {
                f64::NAN.to_bits()
            } else if x == 0.0 {
                0.0f64.to_bits()
            } else {
                x.to_bits()
            }
        }
        Column::Str { codes, dict } => fnv1a_bytes(dict[codes[row] as usize].as_bytes()),
    }
}

/// Materializes the selected rows of `table` as a new table with the
/// same name and schema (string dictionaries are shared, not
/// re-encoded).
pub fn take_table(table: &Table, rows: &[usize]) -> EngineResult<Table> {
    let mut builder = TableBuilder::new(table.name());
    for (col_idx, col_name) in table.column_names().enumerate() {
        let col = table.column_at(col_idx).take(rows);
        builder = builder.column(col_name, column_to_builder(&col));
    }
    builder.build()
}

/// Re-wraps a materialized column in a builder (partition tables are
/// assembled through the normal [`TableBuilder`] path so stats and zone
/// maps are rebuilt per shard).
pub fn column_to_builder(col: &Column) -> ColumnBuilder {
    match col {
        Column::Int(v) => ColumnBuilder::int(v.iter().copied()),
        Column::Float(v) => ColumnBuilder::float(v.iter().copied()),
        Column::Str { codes, dict } => {
            ColumnBuilder::str(codes.iter().map(|&c| dict[c as usize].as_ref()))
        }
    }
}

/// `true` if the query shape is distributable under a row partition:
/// COUNT sums and histograms sum bin-wise; paginated selects and joins
/// would need a shuffle, which this engine intentionally does not model.
pub fn is_mergeable(query: &Query) -> bool {
    matches!(query, Query::Count { .. } | Query::Histogram { .. })
}

/// Rejects non-mergeable query shapes with the typed error every
/// sharded layer reports.
pub fn require_mergeable(query: &Query) -> EngineResult<()> {
    if is_mergeable(query) {
        Ok(())
    } else {
        Err(EngineError::TypeMismatch {
            column: query.table().to_string(),
            expected: "a mergeable query (COUNT or histogram) for distributed execution",
        })
    }
}

/// Merges two mergeable partial results: COUNT sums, histograms sum
/// bin-wise. Partials must be merged in *fixed shard order* — `u64`
/// sums commute, but keeping one canonical order is what lets every
/// layer assert byte-identical output instead of arguing about it.
pub fn merge_partials(a: ResultSet, b: ResultSet) -> EngineResult<ResultSet> {
    match (a, b) {
        (ResultSet::Count(x), ResultSet::Count(y)) => Ok(ResultSet::Count(x + y)),
        (ResultSet::Histogram(x), ResultSet::Histogram(y)) => {
            if x.bins() != y.bins() {
                return Err(EngineError::InvalidBinSpec(
                    "partition histograms disagree on bin count".into(),
                ));
            }
            let counts = x
                .counts()
                .iter()
                .zip(y.counts())
                .map(|(&p, &q)| p + q)
                .collect();
            Ok(ResultSet::Histogram(Histogram::from_counts(counts)))
        }
        _ => Err(EngineError::TypeMismatch {
            column: "<merge>".into(),
            expected: "matching partial result shapes",
        }),
    }
}

/// The node hosting replica `replica` of shard `shard` in the canonical
/// striped layout: nodes `0..shards` hold copy 0, `shards..2*shards`
/// copy 1, and so on.
pub fn replica_node(shard: usize, shards: usize, replica: usize) -> usize {
    replica * shards + shard
}

/// The lowest-numbered surviving node hosting `shard`, or `None` when
/// every replica is in `lost`. Deterministic: the same loss set always
/// routes to the same replica.
pub fn surviving_replica(
    shard: usize,
    shards: usize,
    replicas: usize,
    lost: &[usize],
) -> Option<usize> {
    (0..replicas)
        .map(|r| replica_node(shard, shards, r))
        .find(|node| !lost.contains(node))
}

/// Outcome of one distributed query.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// Merged result — always identical to single-node execution (no
    /// extrapolation: a shard with no surviving replica is a typed
    /// error, not an estimate).
    pub result: ResultSet,
    /// Virtual wall time: slowest shard + coordination + merge.
    pub elapsed: SimDuration,
    /// Sum of all shards' compute time (the throughput denominator).
    pub total_work: SimDuration,
    /// Number of shards that executed.
    pub nodes: usize,
    /// Always [`ResultQuality::Exact`]; kept so callers recording
    /// quality alongside chaos-degraded paths keep one shape.
    pub quality: ResultQuality,
}

/// A simulated shared-nothing cluster: the thin in-engine facade over
/// the shard-plan primitives above. Every table of the source database
/// is row-partitioned across `shards` shards, each shard logically
/// hosted on `replicas` nodes (replicas share one partition image —
/// this is a simulator, so replication is an availability property, not
/// extra bytes).
///
/// `ids-shard` builds the full subsystem (hash/range key partitioning,
/// threaded scatter-gather, sharded progressive refinement) on the same
/// primitives; this facade keeps the engine's scalability experiments
/// and the chaos node-loss tests self-contained.
#[derive(Debug)]
pub struct Cluster {
    /// Per-shard databases holding the partitions, in shard order.
    partitions: Vec<Database>,
    replicas: usize,
    model: LinearCostModel,
    params: ClusterParams,
}

impl Cluster {
    /// Partitions every table of `db` across `shards` single-replica
    /// shards (round-robin on row index — [`shard_of_row`]).
    pub fn partition(db: &Database, shards: usize) -> EngineResult<Cluster> {
        Self::partition_with(
            db,
            shards,
            CostParams::disk_default(),
            ClusterParams::default_cluster(),
        )
    }

    /// [`partition`](Self::partition) with `replicas` copies of every
    /// shard, striped as [`replica_node`] describes: a query stays
    /// exact under node loss as long as each shard keeps one survivor.
    pub fn partition_replicated(
        db: &Database,
        shards: usize,
        replicas: usize,
    ) -> EngineResult<Cluster> {
        let mut cluster = Self::partition(db, shards)?;
        cluster.replicas = replicas.max(1);
        Ok(cluster)
    }

    /// [`partition`](Self::partition) with explicit cost calibrations.
    pub fn partition_with(
        db: &Database,
        shards: usize,
        node_costs: CostParams,
        params: ClusterParams,
    ) -> EngineResult<Cluster> {
        let shards = shards.max(1);
        let partitions: Vec<Database> = (0..shards).map(|_| Database::new()).collect();
        for name in db.table_names() {
            let table = db.table(&name)?;
            let mut selections: Vec<Vec<usize>> = vec![Vec::new(); shards];
            for row in 0..table.rows() {
                selections[shard_of_row(row, shards)].push(row);
            }
            for (shard, rows) in selections.iter().enumerate() {
                partitions[shard].register(take_table(&table, rows)?);
            }
        }
        Ok(Cluster {
            partitions,
            replicas: 1,
            model: LinearCostModel::new(node_costs),
            params,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.partitions.len()
    }

    /// Replicas per shard.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total nodes (`shards × replicas`).
    pub fn nodes(&self) -> usize {
        self.partitions.len() * self.replicas
    }

    /// Executes a query across all shards and merges in shard order.
    ///
    /// Only mergeable shapes are supported ([`is_mergeable`]).
    pub fn execute(&self, query: &Query) -> EngineResult<DistributedOutcome> {
        self.execute_excluding(query, &[])
    }

    /// Executes with the nodes in `lost` excluded — node failures
    /// mid-session. Each shard routes to its lowest-numbered surviving
    /// replica ([`surviving_replica`]); the answer is therefore *exact*
    /// under any loss pattern that leaves every shard one survivor. A
    /// shard with no survivor fails the whole plan with the typed
    /// [`EngineError::ShardUnavailable`] — no silent extrapolation.
    pub fn execute_excluding(
        &self,
        query: &Query,
        lost: &[usize],
    ) -> EngineResult<DistributedOutcome> {
        require_mergeable(query)?;
        let shards = self.shards();
        for shard in 0..shards {
            if surviving_replica(shard, shards, self.replicas, lost).is_none() {
                return Err(EngineError::ShardUnavailable {
                    shard,
                    replicas: self.replicas,
                });
            }
        }

        let mut slowest = SimDuration::ZERO;
        let mut total_work = SimDuration::ZERO;
        let mut merged: Option<ResultSet> = None;
        let mut merge_groups = 0u64;
        for db in &self.partitions {
            let (partial, footprint) = run_query(db, query)?;
            let cost = self.model.price(&footprint);
            slowest = slowest.max(cost);
            total_work += cost;
            merge_groups += partial.len() as u64;
            merged = Some(match merged.take() {
                None => partial,
                Some(acc) => merge_partials(acc, partial)?,
            });
        }

        let coordination = self.params.coordination(shards, merge_groups);
        let merged = merged.ok_or(EngineError::ShardUnavailable {
            shard: 0,
            replicas: self.replicas,
        })?;
        Ok(DistributedOutcome {
            result: merged,
            elapsed: slowest + coordination,
            total_work: total_work + coordination,
            nodes: shards,
            quality: ResultQuality::Exact,
        })
    }
}

/// Throughput of a cluster on a query mix: queries per second of virtual
/// time, each query routed through the scatter-gather plan above and
/// executed back to back (the Atlas measurement). Any per-query failure
/// — including a typed [`EngineError::ShardUnavailable`] — propagates
/// instead of skewing the rate.
pub fn cluster_throughput(cluster: &Cluster, queries: &[Query]) -> EngineResult<f64> {
    if queries.is_empty() {
        return Ok(0.0);
    }
    let mut elapsed = SimDuration::ZERO;
    for q in queries {
        elapsed += cluster.execute(q)?.elapsed;
    }
    Ok(queries.len() as f64 / elapsed.as_secs_f64().max(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::predicate::Predicate;
    use crate::query::BinSpec;
    use crate::table::TableBuilder;
    use crate::{Backend, MemBackend};

    fn db(rows: usize) -> Database {
        let db = Database::new();
        db.register(
            TableBuilder::new("pts")
                .column(
                    "x",
                    ColumnBuilder::float((0..rows).map(|i| (i % 1000) as f64)),
                )
                .column(
                    "label",
                    ColumnBuilder::str((0..rows).map(|i| if i % 2 == 0 { "even" } else { "odd" })),
                )
                .build()
                .unwrap(),
        );
        db
    }

    fn histogram_query() -> Query {
        Query::histogram(
            "pts",
            BinSpec::new("x", 0.0, 1000.0, 20),
            Predicate::between("x", 100.0, 900.0),
        )
    }

    #[test]
    fn distributed_results_match_single_node() {
        let database = db(30_000);
        let single = MemBackend::over(database.clone());
        let expected = single.execute(&histogram_query()).unwrap().result;
        for nodes in [1usize, 2, 4, 8] {
            let cluster = Cluster::partition(&database, nodes).unwrap();
            let out = cluster.execute(&histogram_query()).unwrap();
            assert_eq!(out.result, expected, "{nodes} nodes");
            assert_eq!(out.nodes, nodes);
            assert_eq!(out.quality, ResultQuality::Exact);
        }
    }

    #[test]
    fn count_merges_across_partitions() {
        let database = db(10_001); // odd count exercises uneven partitions
        let cluster = Cluster::partition(&database, 4).unwrap();
        let out = cluster
            .execute(&Query::count("pts", Predicate::True))
            .unwrap();
        assert_eq!(out.result.scalar_count(), Some(10_001));
    }

    #[test]
    fn speedup_is_near_linear_then_diminishes() {
        let database = db(200_000);
        let q = histogram_query();
        let mut elapsed = Vec::new();
        for nodes in [1usize, 2, 4, 8, 16, 32] {
            let cluster = Cluster::partition(&database, nodes).unwrap();
            elapsed.push((nodes, cluster.execute(&q).unwrap().elapsed));
        }
        let t1 = elapsed[0].1.as_secs_f64();
        let speedup: Vec<(usize, f64)> = elapsed
            .iter()
            .map(|&(n, t)| (n, t1 / t.as_secs_f64()))
            .collect();
        // Near-linear at small scale.
        let s2 = speedup[1].1;
        assert!(s2 > 1.6, "2-node speedup {s2:.2}");
        let s8 = speedup[3].1;
        assert!(s8 > 4.0, "8-node speedup {s8:.2}");
        // Diminishing returns: the 16→32 step gains far less than 2x.
        let s16 = speedup[4].1;
        let s32 = speedup[5].1;
        assert!(
            s32 / s16 < 1.5,
            "16->32 nodes should flatten: {s16:.1} -> {s32:.1}"
        );
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        let database = db(100);
        let cluster = Cluster::partition(&database, 2).unwrap();
        let select = Query::select("pts", vec![], Predicate::True, Some(10), 0);
        assert!(cluster.execute(&select).is_err());
    }

    #[test]
    fn throughput_grows_with_nodes() {
        let database = db(100_000);
        let queries: Vec<Query> = (0..10).map(|_| histogram_query()).collect();
        let one = Cluster::partition(&database, 1).unwrap();
        let eight = Cluster::partition(&database, 8).unwrap();
        let t1 = cluster_throughput(&one, &queries).unwrap();
        let t8 = cluster_throughput(&eight, &queries).unwrap();
        assert!(t8 > t1 * 3.0, "throughput {t1:.1} -> {t8:.1} q/s");
    }

    #[test]
    fn empty_query_mix() {
        let database = db(10);
        let cluster = Cluster::partition(&database, 2).unwrap();
        assert_eq!(cluster_throughput(&cluster, &[]).unwrap(), 0.0);
    }

    #[test]
    fn string_columns_survive_partitioning() {
        let database = db(1_000);
        let cluster = Cluster::partition(&database, 3).unwrap();
        let q = Query::count("pts", Predicate::eq("label", "even"));
        let out = cluster.execute(&q).unwrap();
        assert_eq!(out.result.scalar_count(), Some(500));
    }

    #[test]
    fn replica_layout_is_striped() {
        assert_eq!(replica_node(2, 4, 0), 2);
        assert_eq!(replica_node(2, 4, 1), 6);
        // Node 2 lost: shard 2 routes to its copy on node 6.
        assert_eq!(surviving_replica(2, 4, 2, &[2]), Some(6));
        // Both copies lost: unavailable.
        assert_eq!(surviving_replica(2, 4, 2, &[2, 6]), None);
        // Unreplicated: the shard is its only copy.
        assert_eq!(surviving_replica(2, 4, 1, &[2]), None);
    }

    #[test]
    fn replicated_cluster_stays_exact_under_node_loss() {
        let database = db(4_000);
        let cluster = Cluster::partition_replicated(&database, 4, 2).unwrap();
        assert_eq!(cluster.nodes(), 8);
        let q = Query::count("pts", Predicate::True);
        let full = cluster.execute(&q).unwrap();
        // Losing one copy of shards 1 and 2 changes nothing: the
        // surviving replicas answer and the result stays exact.
        let lossy = cluster.execute_excluding(&q, &[1, 2]).unwrap();
        assert_eq!(lossy.result, full.result);
        assert_eq!(lossy.quality, ResultQuality::Exact);
        assert_eq!(lossy.result.scalar_count(), Some(4_000));
    }

    #[test]
    fn losing_every_replica_of_a_shard_is_a_typed_error() {
        let database = db(4_000);
        let cluster = Cluster::partition_replicated(&database, 4, 2).unwrap();
        let q = Query::count("pts", Predicate::True);
        // Shard 1's copies live on nodes 1 and 5 (striped layout).
        let err = cluster.execute_excluding(&q, &[1, 5]).unwrap_err();
        assert_eq!(
            err,
            EngineError::ShardUnavailable {
                shard: 1,
                replicas: 2
            }
        );
        assert!(err.is_transient(), "lost nodes recover; retries may help");
    }

    #[test]
    fn cell_keys_are_canonical() {
        let f = ColumnBuilder::float([0.0, -0.0, f64::NAN, 1.5]).build();
        assert_eq!(cell_key(&f, 0), cell_key(&f, 1), "-0.0 folds into 0.0");
        assert_eq!(cell_key(&f, 2), f64::NAN.to_bits());
        let s = ColumnBuilder::str(["a", "b", "a"]).build();
        assert_eq!(cell_key(&s, 0), cell_key(&s, 2));
        assert_ne!(cell_key(&s, 0), cell_key(&s, 1));
        // The string key survives re-encoding under a different dict.
        let s2 = ColumnBuilder::str(["b", "a"]).build();
        assert_eq!(cell_key(&s, 0), cell_key(&s2, 1));
    }
}
