//! Filter predicates: the `WHERE` clauses of interactive workloads.
//!
//! Crossfiltering and composite-interface queries are dominated by
//! conjunctions of numeric range predicates (one per slider / map bound),
//! so `Between` is first-class and evaluation is a tight per-column loop.

use std::fmt;
use std::sync::Arc;

use crate::column::Column;
use crate::error::EngineResult;
use crate::table::Table;
use crate::value::Value;

/// Comparison operators for scalar predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean filter over table rows.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Always true — scan everything.
    True,
    /// `column <op> literal`.
    Cmp {
        /// Column name.
        column: Arc<str>,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Value,
    },
    /// `column BETWEEN lo AND hi` (inclusive), numeric columns only.
    Between {
        /// Column name.
        column: Arc<str>,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column BETWEEN lo AND hi`.
    pub fn between(column: impl Into<Arc<str>>, lo: f64, hi: f64) -> Predicate {
        Predicate::Between {
            column: column.into(),
            lo,
            hi,
        }
    }

    /// `column = value`.
    pub fn eq(column: impl Into<Arc<str>>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `column >= value` (numeric).
    pub fn ge(column: impl Into<Arc<str>>, value: f64) -> Predicate {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Ge,
            value: Value::Float(value),
        }
    }

    /// `column <= value` (numeric).
    pub fn le(column: impl Into<Arc<str>>, value: f64) -> Predicate {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Le,
            value: Value::Float(value),
        }
    }

    /// Conjunction of predicates; flattens nested `And`s and drops `True`s.
    pub fn and(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                Predicate::True => {}
                Predicate::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match (flat.pop(), flat.is_empty()) {
            (None, _) => Predicate::True,
            (Some(only), true) => only,
            (Some(last), false) => {
                flat.push(last);
                Predicate::And(flat)
            }
        }
    }

    /// Number of atomic conditions (leaf comparisons) in this predicate —
    /// the "number of filter conditions" measured in case study 3 (Fig 20).
    pub fn condition_count(&self) -> usize {
        match self {
            Predicate::True => 0,
            Predicate::Cmp { .. } | Predicate::Between { .. } => 1,
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().map(Predicate::condition_count).sum()
            }
            Predicate::Not(p) => p.condition_count(),
        }
    }

    /// Evaluates the predicate on one row.
    pub fn matches(&self, table: &Table, row: usize) -> EngineResult<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Cmp { column, op, value } => {
                let col = table.column(column)?;
                cmp_matches(col, row, *op, value)
            }
            Predicate::Between { column, lo, hi } => {
                let col = table.column(column)?;
                match col.f64_at(row) {
                    Some(x) => x >= *lo && x <= *hi,
                    None => false,
                }
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.matches(table, row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.matches(table, row)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.matches(table, row)?,
        })
    }

    /// Evaluates the predicate over all rows, returning the selection as
    /// a bitmask. This is the vectorized path the executor uses: each
    /// condition is evaluated column-at-a-time with zone-map block
    /// skipping (see [`crate::kernels`]), and boolean combinators become
    /// word-wise AND/OR/NOT. Selects exactly the rows
    /// [`select`](Predicate::select) does.
    pub fn select_vector(&self, table: &Table) -> EngineResult<crate::kernels::SelectionVector> {
        crate::kernels::select_vector(table, self)
    }

    /// Evaluates the predicate over all rows, returning selected row indices.
    ///
    /// This is the row-id-materializing baseline the vectorized
    /// [`select_vector`](Predicate::select_vector) path is
    /// differential-tested against (the common fast path — a conjunction
    /// of numeric `Between`s — is evaluated column-at-a-time over the raw
    /// slices, but still materializes a `Vec<usize>`).
    pub fn select(&self, table: &Table) -> EngineResult<Vec<usize>> {
        if let Some(ranges) = self.as_range_conjunction() {
            return select_ranges(table, &ranges);
        }
        let mut out = Vec::new();
        for row in 0..table.rows() {
            if self.matches(table, row)? {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// If this predicate is `True` or a conjunction of `Between`s, returns
    /// the `(column, lo, hi)` triples; otherwise `None`.
    fn as_range_conjunction(&self) -> Option<Vec<(&str, f64, f64)>> {
        match self {
            Predicate::True => Some(Vec::new()),
            Predicate::Between { column, lo, hi } => Some(vec![(column.as_ref(), *lo, *hi)]),
            Predicate::And(ps) => {
                let mut out = Vec::with_capacity(ps.len());
                for p in ps {
                    match p {
                        Predicate::Between { column, lo, hi } => {
                            out.push((column.as_ref(), *lo, *hi));
                        }
                        _ => return None,
                    }
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Validates that all referenced columns exist in `table`.
    pub fn validate(&self, table: &Table) -> EngineResult<()> {
        match self {
            Predicate::True => Ok(()),
            Predicate::Cmp { column, .. } | Predicate::Between { column, .. } => {
                table.column(column).map(|_| ())
            }
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().try_for_each(|p| p.validate(table)),
            Predicate::Not(p) => p.validate(table),
        }
    }
}

fn cmp_matches(col: &Column, row: usize, op: CmpOp, value: &Value) -> bool {
    // Numeric comparison when both sides are numeric; string comparison
    // when both are strings; cross-type comparisons are false (except Ne).
    if let (Some(x), Some(v)) = (col.f64_at(row), value.as_f64()) {
        return match op {
            CmpOp::Eq => x == v,
            CmpOp::Ne => x != v,
            CmpOp::Lt => x < v,
            CmpOp::Le => x <= v,
            CmpOp::Gt => x > v,
            CmpOp::Ge => x >= v,
        };
    }
    if let (Some(s), Some(v)) = (col.value(row).as_str().map(str::to_owned), value.as_str()) {
        return match op {
            CmpOp::Eq => s == v,
            CmpOp::Ne => s != v,
            CmpOp::Lt => s.as_str() < v,
            CmpOp::Le => s.as_str() <= v,
            CmpOp::Gt => s.as_str() > v,
            CmpOp::Ge => s.as_str() >= v,
        };
    }
    op == CmpOp::Ne
}

/// Column-at-a-time evaluation of a conjunction of numeric ranges.
fn select_ranges(table: &Table, ranges: &[(&str, f64, f64)]) -> EngineResult<Vec<usize>> {
    let rows = table.rows();
    if ranges.is_empty() {
        return Ok((0..rows).collect());
    }
    // Start with the first range, then intersect in place.
    let mut sel: Vec<usize> = Vec::with_capacity(rows / 4);
    {
        let (name, lo, hi) = ranges[0];
        let col = table.column(name)?;
        match col {
            Column::Float(v) => {
                sel.extend(
                    v.iter()
                        .enumerate()
                        .filter(|(_, &x)| x >= lo && x <= hi)
                        .map(|(i, _)| i),
                );
            }
            Column::Int(v) => {
                sel.extend(
                    v.iter()
                        .enumerate()
                        .filter(|(_, &x)| (x as f64) >= lo && (x as f64) <= hi)
                        .map(|(i, _)| i),
                );
            }
            Column::Str { .. } => {}
        }
    }
    for &(name, lo, hi) in &ranges[1..] {
        let col = table.column(name)?;
        sel.retain(|&i| col.f64_at(i).is_some_and(|x| x >= lo && x <= hi));
    }
    Ok(sel)
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Cmp { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            Predicate::And(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", parts.join(" AND "))
            }
            Predicate::Or(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", parts.join(" OR "))
            }
            Predicate::Not(p) => write!(f, "NOT ({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::table::TableBuilder;

    fn table() -> Table {
        TableBuilder::new("t")
            .column("x", ColumnBuilder::float([0.0, 1.0, 2.0, 3.0, 4.0]))
            .column("n", ColumnBuilder::int([5, 4, 3, 2, 1]))
            .column("s", ColumnBuilder::str(["a", "b", "a", "c", "b"]))
            .build()
            .unwrap()
    }

    #[test]
    fn between_selects_inclusive_range() {
        let t = table();
        let sel = Predicate::between("x", 1.0, 3.0).select(&t).unwrap();
        assert_eq!(sel, vec![1, 2, 3]);
    }

    #[test]
    fn between_on_int_column() {
        let t = table();
        let sel = Predicate::between("n", 2.0, 4.0).select(&t).unwrap();
        assert_eq!(sel, vec![1, 2, 3]);
    }

    #[test]
    fn conjunction_of_ranges_fast_path() {
        let t = table();
        let p = Predicate::and([
            Predicate::between("x", 1.0, 4.0),
            Predicate::between("n", 1.0, 3.0),
        ]);
        assert_eq!(p.select(&t).unwrap(), vec![2, 3, 4]);
    }

    #[test]
    fn fast_path_matches_slow_path() {
        let t = table();
        let p = Predicate::and([
            Predicate::between("x", 0.5, 3.5),
            Predicate::between("n", 2.0, 5.0),
        ]);
        let fast = p.select(&t).unwrap();
        let slow: Vec<usize> = (0..t.rows())
            .filter(|&r| p.matches(&t, r).unwrap())
            .collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn string_equality() {
        let t = table();
        let sel = Predicate::eq("s", "a").select(&t).unwrap();
        assert_eq!(sel, vec![0, 2]);
    }

    #[test]
    fn boolean_combinators() {
        let t = table();
        let p = Predicate::Or(vec![Predicate::eq("s", "c"), Predicate::eq("n", 5i64)]);
        assert_eq!(p.select(&t).unwrap(), vec![0, 3]);
        let not = Predicate::Not(Box::new(p));
        assert_eq!(not.select(&t).unwrap(), vec![1, 2, 4]);
    }

    #[test]
    fn comparison_ops() {
        let t = table();
        assert_eq!(Predicate::ge("x", 3.0).select(&t).unwrap(), vec![3, 4]);
        assert_eq!(Predicate::le("x", 1.0).select(&t).unwrap(), vec![0, 1]);
        let ne = Predicate::Cmp {
            column: "s".into(),
            op: CmpOp::Ne,
            value: Value::from("a"),
        };
        assert_eq!(ne.select(&t).unwrap(), vec![1, 3, 4]);
    }

    #[test]
    fn cross_type_comparison_is_false_except_ne() {
        let t = table();
        let eq = Predicate::eq("s", 1i64);
        assert!(eq.select(&t).unwrap().is_empty());
        let ne = Predicate::Cmp {
            column: "s".into(),
            op: CmpOp::Ne,
            value: Value::from(1i64),
        };
        assert_eq!(ne.select(&t).unwrap().len(), t.rows());
    }

    #[test]
    fn and_flattens_and_simplifies() {
        let p = Predicate::and([
            Predicate::True,
            Predicate::and([Predicate::between("x", 0.0, 1.0)]),
        ]);
        assert!(matches!(p, Predicate::Between { .. }));
        assert_eq!(Predicate::and([]).condition_count(), 0);
    }

    #[test]
    fn condition_count_counts_leaves() {
        let p = Predicate::and([
            Predicate::between("x", 0.0, 1.0),
            Predicate::Or(vec![Predicate::eq("s", "a"), Predicate::eq("s", "b")]),
        ]);
        assert_eq!(p.condition_count(), 3);
    }

    #[test]
    fn validate_reports_unknown_columns() {
        let t = table();
        assert!(Predicate::between("x", 0.0, 1.0).validate(&t).is_ok());
        assert!(Predicate::between("zzz", 0.0, 1.0).validate(&t).is_err());
        assert!(Predicate::and([
            Predicate::between("x", 0.0, 1.0),
            Predicate::eq("nope", 1i64)
        ])
        .validate(&t)
        .is_err());
    }

    #[test]
    fn display_round_trips_visually() {
        let p = Predicate::and([Predicate::between("x", 1.0, 2.0), Predicate::eq("s", "a")]);
        assert_eq!(p.to_string(), "(x BETWEEN 1 AND 2) AND (s = a)");
    }

    #[test]
    fn true_selects_everything() {
        let t = table();
        assert_eq!(Predicate::True.select(&t).unwrap().len(), t.rows());
    }
}
