//! A small SQL front-end for the query shapes the paper's workloads use.
//!
//! The case studies write their workloads as SQL (Sections 6–7); this
//! parser accepts those statements — and the obvious variations — and
//! produces the logical [`Query`] AST:
//!
//! ```sql
//! SELECT title, rating FROM imdb LIMIT 100 OFFSET 200
//! SELECT COUNT(*) FROM dataroad WHERE x >= 8.146 AND x <= 11.26
//! SELECT HISTOGRAM(y, 56.582, 57.774, 20), COUNT(*) FROM dataroad
//!     WHERE x BETWEEN 8.2 AND 9.1 GROUP BY 1 ORDER BY 1
//! ```
//!
//! The paper's `ROUND((y - min) / width)` group-by expression is spelled
//! `HISTOGRAM(column, min, max, bins)` here — same semantics
//! ([`BinSpec`]), honest about being an equi-width binning rather than
//! general scalar arithmetic. String concatenation projections
//! (`title || '(' || year || ')'`) are supported verbatim.

use std::sync::Arc;

use crate::error::{EngineError, EngineResult};
use crate::predicate::{CmpOp, Predicate};
use crate::query::{BinSpec, ConcatPart, Projection, Query, SelectSpec};
use crate::value::Value;

/// Parses one SQL statement into a [`Query`].
pub fn parse(sql: &str) -> EngineResult<Query> {
    Parser::new(sql).parse_statement()
}

fn err(msg: impl Into<String>) -> EngineError {
    EngineError::InvalidBinSpec(format!("SQL parse error: {}", msg.into()))
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Symbol(char),
    Concat, // ||
    Le,     // <=
    Ge,     // >=
    Ne,     // <>
    Star,
    Eof,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Parser {
        Parser {
            tokens: tokenize(sql),
            pos: 0,
        }
    }

    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Token::Ident(w) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> EngineResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if self.peek() == &Token::Symbol(c) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect_symbol(&mut self, c: char) -> EngineResult<()> {
        if self.eat_symbol(c) {
            Ok(())
        } else {
            Err(err(format!("expected `{c}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> EngineResult<String> {
        match self.next() {
            Token::Ident(w) => Ok(w),
            other => Err(err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> EngineResult<f64> {
        // Allow unary minus.
        let neg = self.eat_symbol('-');
        match self.next() {
            Token::Number(x) => Ok(if neg { -x } else { x }),
            other => Err(err(format!("expected number, found {other:?}"))),
        }
    }

    fn parse_statement(&mut self) -> EngineResult<Query> {
        self.expect_keyword("SELECT")?;

        // COUNT(*) → count query.
        if self.eat_keyword("COUNT") {
            self.expect_symbol('(')?;
            if !matches!(self.next(), Token::Star) {
                return Err(err("expected COUNT(*)"));
            }
            self.expect_symbol(')')?;
            self.expect_keyword("FROM")?;
            let table = self.ident()?;
            let filter = self.parse_optional_where()?;
            self.expect_end()?;
            return Ok(Query::count(table, filter));
        }

        // HISTOGRAM(col, min, max, bins) [, COUNT(*)] → histogram query.
        if self.eat_keyword("HISTOGRAM") {
            self.expect_symbol('(')?;
            let column = self.ident()?;
            self.expect_symbol(',')?;
            let min = self.number()?;
            self.expect_symbol(',')?;
            let max = self.number()?;
            self.expect_symbol(',')?;
            let bins = self.number()? as usize;
            self.expect_symbol(')')?;
            if self.eat_symbol(',') {
                self.expect_keyword("COUNT")?;
                self.expect_symbol('(')?;
                if !matches!(self.next(), Token::Star) {
                    return Err(err("expected COUNT(*)"));
                }
                self.expect_symbol(')')?;
            }
            self.expect_keyword("FROM")?;
            let table = self.ident()?;
            let filter = self.parse_optional_where()?;
            // Optional GROUP BY 1 [ORDER BY 1].
            if self.eat_keyword("GROUP") {
                self.expect_keyword("BY")?;
                let _ = self.number()?;
            }
            if self.eat_keyword("ORDER") {
                self.expect_keyword("BY")?;
                let _ = self.number()?;
            }
            self.expect_end()?;
            return Ok(Query::histogram(
                table,
                BinSpec::new(column, min, max, bins),
                filter,
            ));
        }

        // Plain select with a projection list.
        let projection = self.parse_projection_list()?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let filter = self.parse_optional_where()?;
        let mut limit = None;
        let mut offset = 0usize;
        if self.eat_keyword("LIMIT") {
            limit = Some(self.number()? as usize);
        }
        if self.eat_keyword("OFFSET") {
            offset = self.number()? as usize;
        }
        self.expect_end()?;
        Ok(Query::Select(SelectSpec {
            table: Arc::from(table.as_str()),
            projection,
            filter,
            limit,
            offset,
        }))
    }

    fn expect_end(&mut self) -> EngineResult<()> {
        self.eat_symbol(';');
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(err(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    fn parse_projection_list(&mut self) -> EngineResult<Vec<Projection>> {
        if matches!(self.peek(), Token::Star) {
            self.pos += 1;
            return Ok(Vec::new()); // `*` = all columns
        }
        let mut list = Vec::new();
        loop {
            list.push(self.parse_projection()?);
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(list)
    }

    /// One projection: an identifier, optionally `|| expr || ...`.
    fn parse_projection(&mut self) -> EngineResult<Projection> {
        let first = self.parse_concat_part()?;
        if self.peek() != &Token::Concat {
            return match first {
                ConcatPart::Column(c) => Ok(Projection::Column(c)),
                ConcatPart::Literal(_) => Err(err("a bare string literal is not a projection")),
            };
        }
        let mut parts = vec![first];
        while self.peek() == &Token::Concat {
            self.pos += 1;
            parts.push(self.parse_concat_part()?);
        }
        Ok(Projection::Concat(parts))
    }

    fn parse_concat_part(&mut self) -> EngineResult<ConcatPart> {
        match self.next() {
            Token::Ident(w) => Ok(ConcatPart::Column(Arc::from(w.as_str()))),
            Token::Str(s) => Ok(ConcatPart::Literal(Arc::from(s.as_str()))),
            other => Err(err(format!(
                "expected column or string literal, found {other:?}"
            ))),
        }
    }

    fn parse_optional_where(&mut self) -> EngineResult<Predicate> {
        if self.eat_keyword("WHERE") {
            self.parse_or()
        } else {
            Ok(Predicate::True)
        }
    }

    fn parse_or(&mut self) -> EngineResult<Predicate> {
        let mut terms = vec![self.parse_and()?];
        while self.eat_keyword("OR") {
            terms.push(self.parse_and()?);
        }
        Ok(match terms.pop() {
            Some(only) if terms.is_empty() => only,
            Some(last) => {
                terms.push(last);
                Predicate::Or(terms)
            }
            None => Predicate::True,
        })
    }

    fn parse_and(&mut self) -> EngineResult<Predicate> {
        let mut terms = vec![self.parse_atom()?];
        while self.eat_keyword("AND") {
            terms.push(self.parse_atom()?);
        }
        Ok(Predicate::and(terms))
    }

    fn parse_atom(&mut self) -> EngineResult<Predicate> {
        if self.eat_keyword("NOT") {
            return Ok(Predicate::Not(Box::new(self.parse_atom()?)));
        }
        if self.eat_symbol('(') {
            let inner = self.parse_or()?;
            self.expect_symbol(')')?;
            return Ok(inner);
        }
        if self.eat_keyword("TRUE") {
            return Ok(Predicate::True);
        }
        let column = self.ident()?;
        if self.eat_keyword("BETWEEN") {
            let lo = self.number()?;
            self.expect_keyword("AND")?;
            let hi = self.number()?;
            return Ok(Predicate::between(column, lo, hi));
        }
        let op = match self.next() {
            Token::Symbol('=') => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Le => CmpOp::Le,
            Token::Ge => CmpOp::Ge,
            Token::Symbol('<') => CmpOp::Lt,
            Token::Symbol('>') => CmpOp::Gt,
            other => {
                return Err(err(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let value = match self.peek().clone() {
            Token::Str(s) => {
                self.pos += 1;
                Value::from(s)
            }
            _ => Value::Float(self.number()?),
        };
        Ok(Predicate::Cmp {
            column: Arc::from(column.as_str()),
            op,
            value,
        })
    }
}

fn tokenize(sql: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\'' {
                        if chars.get(i + 1) == Some(&'\'') {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                i += 1; // closing quote
                tokens.push(Token::Str(s));
            }
            '|' if chars.get(i + 1) == Some(&'|') => {
                tokens.push(Token::Concat);
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token::Le);
                i += 2;
            }
            '>' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token::Ge);
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'>') => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            c if c.is_ascii_digit()
                || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && matches!(chars.get(i.wrapping_sub(1)), Some('e' | 'E'))))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                match text.parse::<f64>() {
                    Ok(x) => tokens.push(Token::Number(x)),
                    Err(_) => tokens.push(Token::Ident(text)),
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                tokens.push(Token::Symbol(other));
                i += 1;
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::table::TableBuilder;
    use crate::{Backend, MemBackend};

    fn backend() -> MemBackend {
        let b = MemBackend::new();
        b.database().register(
            TableBuilder::new("imdb")
                .column(
                    "title",
                    ColumnBuilder::str((0..20).map(|i| format!("m{i}"))),
                )
                .column("year", ColumnBuilder::int((0..20).map(|i| 2000 + i)))
                .column(
                    "rating",
                    ColumnBuilder::float((0..20).map(|i| i as f64 / 2.0)),
                )
                .build()
                .unwrap(),
        );
        b
    }

    #[test]
    fn parses_paginated_select() {
        let q = parse("SELECT title, rating FROM imdb LIMIT 5 OFFSET 10").unwrap();
        let out = backend().execute(&q).unwrap();
        let rows = out.result.rows().unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0].as_str(), Some("m10"));
    }

    #[test]
    fn parses_the_papers_q1_projection() {
        let q =
            parse("SELECT title || '(' || year || ')', rating FROM imdb LIMIT 2 OFFSET 0").unwrap();
        let out = backend().execute(&q).unwrap();
        assert_eq!(out.result.rows().unwrap()[0][0].as_str(), Some("m0(2000)"));
    }

    #[test]
    fn parses_count_with_where() {
        let q = parse("SELECT COUNT(*) FROM imdb WHERE rating >= 5.0 AND rating <= 7.0").unwrap();
        let out = backend().execute(&q).unwrap();
        assert_eq!(out.result.scalar_count(), Some(5)); // ratings 5.0..=7.0
    }

    #[test]
    fn parses_between_and_boolean_structure() {
        let q = parse(
            "SELECT COUNT(*) FROM imdb WHERE rating BETWEEN 1 AND 3 OR (year >= 2018 AND NOT rating < 9)",
        )
        .unwrap();
        let filter = q.filter().unwrap();
        assert!(matches!(filter, Predicate::Or(_)));
        assert_eq!(filter.condition_count(), 3);
        assert!(backend().execute(&q).is_ok());
    }

    #[test]
    fn parses_histogram_with_group_order_by() {
        let q = parse(
            "SELECT HISTOGRAM(rating, 0, 10, 20), COUNT(*) FROM imdb \
             WHERE year BETWEEN 2000 AND 2019 GROUP BY 1 ORDER BY 1",
        )
        .unwrap();
        let out = backend().execute(&q).unwrap();
        let h = out.result.histogram().unwrap();
        assert_eq!(h.bins(), 21);
        assert_eq!(h.total(), 20);
    }

    #[test]
    fn parses_string_equality_and_star() {
        let q = parse("SELECT * FROM imdb WHERE title = 'm3'").unwrap();
        let out = backend().execute(&q).unwrap();
        assert_eq!(out.result.rows().unwrap().len(), 1);
    }

    #[test]
    fn parses_negative_numbers_and_ne() {
        let q = parse("SELECT COUNT(*) FROM imdb WHERE rating > -1 AND rating <> 0.5").unwrap();
        let out = backend().execute(&q).unwrap();
        assert_eq!(out.result.scalar_count(), Some(19));
    }

    #[test]
    fn escaped_quotes_in_literals() {
        let q = parse("SELECT title || ' it''s ' || year FROM imdb LIMIT 1").unwrap();
        let out = backend().execute(&q).unwrap();
        assert_eq!(
            out.result.rows().unwrap()[0][0].as_str(),
            Some("m0 it's 2000")
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select count(*) from imdb where rating between 0 and 1").is_ok());
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "SELECT",
            "SELECT FROM imdb",
            "SELECT COUNT(title) FROM imdb",
            "SELECT title FROM imdb LIMIT x",
            "SELECT title FROM imdb WHERE rating >",
            "INSERT INTO imdb VALUES (1)",
            "SELECT title FROM imdb extra garbage",
            "SELECT HISTOGRAM(rating, 0, 10) FROM imdb",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn trailing_semicolon_is_fine() {
        assert!(parse("SELECT COUNT(*) FROM imdb;").is_ok());
    }

    #[test]
    fn round_trips_display_of_count() {
        // parse → display → contains the same pieces.
        let q = parse("SELECT COUNT(*) FROM imdb WHERE rating BETWEEN 2 AND 4").unwrap();
        let shown = q.to_string();
        assert!(shown.contains("COUNT(*)"));
        assert!(shown.contains("BETWEEN 2 AND 4"));
    }
}
