//! SQL front-end: tokenizer, canonical AST, binder, and lowering.
//!
//! The case studies write their workloads as SQL (Sections 6–7); this
//! module parses those statements — and the obvious variations — into a
//! canonical [`Statement`]/[`Expr`] AST that the binder, the
//! [`planner`](crate::planner), and execution all consume:
//!
//! ```sql
//! SELECT title, rating FROM imdb LIMIT 100 OFFSET 200
//! SELECT COUNT(*) FROM dataroad WHERE x >= 8.146 AND x <= 11.26
//! SELECT HISTOGRAM(y, 56.582, 57.774, 20), COUNT(*) FROM dataroad
//!     WHERE x BETWEEN 8.2 AND 9.1 GROUP BY 1 ORDER BY 1
//! ```
//!
//! The paper's `ROUND((y - min) / width)` group-by expression is spelled
//! `HISTOGRAM(column, min, max, bins)` here — same semantics
//! ([`BinSpec`]), honest about being an equi-width binning rather than
//! general scalar arithmetic. String concatenation projections
//! (`title || '(' || year || ')'`) are supported verbatim.
//!
//! Three entry points, in increasing strictness:
//!
//! * [`parse_statement`] — text → [`Statement`]. Syntax errors are
//!   [`EngineError::SqlParse`] with the byte offset of the offending
//!   token.
//! * [`parse`] — text → logical [`Query`], catalog-free (unknown tables
//!   and columns surface at execution time, as before).
//! * [`bind`] — [`Statement`] + catalog → [`Query`], rejecting unknown
//!   tables ([`EngineError::UnknownTable`]), unknown columns
//!   ([`EngineError::UnknownColumn`]) and non-numeric histogram columns
//!   ([`EngineError::TypeMismatch`]) before anything executes.
//!
//! The AST renders back to SQL via `Display`, and the render is
//! guaranteed to reparse to an identical tree (see the seeded
//! round-trip fuzz test) — which is what lets `EXPLAIN` output and
//! shipped plan text embed statements verbatim.

use std::fmt;
use std::sync::Arc;

use crate::backend::Database;
use crate::error::{EngineError, EngineResult};
use crate::predicate::{CmpOp, Predicate};
use crate::query::{BinSpec, ConcatPart, Projection, Query, SelectSpec};
use crate::value::Value;

/// Parses one SQL statement into a logical [`Query`] without consulting
/// a catalog. Unknown tables/columns surface when the query executes.
pub fn parse(sql: &str) -> EngineResult<Query> {
    lower(&parse_statement(sql)?)
}

/// Parses one SQL statement into the canonical [`Statement`] AST.
pub fn parse_statement(sql: &str) -> EngineResult<Statement> {
    Parser::new(sql)?.parse_statement()
}

/// Binds a parsed [`Statement`] against a database catalog, producing a
/// logical [`Query`]. Unlike [`parse`], this rejects unknown tables,
/// unknown columns, and non-numeric histogram columns up front.
pub fn bind(db: &Database, stmt: &Statement) -> EngineResult<Query> {
    let query = lower(stmt)?;
    let Statement::Select(sel) = stmt;
    let table = db.table(&sel.table)?;
    match &query {
        Query::Select(spec) => {
            for proj in &spec.projection {
                for col in proj.referenced_columns() {
                    table.column(col)?;
                }
            }
            spec.filter.validate(&table)?;
        }
        Query::Count { filter, .. } => filter.validate(&table)?,
        Query::Histogram { bins, filter, .. } => {
            let col = table.column(&bins.column)?;
            if !col.data_type().is_numeric() {
                return Err(EngineError::TypeMismatch {
                    column: bins.column.to_string(),
                    expected: "numeric column for binning",
                });
            }
            filter.validate(&table)?;
        }
        // The SQL surface never lowers to a join; nothing extra to bind.
        Query::Join(_) => {}
    }
    Ok(query)
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// A parsed SQL statement. The surface is SELECT-only today; the enum
/// exists so future statement kinds extend the AST rather than the
/// parser's return type.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT ...` statement.
    Select(SelectStatement),
}

/// The body of a `SELECT` statement, mirroring the textual clause order.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// Projection list (`*`, `COUNT(*)`, `HISTOGRAM(...)`, or expressions).
    pub items: Vec<SelectItem>,
    /// Table named in `FROM`.
    pub table: String,
    /// `WHERE` clause, if present.
    pub filter: Option<Expr>,
    /// `GROUP BY 1` was present (histogram statements only).
    pub group_by_1: bool,
    /// `ORDER BY 1` was present (histogram statements only).
    pub order_by_1: bool,
    /// `LIMIT n`, if present.
    pub limit: Option<usize>,
    /// `OFFSET n`, if present.
    pub offset: Option<usize>,
}

/// One entry in a `SELECT` projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column.
    Star,
    /// `COUNT(*)`.
    CountStar,
    /// `HISTOGRAM(column, min, max, bins)` — the paper's equi-width
    /// `ROUND((col - min) / width)` binning as a named aggregate.
    Histogram {
        /// Column being binned.
        column: String,
        /// Inclusive domain minimum.
        min: f64,
        /// Inclusive domain maximum.
        max: f64,
        /// Number of equi-width bins.
        bins: usize,
    },
    /// A scalar projection expression (column or `||` concatenation).
    Expr(Expr),
}

/// An expression: scalar (projections) or boolean (`WHERE` clauses).
/// One enum for both, as in the snippet-2 shape — the parser only
/// produces well-formed combinations, and [`lower`] rejects the rest.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference.
    Column(String),
    /// A numeric literal.
    Number(f64),
    /// A string literal.
    Str(String),
    /// `a || 'lit' || b` concatenation (parts are columns or strings).
    Concat(Vec<Expr>),
    /// The literal `TRUE`.
    True,
    /// `column BETWEEN lo AND hi` (inclusive both ends).
    Between {
        /// Column tested.
        column: String,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// `column <op> literal` comparison.
    Cmp {
        /// Column on the left-hand side.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal ([`Expr::Number`] or [`Expr::Str`]).
        rhs: Box<Expr>,
    },
    /// Conjunction of two or more terms.
    And(Vec<Expr>),
    /// Disjunction of two or more terms.
    Or(Vec<Expr>),
    /// Negation of one term.
    Not(Box<Expr>),
}

fn quote_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "'{}'", s.replace('\'', "''"))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Parenthesize a sub-term when the grammar demands an atom (or
        // an AND-level term) but the term binds looser. This is what
        // makes `render → reparse` the identity on parser output.
        fn atom(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
            if matches!(e, Expr::And(_) | Expr::Or(_)) {
                write!(f, "({e})")
            } else {
                write!(f, "{e}")
            }
        }
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Number(x) => write!(f, "{x}"),
            Expr::Str(s) => quote_str(f, s),
            Expr::Concat(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Expr::True => write!(f, "TRUE"),
            Expr::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            Expr::Cmp { column, op, rhs } => write!(f, "{column} {op} {rhs}"),
            Expr::And(terms) => {
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    atom(f, t)?;
                }
                Ok(())
            }
            Expr::Or(terms) => {
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    if matches!(t, Expr::Or(_)) {
                        write!(f, "({t})")?;
                    } else {
                        write!(f, "{t}")?;
                    }
                }
                Ok(())
            }
            Expr::Not(inner) => {
                write!(f, "NOT ")?;
                atom(f, inner)
            }
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => write!(f, "*"),
            SelectItem::CountStar => write!(f, "COUNT(*)"),
            SelectItem::Histogram {
                column,
                min,
                max,
                bins,
            } => write!(f, "HISTOGRAM({column}, {min}, {max}, {bins})"),
            SelectItem::Expr(e) => write!(f, "{e}"),
        }
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.table)?;
        if let Some(filter) = &self.filter {
            write!(f, " WHERE {filter}")?;
        }
        if self.group_by_1 {
            write!(f, " GROUP BY 1")?;
        }
        if self.order_by_1 {
            write!(f, " ORDER BY 1")?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        if let Some(offset) = self.offset {
            write!(f, " OFFSET {offset}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Statement::Select(s) = self;
        write!(f, "{s}")
    }
}

// ---------------------------------------------------------------------------
// Lowering: Statement → Query
// ---------------------------------------------------------------------------

fn lower_error(msg: impl Into<String>) -> EngineError {
    EngineError::SqlParse {
        pos: 0,
        msg: msg.into(),
    }
}

fn lower_predicate(expr: &Expr) -> EngineResult<Predicate> {
    match expr {
        Expr::True => Ok(Predicate::True),
        Expr::Between { column, lo, hi } => Ok(Predicate::between(column.as_str(), *lo, *hi)),
        Expr::Cmp { column, op, rhs } => {
            let value = match rhs.as_ref() {
                Expr::Number(x) => Value::Float(*x),
                Expr::Str(s) => Value::from(s.clone()),
                other => return Err(lower_error(format!("bad comparison operand: {other}"))),
            };
            Ok(Predicate::Cmp {
                column: Arc::from(column.as_str()),
                op: *op,
                value,
            })
        }
        Expr::And(terms) => Ok(Predicate::and(
            terms
                .iter()
                .map(lower_predicate)
                .collect::<EngineResult<Vec<_>>>()?,
        )),
        Expr::Or(terms) => Ok(Predicate::Or(
            terms
                .iter()
                .map(lower_predicate)
                .collect::<EngineResult<Vec<_>>>()?,
        )),
        Expr::Not(inner) => Ok(Predicate::Not(Box::new(lower_predicate(inner)?))),
        other => Err(lower_error(format!("not a boolean expression: {other}"))),
    }
}

fn lower_projection(expr: &Expr) -> EngineResult<Projection> {
    match expr {
        Expr::Column(c) => Ok(Projection::Column(Arc::from(c.as_str()))),
        Expr::Concat(parts) => {
            let parts = parts
                .iter()
                .map(|p| match p {
                    Expr::Column(c) => Ok(ConcatPart::Column(Arc::from(c.as_str()))),
                    Expr::Str(s) => Ok(ConcatPart::Literal(Arc::from(s.as_str()))),
                    other => Err(lower_error(format!("bad concat part: {other}"))),
                })
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Projection::Concat(parts))
        }
        other => Err(lower_error(format!("not a projection: {other}"))),
    }
}

/// Lowers a [`Statement`] to the logical [`Query`] the executor runs.
fn lower(stmt: &Statement) -> EngineResult<Query> {
    let Statement::Select(sel) = stmt;
    let filter = match &sel.filter {
        Some(expr) => lower_predicate(expr)?,
        None => Predicate::True,
    };
    match sel.items.as_slice() {
        [SelectItem::CountStar] => Ok(Query::count(sel.table.as_str(), filter)),
        [SelectItem::Histogram {
            column,
            min,
            max,
            bins,
        }] => Ok(Query::histogram(
            sel.table.as_str(),
            BinSpec::new(column.as_str(), *min, *max, *bins),
            filter,
        )),
        [SelectItem::Histogram {
            column,
            min,
            max,
            bins,
        }, SelectItem::CountStar] => Ok(Query::histogram(
            sel.table.as_str(),
            BinSpec::new(column.as_str(), *min, *max, *bins),
            filter,
        )),
        [SelectItem::Star] => Ok(Query::Select(SelectSpec {
            table: Arc::from(sel.table.as_str()),
            projection: Vec::new(),
            filter,
            limit: sel.limit,
            offset: sel.offset.unwrap_or(0),
        })),
        items => {
            let projection = items
                .iter()
                .map(|item| match item {
                    SelectItem::Expr(e) => lower_projection(e),
                    other => Err(lower_error(format!(
                        "`{other}` cannot be mixed into a projection list"
                    ))),
                })
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Query::Select(SelectSpec {
                table: Arc::from(sel.table.as_str()),
                projection,
                filter,
                limit: sel.limit,
                offset: sel.offset.unwrap_or(0),
            }))
        }
    }
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Symbol(char),
    Concat, // ||
    Le,     // <=
    Ge,     // >=
    Ne,     // <>
    Star,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(w) => write!(f, "`{w}`"),
            Token::Number(x) => write!(f, "number {x}"),
            Token::Str(s) => write!(f, "string '{s}'"),
            Token::Symbol(c) => write!(f, "`{c}`"),
            Token::Concat => write!(f, "`||`"),
            Token::Le => write!(f, "`<=`"),
            Token::Ge => write!(f, "`>=`"),
            Token::Ne => write!(f, "`<>`"),
            Token::Star => write!(f, "`*`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenizes `sql` into `(token, byte offset)` pairs. The only lexical
/// error is an unterminated string literal.
fn tokenize(sql: &str) -> EngineResult<Vec<(Token, usize)>> {
    let mut tokens = Vec::new();
    let chars: Vec<(usize, char)> = sql.char_indices().collect();
    let mut i = 0;
    while i < chars.len() {
        let (at, c) = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                let mut closed = false;
                i += 1;
                while i < chars.len() {
                    if chars[i].1 == '\'' {
                        if chars.get(i + 1).map(|&(_, c)| c) == Some('\'') {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        closed = true;
                        break;
                    }
                    s.push(chars[i].1);
                    i += 1;
                }
                if !closed {
                    return Err(EngineError::SqlParse {
                        pos: at,
                        msg: "unterminated string literal".into(),
                    });
                }
                i += 1; // closing quote
                tokens.push((Token::Str(s), at));
            }
            '|' if chars.get(i + 1).map(|&(_, c)| c) == Some('|') => {
                tokens.push((Token::Concat, at));
                i += 2;
            }
            '<' if chars.get(i + 1).map(|&(_, c)| c) == Some('=') => {
                tokens.push((Token::Le, at));
                i += 2;
            }
            '>' if chars.get(i + 1).map(|&(_, c)| c) == Some('=') => {
                tokens.push((Token::Ge, at));
                i += 2;
            }
            '<' if chars.get(i + 1).map(|&(_, c)| c) == Some('>') => {
                tokens.push((Token::Ne, at));
                i += 2;
            }
            '*' => {
                tokens.push((Token::Star, at));
                i += 1;
            }
            c if c.is_ascii_digit()
                || (c == '.' && chars.get(i + 1).is_some_and(|&(_, d)| d.is_ascii_digit())) =>
            {
                let start = i;
                while i < chars.len()
                    && (chars[i].1.is_ascii_digit()
                        || chars[i].1 == '.'
                        || chars[i].1 == 'e'
                        || chars[i].1 == 'E'
                        || ((chars[i].1 == '+' || chars[i].1 == '-')
                            && matches!(
                                chars.get(i.wrapping_sub(1)).map(|&(_, c)| c),
                                Some('e' | 'E')
                            )))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().map(|&(_, c)| c).collect();
                match text.parse::<f64>() {
                    Ok(x) => tokens.push((Token::Number(x), at)),
                    Err(_) => {
                        return Err(EngineError::SqlParse {
                            pos: at,
                            msg: format!("malformed numeric literal `{text}`"),
                        })
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].1.is_alphanumeric() || chars[i].1 == '_') {
                    i += 1;
                }
                tokens.push((
                    Token::Ident(chars[start..i].iter().map(|&(_, c)| c).collect()),
                    at,
                ));
            }
            other => {
                tokens.push((Token::Symbol(other), at));
                i += 1;
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    eof_pos: usize,
}

impl Parser {
    fn new(sql: &str) -> EngineResult<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
            eof_pos: sql.len(),
        })
    }

    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).map_or(&Token::Eof, |(t, _)| t)
    }

    fn peek2(&self) -> &Token {
        self.tokens
            .get(self.pos + 1)
            .map_or(&Token::Eof, |(t, _)| t)
    }

    /// Byte offset of the current token (end of input at EOF).
    fn at(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.eof_pos, |&(_, at)| at)
    }

    fn error(&self, msg: impl Into<String>) -> EngineError {
        EngineError::SqlParse {
            pos: self.at(),
            msg: msg.into(),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> EngineResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if self.peek() == &Token::Symbol(c) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect_symbol(&mut self, c: char) -> EngineResult<()> {
        if self.eat_symbol(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{c}`, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> EngineResult<String> {
        match self.peek().clone() {
            Token::Ident(w) => {
                self.pos += 1;
                Ok(w)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn number(&mut self) -> EngineResult<f64> {
        // Allow unary minus.
        let neg = self.eat_symbol('-');
        match self.peek().clone() {
            Token::Number(x) => {
                self.pos += 1;
                Ok(if neg { -x } else { x })
            }
            other => Err(self.error(format!("expected number, found {other}"))),
        }
    }

    fn count_star(&mut self) -> EngineResult<()> {
        self.expect_keyword("COUNT")?;
        self.expect_symbol('(')?;
        if !matches!(self.peek(), Token::Star) {
            return Err(self.error("expected COUNT(*)"));
        }
        self.pos += 1;
        self.expect_symbol(')')
    }

    fn parse_statement(&mut self) -> EngineResult<Statement> {
        self.expect_keyword("SELECT")?;

        // COUNT(*) → count statement.
        if self.peek_keyword("COUNT") && self.peek2() == &Token::Symbol('(') {
            self.count_star()?;
            self.expect_keyword("FROM")?;
            let table = self.ident()?;
            let filter = self.parse_optional_where()?;
            self.expect_end()?;
            return Ok(Statement::Select(SelectStatement {
                items: vec![SelectItem::CountStar],
                table,
                filter,
                group_by_1: false,
                order_by_1: false,
                limit: None,
                offset: None,
            }));
        }

        // HISTOGRAM(col, min, max, bins) [, COUNT(*)] → histogram statement.
        if self.peek_keyword("HISTOGRAM") && self.peek2() == &Token::Symbol('(') {
            self.pos += 1;
            self.expect_symbol('(')?;
            let column = self.ident()?;
            self.expect_symbol(',')?;
            let min = self.number()?;
            self.expect_symbol(',')?;
            let max = self.number()?;
            self.expect_symbol(',')?;
            let bins_at = self.at();
            let bins_raw = self.number()?;
            if bins_raw < 0.0 || bins_raw.fract() != 0.0 {
                return Err(EngineError::SqlParse {
                    pos: bins_at,
                    msg: format!("bin count must be a non-negative integer, got {bins_raw}"),
                });
            }
            self.expect_symbol(')')?;
            let mut items = vec![SelectItem::Histogram {
                column,
                min,
                max,
                bins: bins_raw as usize,
            }];
            if self.eat_symbol(',') {
                self.count_star()?;
                items.push(SelectItem::CountStar);
            }
            self.expect_keyword("FROM")?;
            let table = self.ident()?;
            let filter = self.parse_optional_where()?;
            // Optional GROUP BY 1 [ORDER BY 1] — positional references
            // to the binning expression, as the paper writes them.
            let group_by_1 = self.parse_positional_ref("GROUP")?;
            let order_by_1 = self.parse_positional_ref("ORDER")?;
            self.expect_end()?;
            return Ok(Statement::Select(SelectStatement {
                items,
                table,
                filter,
                group_by_1,
                order_by_1,
                limit: None,
                offset: None,
            }));
        }

        // Plain select with a projection list.
        let items = self.parse_projection_list()?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let filter = self.parse_optional_where()?;
        let mut limit = None;
        let mut offset = None;
        if self.eat_keyword("LIMIT") {
            let at = self.at();
            let n = self.number()?;
            limit = Some(usize_literal(n, at, "LIMIT")?);
        }
        if self.eat_keyword("OFFSET") {
            let at = self.at();
            let n = self.number()?;
            offset = Some(usize_literal(n, at, "OFFSET")?);
        }
        self.expect_end()?;
        Ok(Statement::Select(SelectStatement {
            items,
            table,
            filter,
            group_by_1: false,
            order_by_1: false,
            limit,
            offset,
        }))
    }

    /// `GROUP BY 1` / `ORDER BY 1` — the paper's positional spelling.
    fn parse_positional_ref(&mut self, kw: &str) -> EngineResult<bool> {
        if !self.eat_keyword(kw) {
            return Ok(false);
        }
        self.expect_keyword("BY")?;
        let at = self.at();
        let n = self.number()?;
        if n != 1.0 {
            return Err(EngineError::SqlParse {
                pos: at,
                msg: format!("only `{kw} BY 1` (the binning expression) is supported, got {n}"),
            });
        }
        Ok(true)
    }

    fn expect_end(&mut self) -> EngineResult<()> {
        self.eat_symbol(';');
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {}", self.peek())))
        }
    }

    fn parse_projection_list(&mut self) -> EngineResult<Vec<SelectItem>> {
        if matches!(self.peek(), Token::Star) {
            self.pos += 1;
            return Ok(vec![SelectItem::Star]); // `*` = all columns
        }
        let mut list = Vec::new();
        loop {
            list.push(SelectItem::Expr(self.parse_projection()?));
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(list)
    }

    /// One projection: an identifier, optionally `|| expr || ...`.
    fn parse_projection(&mut self) -> EngineResult<Expr> {
        let first_at = self.at();
        let first = self.parse_concat_part()?;
        if self.peek() != &Token::Concat {
            return match first {
                Expr::Column(_) => Ok(first),
                _ => Err(EngineError::SqlParse {
                    pos: first_at,
                    msg: "a bare string literal is not a projection".into(),
                }),
            };
        }
        let mut parts = vec![first];
        while self.peek() == &Token::Concat {
            self.pos += 1;
            parts.push(self.parse_concat_part()?);
        }
        Ok(Expr::Concat(parts))
    }

    fn parse_concat_part(&mut self) -> EngineResult<Expr> {
        match self.peek().clone() {
            Token::Ident(w) => {
                self.pos += 1;
                Ok(Expr::Column(w))
            }
            Token::Str(s) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            other => Err(self.error(format!("expected column or string literal, found {other}"))),
        }
    }

    fn parse_optional_where(&mut self) -> EngineResult<Option<Expr>> {
        if self.eat_keyword("WHERE") {
            Ok(Some(self.parse_or()?))
        } else {
            Ok(None)
        }
    }

    fn parse_or(&mut self) -> EngineResult<Expr> {
        let mut terms = vec![self.parse_and()?];
        while self.eat_keyword("OR") {
            terms.push(self.parse_and()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Expr::Or(terms)
        })
    }

    fn parse_and(&mut self) -> EngineResult<Expr> {
        let mut terms = vec![self.parse_atom()?];
        while self.eat_keyword("AND") {
            terms.push(self.parse_atom()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Expr::And(terms)
        })
    }

    fn parse_atom(&mut self) -> EngineResult<Expr> {
        if self.eat_keyword("NOT") {
            return Ok(Expr::Not(Box::new(self.parse_atom()?)));
        }
        if self.eat_symbol('(') {
            let inner = self.parse_or()?;
            self.expect_symbol(')')?;
            return Ok(inner);
        }
        if self.eat_keyword("TRUE") {
            return Ok(Expr::True);
        }
        let column = self.ident()?;
        if self.eat_keyword("BETWEEN") {
            let lo = self.number()?;
            self.expect_keyword("AND")?;
            let hi = self.number()?;
            return Ok(Expr::Between { column, lo, hi });
        }
        let op = match self.peek() {
            Token::Symbol('=') => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Le => CmpOp::Le,
            Token::Ge => CmpOp::Ge,
            Token::Symbol('<') => CmpOp::Lt,
            Token::Symbol('>') => CmpOp::Gt,
            other => {
                return Err(self.error(format!("expected comparison operator, found {other}")));
            }
        };
        self.pos += 1;
        let rhs = match self.peek().clone() {
            Token::Str(s) => {
                self.pos += 1;
                Expr::Str(s)
            }
            _ => Expr::Number(self.number()?),
        };
        Ok(Expr::Cmp {
            column,
            op,
            rhs: Box::new(rhs),
        })
    }
}

fn usize_literal(n: f64, at: usize, clause: &str) -> EngineResult<usize> {
    if n < 0.0 || n.fract() != 0.0 {
        return Err(EngineError::SqlParse {
            pos: at,
            msg: format!("{clause} takes a non-negative integer, got {n}"),
        });
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::table::TableBuilder;
    use crate::{Backend, MemBackend};

    fn backend() -> MemBackend {
        let b = MemBackend::new();
        b.database().register(
            TableBuilder::new("imdb")
                .column(
                    "title",
                    ColumnBuilder::str((0..20).map(|i| format!("m{i}"))),
                )
                .column("year", ColumnBuilder::int((0..20).map(|i| 2000 + i)))
                .column(
                    "rating",
                    ColumnBuilder::float((0..20).map(|i| i as f64 / 2.0)),
                )
                .build()
                .unwrap(),
        );
        b
    }

    #[test]
    fn parses_paginated_select() {
        let q = parse("SELECT title, rating FROM imdb LIMIT 5 OFFSET 10").unwrap();
        let out = backend().execute(&q).unwrap();
        let rows = out.result.rows().unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0].as_str(), Some("m10"));
    }

    #[test]
    fn parses_the_papers_q1_projection() {
        let q =
            parse("SELECT title || '(' || year || ')', rating FROM imdb LIMIT 2 OFFSET 0").unwrap();
        let out = backend().execute(&q).unwrap();
        assert_eq!(out.result.rows().unwrap()[0][0].as_str(), Some("m0(2000)"));
    }

    #[test]
    fn parses_count_with_where() {
        let q = parse("SELECT COUNT(*) FROM imdb WHERE rating >= 5.0 AND rating <= 7.0").unwrap();
        let out = backend().execute(&q).unwrap();
        assert_eq!(out.result.scalar_count(), Some(5)); // ratings 5.0..=7.0
    }

    #[test]
    fn parses_between_and_boolean_structure() {
        let q = parse(
            "SELECT COUNT(*) FROM imdb WHERE rating BETWEEN 1 AND 3 OR (year >= 2018 AND NOT rating < 9)",
        )
        .unwrap();
        let filter = q.filter().unwrap();
        assert!(matches!(filter, Predicate::Or(_)));
        assert_eq!(filter.condition_count(), 3);
        assert!(backend().execute(&q).is_ok());
    }

    #[test]
    fn parses_histogram_with_group_order_by() {
        let q = parse(
            "SELECT HISTOGRAM(rating, 0, 10, 20), COUNT(*) FROM imdb \
             WHERE year BETWEEN 2000 AND 2019 GROUP BY 1 ORDER BY 1",
        )
        .unwrap();
        let out = backend().execute(&q).unwrap();
        let h = out.result.histogram().unwrap();
        assert_eq!(h.bins(), 21);
        assert_eq!(h.total(), 20);
    }

    #[test]
    fn parses_string_equality_and_star() {
        let q = parse("SELECT * FROM imdb WHERE title = 'm3'").unwrap();
        let out = backend().execute(&q).unwrap();
        assert_eq!(out.result.rows().unwrap().len(), 1);
    }

    #[test]
    fn parses_negative_numbers_and_ne() {
        let q = parse("SELECT COUNT(*) FROM imdb WHERE rating > -1 AND rating <> 0.5").unwrap();
        let out = backend().execute(&q).unwrap();
        assert_eq!(out.result.scalar_count(), Some(19));
    }

    #[test]
    fn escaped_quotes_in_literals() {
        let q = parse("SELECT title || ' it''s ' || year FROM imdb LIMIT 1").unwrap();
        let out = backend().execute(&q).unwrap();
        assert_eq!(
            out.result.rows().unwrap()[0][0].as_str(),
            Some("m0 it's 2000")
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select count(*) from imdb where rating between 0 and 1").is_ok());
    }

    #[test]
    fn trailing_semicolon_is_fine() {
        assert!(parse("SELECT COUNT(*) FROM imdb;").is_ok());
    }

    #[test]
    fn round_trips_display_of_count() {
        // parse → display → contains the same pieces.
        let q = parse("SELECT COUNT(*) FROM imdb WHERE rating BETWEEN 2 AND 4").unwrap();
        let shown = q.to_string();
        assert!(shown.contains("COUNT(*)"));
        assert!(shown.contains("BETWEEN 2 AND 4"));
    }

    // -- satellite: typed parse errors with positions -----------------------

    /// Table-driven negative battery: every malformed input must fail
    /// with `SqlParse`, the reported byte offset must point at the
    /// offending token, and the message must name what went wrong.
    #[test]
    fn rejects_malformed_statements_with_positions() {
        struct Case {
            sql: &'static str,
            pos: usize,
            msg_contains: &'static str,
        }
        let cases = [
            // Truncated input: error lands at end of input.
            Case {
                sql: "SELECT",
                pos: 6,
                msg_contains: "expected",
            },
            Case {
                sql: "SELECT title FROM",
                pos: 17,
                msg_contains: "identifier",
            },
            Case {
                sql: "SELECT title FROM imdb WHERE rating >",
                pos: 37,
                msg_contains: "number",
            },
            Case {
                sql: "SELECT title FROM imdb WHERE rating BETWEEN 1 AND",
                pos: 49,
                msg_contains: "number",
            },
            // Wrong token in place: error points at the token.
            Case {
                sql: "SELECT FROM imdb",
                pos: 12,
                msg_contains: "expected `FROM`",
            },
            Case {
                sql: "SELECT COUNT(title) FROM imdb",
                pos: 13,
                msg_contains: "COUNT(*)",
            },
            Case {
                sql: "SELECT title FROM imdb LIMIT x",
                pos: 29,
                msg_contains: "number",
            },
            Case {
                sql: "INSERT INTO imdb VALUES (1)",
                pos: 0,
                msg_contains: "expected `SELECT`",
            },
            Case {
                sql: "SELECT title FROM imdb extra garbage",
                pos: 23,
                msg_contains: "trailing",
            },
            Case {
                sql: "SELECT HISTOGRAM(rating, 0, 10) FROM imdb",
                pos: 30,
                msg_contains: "expected `,`",
            },
            // Unbalanced parens.
            Case {
                sql: "SELECT COUNT(*) FROM imdb WHERE (rating > 1",
                pos: 43,
                msg_contains: "expected `)`",
            },
            Case {
                sql: "SELECT COUNT(* FROM imdb",
                pos: 15,
                msg_contains: "expected `)`",
            },
            // Bad literals.
            Case {
                sql: "SELECT COUNT(*) FROM imdb WHERE title = 'unterminated",
                pos: 40,
                msg_contains: "unterminated string literal",
            },
            Case {
                sql: "SELECT 'bare' FROM imdb",
                pos: 7,
                msg_contains: "bare string literal",
            },
            Case {
                sql: "SELECT HISTOGRAM(rating, 0, 10, 2.5) FROM imdb",
                pos: 32,
                msg_contains: "non-negative integer",
            },
            Case {
                sql: "SELECT title FROM imdb LIMIT -3",
                pos: 29,
                msg_contains: "non-negative integer",
            },
            // Positional group/order refs other than 1.
            Case {
                sql: "SELECT HISTOGRAM(rating, 0, 10, 4) FROM imdb GROUP BY 2",
                pos: 54,
                msg_contains: "GROUP BY 1",
            },
        ];
        for case in cases {
            match parse(case.sql) {
                Err(EngineError::SqlParse { pos, msg }) => {
                    assert_eq!(
                        pos, case.pos,
                        "wrong position for {:?}: got {pos} ({msg})",
                        case.sql
                    );
                    assert!(
                        msg.contains(case.msg_contains),
                        "message {msg:?} for {:?} should contain {:?}",
                        case.sql,
                        case.msg_contains
                    );
                }
                other => panic!("{:?} should fail with SqlParse, got {other:?}", case.sql),
            }
        }
    }

    #[test]
    fn binder_rejects_unknown_tables_and_columns() {
        let b = backend();
        let db = b.database();
        let stmt = parse_statement("SELECT COUNT(*) FROM nope").unwrap();
        assert_eq!(
            bind(&db, &stmt).unwrap_err(),
            EngineError::UnknownTable("nope".into())
        );
        let stmt = parse_statement("SELECT COUNT(*) FROM imdb WHERE missing > 1").unwrap();
        assert!(matches!(
            bind(&db, &stmt),
            Err(EngineError::UnknownColumn { column, .. }) if column == "missing"
        ));
        let stmt = parse_statement("SELECT title, missing FROM imdb").unwrap();
        assert!(matches!(
            bind(&db, &stmt),
            Err(EngineError::UnknownColumn { column, .. }) if column == "missing"
        ));
        let stmt = parse_statement("SELECT HISTOGRAM(title, 0, 10, 4) FROM imdb").unwrap();
        assert!(matches!(
            bind(&db, &stmt),
            Err(EngineError::TypeMismatch { .. })
        ));
        // A well-formed statement binds to the same query `parse` gives.
        let sql = "SELECT HISTOGRAM(rating, 0, 10, 4), COUNT(*) FROM imdb WHERE year >= 2005";
        let stmt = parse_statement(sql).unwrap();
        // Query carries no PartialEq (predicates hold f64), so compare
        // the rendered logical queries.
        assert_eq!(
            bind(&db, &stmt).unwrap().to_string(),
            parse(sql).unwrap().to_string()
        );
    }

    // -- satellite: seeded render → reparse round-trip fuzz ------------------

    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            // splitmix64: deterministic, dependency-free.
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn column(&mut self) -> String {
            const COLS: [&str; 5] = ["x", "y", "rating", "year_built", "w_2"];
            COLS[self.below(COLS.len() as u64) as usize].to_string()
        }

        fn string(&mut self) -> String {
            const STRS: [&str; 5] = ["alpha", "it's", "", "(", "two words"];
            STRS[self.below(STRS.len() as u64) as usize].to_string()
        }

        fn num(&mut self) -> f64 {
            const NUMS: [f64; 7] = [-137.361, -8.608, 0.0, 0.5, 8.146, 56.582, 1000.0];
            NUMS[self.below(NUMS.len() as u64) as usize]
        }

        fn op(&mut self) -> CmpOp {
            const OPS: [CmpOp; 6] = [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ];
            OPS[self.below(OPS.len() as u64) as usize]
        }
    }

    fn gen_bool_expr(rng: &mut Rng, depth: usize) -> Expr {
        let leaf = depth == 0;
        match if leaf { rng.below(4) } else { rng.below(7) } {
            0 => Expr::True,
            1 => Expr::Between {
                column: rng.column(),
                lo: rng.num(),
                hi: rng.num(),
            },
            2 => Expr::Cmp {
                column: rng.column(),
                op: rng.op(),
                rhs: Box::new(Expr::Number(rng.num())),
            },
            3 => Expr::Cmp {
                column: rng.column(),
                op: if rng.below(2) == 0 {
                    CmpOp::Eq
                } else {
                    CmpOp::Ne
                },
                rhs: Box::new(Expr::Str(rng.string())),
            },
            4 => Expr::And(
                (0..2 + rng.below(2))
                    .map(|_| gen_bool_expr(rng, depth - 1))
                    .collect(),
            ),
            5 => Expr::Or(
                (0..2 + rng.below(2))
                    .map(|_| gen_bool_expr(rng, depth - 1))
                    .collect(),
            ),
            _ => Expr::Not(Box::new(gen_bool_expr(rng, depth - 1))),
        }
    }

    fn gen_projection(rng: &mut Rng) -> Expr {
        if rng.below(2) == 0 {
            Expr::Column(rng.column())
        } else {
            Expr::Concat(
                (0..2 + rng.below(3))
                    .map(|_| {
                        if rng.below(2) == 0 {
                            Expr::Column(rng.column())
                        } else {
                            Expr::Str(rng.string())
                        }
                    })
                    .collect(),
            )
        }
    }

    fn gen_statement(rng: &mut Rng) -> Statement {
        let filter = if rng.below(3) == 0 {
            None
        } else {
            Some(gen_bool_expr(rng, 3))
        };
        let table = ["imdb", "dataroad", "listings"][rng.below(3) as usize].to_string();
        let stmt = match rng.below(4) {
            0 => SelectStatement {
                items: vec![SelectItem::CountStar],
                table,
                filter,
                group_by_1: false,
                order_by_1: false,
                limit: None,
                offset: None,
            },
            1 => {
                let mut items = vec![SelectItem::Histogram {
                    column: rng.column(),
                    min: rng.num(),
                    max: rng.num(),
                    bins: 1 + rng.below(40) as usize,
                }];
                if rng.below(2) == 0 {
                    items.push(SelectItem::CountStar);
                }
                let group_by_1 = rng.below(2) == 0;
                SelectStatement {
                    items,
                    table,
                    filter,
                    group_by_1,
                    // `ORDER BY 1` only renders after `GROUP BY 1` in
                    // the paper's queries, but the grammar allows both
                    // independently.
                    order_by_1: rng.below(2) == 0,
                    limit: None,
                    offset: None,
                }
            }
            2 => SelectStatement {
                items: vec![SelectItem::Star],
                table,
                filter,
                group_by_1: false,
                order_by_1: false,
                limit: (rng.below(2) == 0).then(|| rng.below(500) as usize),
                offset: (rng.below(2) == 0).then(|| rng.below(500) as usize),
            },
            _ => SelectStatement {
                items: (0..1 + rng.below(3))
                    .map(|_| SelectItem::Expr(gen_projection(rng)))
                    .collect(),
                table,
                filter,
                group_by_1: false,
                order_by_1: false,
                limit: (rng.below(2) == 0).then(|| rng.below(500) as usize),
                offset: (rng.below(2) == 0).then(|| rng.below(500) as usize),
            },
        };
        Statement::Select(stmt)
    }

    /// Render → reparse must be the identity on every generated AST.
    #[test]
    fn round_trip_fuzz_render_reparse_identity() {
        let mut rng = Rng(0x5EED_CAFE);
        for case in 0..500 {
            let stmt = gen_statement(&mut rng);
            let sql = stmt.to_string();
            let reparsed = parse_statement(&sql)
                .unwrap_or_else(|e| panic!("case {case}: render should reparse: {sql:?}: {e}"));
            assert_eq!(reparsed, stmt, "case {case}: round-trip drift on {sql:?}");
        }
    }
}
