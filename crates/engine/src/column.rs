//! Typed columnar storage.
//!
//! Columns are immutable once built. Strings are dictionary encoded
//! (`u32` codes into a shared pool), which both shrinks memory for the
//! categorical attributes in the case-study datasets (genres, room types)
//! and makes equality predicates a code comparison.

use std::collections::HashMap;
use std::sync::Arc;

use crate::value::{DataType, Value};

/// Rows per zone-map block. 1024 rows = 16 selection-mask words, small
/// enough that min/max bounds are tight on clustered data, large enough
/// that the per-block branch amortizes to nothing.
pub const ZONE_BLOCK_ROWS: usize = 1024;

/// Summary of one [`ZONE_BLOCK_ROWS`]-row block of a numeric column, in
/// the `f64` domain the predicate kernels compare in (`i64` values are
/// summarized *after* the `as f64` conversion, so bounds are exact for
/// the comparisons that consult them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zone {
    /// Minimum non-NaN value; `+inf` when the block is all-NaN.
    pub min: f64,
    /// Maximum non-NaN value; `-inf` when the block is all-NaN.
    pub max: f64,
    /// NaN rows in the block (the engine's null stand-in).
    pub nan_count: u32,
    /// Rows in the block (the final block may be short).
    pub len: u32,
}

/// Per-block min/max/NaN-count summaries of a numeric column — the
/// classic "zone map" / small materialized aggregate. Range predicates
/// and histogram binning consult it to decide whole blocks (all match /
/// none match / out of bin domain) without touching the data.
///
/// Built lazily, once per column, by [`crate::Table::zone_map_at`];
/// string columns have no zone map.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    blocks: Vec<Zone>,
}

impl ZoneMap {
    /// Builds the zone map for a column; `None` for string columns.
    pub fn build(col: &Column) -> Option<ZoneMap> {
        let summarize = |values: &mut dyn Iterator<Item = f64>, len: usize| -> Zone {
            let mut z = Zone {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                nan_count: 0,
                len: len as u32,
            };
            for x in values {
                if x.is_nan() {
                    z.nan_count += 1;
                } else {
                    z.min = z.min.min(x);
                    z.max = z.max.max(x);
                }
            }
            z
        };
        let blocks = match col {
            Column::Str { .. } => return None,
            Column::Float(v) => v
                .chunks(ZONE_BLOCK_ROWS)
                .map(|c| summarize(&mut c.iter().copied(), c.len()))
                .collect(),
            Column::Int(v) => v
                .chunks(ZONE_BLOCK_ROWS)
                .map(|c| summarize(&mut c.iter().map(|&x| x as f64), c.len()))
                .collect(),
        };
        Some(ZoneMap { blocks })
    }

    /// The summary of block `b` (rows `b*ZONE_BLOCK_ROWS..`), if any.
    pub fn block(&self, b: usize) -> Option<&Zone> {
        self.blocks.get(b)
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// An immutable, typed column of values.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int(Arc<[i64]>),
    /// 64-bit floats.
    Float(Arc<[f64]>),
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict`.
    Str {
        /// Per-row dictionary codes.
        codes: Arc<[u32]>,
        /// Distinct values, in first-appearance order.
        dict: Arc<[Arc<str>]>,
    },
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str { .. } => DataType::Str,
        }
    }

    /// The value at `row`. Panics if out of bounds.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(v[row]),
            Column::Str { codes, dict } => Value::Str(Arc::clone(&dict[codes[row] as usize])),
        }
    }

    /// The value at `row` as `f64`, if the column is numeric and the
    /// row is in bounds.
    #[inline]
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int(v) => v.get(row).map(|&x| x as f64),
            Column::Float(v) => v.get(row).copied(),
            Column::Str { .. } => None,
        }
    }

    /// The underlying integer slice, if this is an `Int` column.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The underlying float slice, if this is a `Float` column.
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Dictionary parts, if this is a `Str` column.
    pub fn as_str_parts(&self) -> Option<(&[u32], &[Arc<str>])> {
        match self {
            Column::Str { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Takes the rows selected by `sel` (indices into this column) into a
    /// new column, preserving the dictionary for string columns.
    pub fn take(&self, sel: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(sel.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(sel.iter().map(|&i| v[i]).collect()),
            Column::Str { codes, dict } => Column::Str {
                codes: sel.iter().map(|&i| codes[i]).collect(),
                dict: Arc::clone(dict),
            },
        }
    }
}

/// Builder that accumulates values and freezes into a [`Column`].
#[derive(Debug, Clone)]
pub enum ColumnBuilder {
    /// Accumulating integers.
    Int(Vec<i64>),
    /// Accumulating floats.
    Float(Vec<f64>),
    /// Accumulating dictionary-encoded strings.
    Str {
        /// Per-row codes.
        codes: Vec<u32>,
        /// Dictionary in first-appearance order.
        dict: Vec<Arc<str>>,
        /// Value → code lookup.
        lookup: HashMap<Arc<str>, u32>,
    },
}

impl ColumnBuilder {
    /// Builds an integer column from an iterator.
    pub fn int<I: IntoIterator<Item = i64>>(values: I) -> Self {
        ColumnBuilder::Int(values.into_iter().collect())
    }

    /// Builds a float column from an iterator.
    pub fn float<I: IntoIterator<Item = f64>>(values: I) -> Self {
        ColumnBuilder::Float(values.into_iter().collect())
    }

    /// Builds a string column from an iterator.
    pub fn str<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut b = ColumnBuilder::Str {
            codes: Vec::new(),
            dict: Vec::new(),
            lookup: HashMap::new(),
        };
        for v in values {
            b.push_str(v.as_ref());
        }
        b
    }

    /// Appends an integer. Panics on type mismatch.
    pub fn push_int(&mut self, v: i64) {
        match self {
            ColumnBuilder::Int(vec) => vec.push(v),
            _ => panic!("push_int on non-int column builder"),
        }
    }

    /// Appends a float. Panics on type mismatch.
    pub fn push_float(&mut self, v: f64) {
        match self {
            ColumnBuilder::Float(vec) => vec.push(v),
            _ => panic!("push_float on non-float column builder"),
        }
    }

    /// Appends a string. Panics on type mismatch.
    pub fn push_str(&mut self, v: &str) {
        match self {
            ColumnBuilder::Str {
                codes,
                dict,
                lookup,
            } => {
                if let Some(&code) = lookup.get(v) {
                    codes.push(code);
                } else {
                    let code = u32::try_from(dict.len()).expect("dictionary overflow");
                    let shared: Arc<str> = Arc::from(v);
                    dict.push(Arc::clone(&shared));
                    lookup.insert(shared, code);
                    codes.push(code);
                }
            }
            _ => panic!("push_str on non-str column builder"),
        }
    }

    /// Number of accumulated rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnBuilder::Int(v) => v.len(),
            ColumnBuilder::Float(v) => v.len(),
            ColumnBuilder::Str { codes, .. } => codes.len(),
        }
    }

    /// `true` if no rows have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes into an immutable [`Column`].
    pub fn build(self) -> Column {
        match self {
            ColumnBuilder::Int(v) => Column::Int(v.into()),
            ColumnBuilder::Float(v) => Column::Float(v.into()),
            ColumnBuilder::Str { codes, dict, .. } => Column::Str {
                codes: codes.into(),
                dict: dict.into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_float_columns() {
        let c = ColumnBuilder::int([1, 2, 3]).build();
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.value(1), Value::Int(2));
        assert_eq!(c.f64_at(2), Some(3.0));

        let f = ColumnBuilder::float([0.5, 1.5]).build();
        assert_eq!(f.f64_at(0), Some(0.5));
        assert_eq!(f.as_float().unwrap().len(), 2);
    }

    #[test]
    fn string_dictionary_dedupes() {
        let c = ColumnBuilder::str(["drama", "comedy", "drama", "drama"]).build();
        let (codes, dict) = c.as_str_parts().unwrap();
        assert_eq!(dict.len(), 2);
        assert_eq!(codes, &[0, 1, 0, 0]);
        assert_eq!(c.value(2).as_str(), Some("drama"));
        assert_eq!(c.f64_at(0), None);
    }

    #[test]
    fn take_selects_rows() {
        let c = ColumnBuilder::int([10, 20, 30, 40]).build();
        let t = c.take(&[3, 1]);
        assert_eq!(t.as_int().unwrap(), &[40, 20]);

        let s = ColumnBuilder::str(["a", "b", "c"]).build();
        let ts = s.take(&[2, 0]);
        assert_eq!(ts.value(0).as_str(), Some("c"));
        assert_eq!(ts.value(1).as_str(), Some("a"));
        // Dictionary is shared, not re-encoded.
        let (_, dict) = ts.as_str_parts().unwrap();
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn incremental_builders() {
        let mut b = ColumnBuilder::str(Vec::<&str>::new());
        assert!(b.is_empty());
        b.push_str("x");
        b.push_str("y");
        b.push_str("x");
        assert_eq!(b.len(), 3);
        let c = b.build();
        assert_eq!(c.value(2).as_str(), Some("x"));

        let mut i = ColumnBuilder::int([]);
        i.push_int(5);
        assert_eq!(i.build().as_int().unwrap(), &[5]);

        let mut f = ColumnBuilder::float([]);
        f.push_float(2.5);
        assert_eq!(f.build().as_float().unwrap(), &[2.5]);
    }

    #[test]
    #[should_panic(expected = "push_int on non-int")]
    fn type_mismatch_panics() {
        let mut b = ColumnBuilder::float([]);
        b.push_int(1);
    }

    #[test]
    fn zone_map_summarizes_blocks() {
        // 1025 rows: two blocks, the second one row long.
        let c = ColumnBuilder::float((0..1025).map(|i| i as f64)).build();
        let z = ZoneMap::build(&c).unwrap();
        assert_eq!(z.block_count(), 2);
        let b0 = z.block(0).unwrap();
        assert_eq!(
            (b0.min, b0.max, b0.nan_count, b0.len),
            (0.0, 1023.0, 0, 1024)
        );
        let b1 = z.block(1).unwrap();
        assert_eq!((b1.min, b1.max, b1.len), (1024.0, 1024.0, 1));
        assert!(z.block(2).is_none());
    }

    #[test]
    fn zone_map_counts_nans_and_handles_all_nan() {
        let c = ColumnBuilder::float([f64::NAN, 1.0, f64::NAN]).build();
        let z = ZoneMap::build(&c).unwrap();
        let b = z.block(0).unwrap();
        assert_eq!((b.min, b.max, b.nan_count), (1.0, 1.0, 2));

        let all_nan = ColumnBuilder::float([f64::NAN; 4]).build();
        let z = ZoneMap::build(&all_nan).unwrap();
        let b = z.block(0).unwrap();
        assert!(b.min.is_infinite() && b.max.is_infinite());
        assert_eq!(b.nan_count, 4);
    }

    #[test]
    fn zone_map_int_uses_converted_domain() {
        let c = ColumnBuilder::int([-3, 7, 7]).build();
        let z = ZoneMap::build(&c).unwrap();
        let b = z.block(0).unwrap();
        assert_eq!((b.min, b.max, b.nan_count), (-3.0, 7.0, 0));
    }

    #[test]
    fn zone_map_absent_for_strings_and_empty() {
        assert!(ZoneMap::build(&ColumnBuilder::str(["a"]).build()).is_none());
        let empty = ColumnBuilder::float([]).build();
        assert_eq!(ZoneMap::build(&empty).unwrap().block_count(), 0);
    }
}
