//! Wall-clock parallel batch execution.
//!
//! The virtual-time [`scheduler`](crate::scheduler) answers "what latency
//! would the user perceive"; this module answers "how fast does the engine
//! actually chew through a workload on real hardware", which is what the
//! Criterion throughput benches measure. Queries are distributed over a
//! crossbeam-scoped worker pool; results come back in submission order.

use crossbeam::channel;

use crate::backend::{Backend, QueryOutcome};
use crate::error::{EngineError, EngineResult};
use crate::query::Query;

/// Executes `queries` across `threads` OS threads, returning outcomes in
/// submission order.
pub fn execute_batch(
    backend: &(dyn Backend + Sync),
    queries: &[Query],
    threads: usize,
) -> EngineResult<Vec<QueryOutcome>> {
    let threads = threads.max(1).min(queries.len().max(1));
    if threads == 1 {
        return queries.iter().map(|q| backend.execute(q)).collect();
    }

    let (task_tx, task_rx) = channel::unbounded::<(usize, &Query)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, EngineResult<QueryOutcome>)>();
    for (i, q) in queries.iter().enumerate() {
        if task_tx.send((i, q)).is_err() {
            return Err(EngineError::SchedulerClosed);
        }
    }
    drop(task_tx);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move |_| {
                while let Ok((i, q)) = task_rx.recv() {
                    let out = backend.execute(q);
                    if result_tx.send((i, out)).is_err() {
                        break;
                    }
                }
            });
        }
    })
    .map_err(|_| EngineError::SchedulerClosed)?;
    drop(result_tx);

    let mut slots: Vec<Option<EngineResult<QueryOutcome>>> =
        (0..queries.len()).map(|_| None).collect();
    while let Ok((i, out)) = result_rx.recv() {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.ok_or(EngineError::SchedulerClosed)?)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::column::ColumnBuilder;
    use crate::predicate::Predicate;
    use crate::table::TableBuilder;

    fn backend(rows: usize) -> MemBackend {
        let b = MemBackend::new();
        b.database().register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..rows).map(|i| i as f64)))
                .build()
                .unwrap(),
        );
        b
    }

    #[test]
    fn batch_results_in_submission_order() {
        let b = backend(1000);
        let queries: Vec<Query> = (0..32)
            .map(|i| Query::count("t", Predicate::between("x", 0.0, i as f64)))
            .collect();
        let outs = execute_batch(&b, &queries, 4).unwrap();
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out.scalar_count(), Some(i as u64 + 1));
        }
    }

    #[test]
    fn single_thread_path_matches_parallel() {
        let b = backend(500);
        let queries: Vec<Query> = (0..8)
            .map(|i| Query::count("t", Predicate::between("x", i as f64, 400.0)))
            .collect();
        let seq = execute_batch(&b, &queries, 1).unwrap();
        let par = execute_batch(&b, &queries, 8).unwrap();
        for (a, z) in seq.iter().zip(par.iter()) {
            assert_eq!(a.result, z.result);
        }
    }

    #[test]
    fn error_in_one_query_surfaces() {
        let b = backend(10);
        let queries = vec![
            Query::count("t", Predicate::True),
            Query::count("missing", Predicate::True),
        ];
        assert!(execute_batch(&b, &queries, 2).is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let b = backend(1);
        assert!(execute_batch(&b, &[], 4).unwrap().is_empty());
    }
}
