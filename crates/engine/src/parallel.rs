//! Wall-clock parallel batch execution.
//!
//! The virtual-time [`scheduler`](crate::scheduler) answers "what latency
//! would the user perceive"; this module answers "how fast does the engine
//! actually chew through a workload on real hardware", which is what the
//! Criterion throughput benches measure. Queries are distributed over a
//! crossbeam-scoped worker pool; results come back in submission order.

use crossbeam::channel;

use crate::backend::{Backend, QueryOutcome};
use crate::column::ZONE_BLOCK_ROWS;
use crate::error::{EngineError, EngineResult};
use crate::kernels::{self, KernelOptions, KernelStats};
use crate::predicate::Predicate;
use crate::query::{BinSpec, Query};
use crate::result::Histogram;
use crate::table::Table;

/// Executes `queries` across `threads` OS threads, returning outcomes in
/// submission order.
pub fn execute_batch(
    backend: &(dyn Backend + Sync),
    queries: &[Query],
    threads: usize,
) -> EngineResult<Vec<QueryOutcome>> {
    let threads = threads.max(1).min(queries.len().max(1));
    if threads == 1 {
        return queries.iter().map(|q| backend.execute(q)).collect();
    }

    let (task_tx, task_rx) = channel::unbounded::<(usize, &Query)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, EngineResult<QueryOutcome>)>();
    for (i, q) in queries.iter().enumerate() {
        if task_tx.send((i, q)).is_err() {
            return Err(EngineError::SchedulerClosed);
        }
    }
    drop(task_tx);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move |_| {
                while let Ok((i, q)) = task_rx.recv() {
                    let out = backend.execute(q);
                    if result_tx.send((i, out)).is_err() {
                        break;
                    }
                }
            });
        }
    })
    .map_err(|_| EngineError::SchedulerClosed)?;
    drop(result_tx);

    let mut slots: Vec<Option<EngineResult<QueryOutcome>>> =
        (0..queries.len()).map(|_| None).collect();
    while let Ok((i, out)) = result_rx.recv() {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.ok_or(EngineError::SchedulerClosed)?)
        .collect()
}

/// Rows per parallel histogram work unit. A fixed multiple of the
/// zone-map block size, *independent of the thread count*: the chunk
/// boundaries (and therefore each partial histogram) are the same
/// whether 1 or 8 workers drain the queue, so the merged result is
/// byte-identical at any parallelism.
pub const PAR_CHUNK_ROWS: usize = 64 * ZONE_BLOCK_ROWS;

/// Block-wise parallel crossfilter histogram.
///
/// The filter is evaluated once (single-threaded) into a
/// [`kernels::SelectionVector`]; fixed-size chunks of the bin column are
/// then binned concurrently with the fused filter+bin kernel
/// ([`kernels::fused_filter_bin_range`]) and the partial histograms are
/// summed in chunk order. Chunking is by [`PAR_CHUNK_ROWS`], never by
/// thread count, so 1/2/4/8-thread runs produce identical histograms.
pub fn parallel_histogram(
    table: &Table,
    bins: &BinSpec,
    filter: &Predicate,
    threads: usize,
) -> EngineResult<Histogram> {
    if bins.bins == 0 || bins.width() <= 0.0 || bins.width().is_nan() {
        return Err(EngineError::InvalidBinSpec(format!(
            "bad bin spec over [{}, {}]",
            bins.min, bins.max
        )));
    }
    let bin_idx = table.column_index(&bins.column)?;
    let col = table.column_at(bin_idx);
    if !col.data_type().is_numeric() {
        return Err(EngineError::TypeMismatch {
            column: bins.column.to_string(),
            expected: "numeric column for binning",
        });
    }

    let opts = KernelOptions::default();
    let mut stats = KernelStats::default();
    let sel = kernels::select_vector_with(table, filter, &opts, &mut stats)?;
    let zone = table.zone_map_at(bin_idx);
    let rows = table.rows();
    let threads = threads.max(1);
    if threads == 1 || rows <= PAR_CHUNK_ROWS {
        return Ok(kernels::fused_filter_bin(
            col, zone, &sel, bins, &opts, &mut stats,
        ));
    }

    let n_chunks = rows.div_ceil(PAR_CHUNK_ROWS);
    let (task_tx, task_rx) = channel::unbounded::<usize>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, Histogram)>();
    for c in 0..n_chunks {
        if task_tx.send(c).is_err() {
            return Err(EngineError::SchedulerClosed);
        }
    }
    drop(task_tx);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n_chunks) {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            let sel = &sel;
            scope.spawn(move |_| {
                let opts = KernelOptions::default();
                let mut stats = KernelStats::default();
                while let Ok(c) = task_rx.recv() {
                    let start = c * PAR_CHUNK_ROWS;
                    let end = (start + PAR_CHUNK_ROWS).min(rows);
                    let mut partial = Histogram::zeros(bins.bucket_count());
                    kernels::fused_filter_bin_range(
                        col,
                        zone,
                        sel,
                        bins,
                        &opts,
                        &mut stats,
                        start,
                        end,
                        &mut partial,
                    );
                    if result_tx.send((c, partial)).is_err() {
                        break;
                    }
                }
            });
        }
    })
    .map_err(|_| EngineError::SchedulerClosed)?;
    drop(result_tx);

    // Merge partials in chunk-index order. (u64 addition is commutative,
    // so any order gives the same counts — fixed order keeps the merge
    // auditable.)
    let mut slots: Vec<Option<Histogram>> = (0..n_chunks).map(|_| None).collect();
    while let Ok((c, partial)) = result_rx.recv() {
        slots[c] = Some(partial);
    }
    let mut counts = vec![0u64; bins.bucket_count()];
    for slot in slots {
        let partial = slot.ok_or(EngineError::SchedulerClosed)?;
        for (acc, c) in counts.iter_mut().zip(partial.counts()) {
            *acc += c;
        }
    }
    Ok(Histogram::from_counts(counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::column::ColumnBuilder;
    use crate::table::TableBuilder;

    fn backend(rows: usize) -> MemBackend {
        let b = MemBackend::new();
        b.database().register(
            TableBuilder::new("t")
                .column("x", ColumnBuilder::float((0..rows).map(|i| i as f64)))
                .build()
                .unwrap(),
        );
        b
    }

    #[test]
    fn batch_results_in_submission_order() {
        let b = backend(1000);
        let queries: Vec<Query> = (0..32)
            .map(|i| Query::count("t", Predicate::between("x", 0.0, i as f64)))
            .collect();
        let outs = execute_batch(&b, &queries, 4).unwrap();
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out.scalar_count(), Some(i as u64 + 1));
        }
    }

    #[test]
    fn single_thread_path_matches_parallel() {
        let b = backend(500);
        let queries: Vec<Query> = (0..8)
            .map(|i| Query::count("t", Predicate::between("x", i as f64, 400.0)))
            .collect();
        let seq = execute_batch(&b, &queries, 1).unwrap();
        let par = execute_batch(&b, &queries, 8).unwrap();
        for (a, z) in seq.iter().zip(par.iter()) {
            assert_eq!(a.result, z.result);
        }
    }

    #[test]
    fn error_in_one_query_surfaces() {
        let b = backend(10);
        let queries = vec![
            Query::count("t", Predicate::True),
            Query::count("missing", Predicate::True),
        ];
        assert!(execute_batch(&b, &queries, 2).is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let b = backend(1);
        assert!(execute_batch(&b, &[], 4).unwrap().is_empty());
    }

    #[test]
    fn parallel_histogram_is_thread_count_invariant() {
        // Enough rows that the chunked parallel path actually engages,
        // with a size that is not a multiple of the chunk width.
        let rows = PAR_CHUNK_ROWS + 1234;
        let t = TableBuilder::new("t")
            .column(
                "x",
                ColumnBuilder::float((0..rows).map(|i| (i % 977) as f64)),
            )
            .build()
            .unwrap();
        let bins = BinSpec::new("x", 0.0, 1000.0, 25);
        let filter = Predicate::between("x", 100.0, 800.0);
        let base = parallel_histogram(&t, &bins, &filter, 1).unwrap();
        for threads in [2, 4, 8] {
            let h = parallel_histogram(&t, &bins, &filter, threads).unwrap();
            assert_eq!(h.counts(), base.counts(), "{threads} threads diverged");
        }
        // The parallel merge must agree with the sequential operator.
        let (rs, _) = crate::exec::run_histogram(&t, &bins, &filter).unwrap();
        assert_eq!(base.counts(), rs.histogram().unwrap().counts());
    }

    #[test]
    fn parallel_histogram_rejects_bad_inputs() {
        let t = TableBuilder::new("t")
            .column("s", ColumnBuilder::str(["a", "b"]))
            .build()
            .unwrap();
        assert!(
            parallel_histogram(&t, &BinSpec::new("s", 0.0, 1.0, 2), &Predicate::True, 4).is_err()
        );
        assert!(
            parallel_histogram(&t, &BinSpec::new("s", 0.0, 1.0, 0), &Predicate::True, 4).is_err()
        );
    }
}
